//! The simulated machine: configuration and the pooled thread-per-rank
//! runner.

use crate::error::{SimError, SimResult};
use crate::mailbox::Mailbox;
use crate::pool::Crew;
use crate::profile::{Profile, RankStats};
use crate::rank::Rank;
use crate::registry::EventRegistry;
use psse_faults::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which execution backend drives blocking receives.
///
/// Virtual time, counters and traces are a pure function of the message
/// DAG on either backend, so the two produce **byte-identical**
/// profiles; they differ only in how a blocked receive waits and how a
/// stuck program is diagnosed:
///
/// * [`Backend::Threads`] (default) parks the receiver on its mailbox
///   condvar with the wall-clock patience of
///   [`SimConfig::recv_timeout`]; a deadlock is *suspected* after the
///   timeout ([`SimError::RecvFailed`]).
/// * [`Backend::Events`] registers the receiver with a per-run
///   blocked-rank registry and never sleeps on a wall clock; a deadlock
///   is *proven* the moment every live rank is blocked with no matching
///   message queued, and reported with the full blocked rank set
///   ([`SimError::Deadlock`]).
///
/// The mega-scale discrete-event executor in `psse-event` also keys off
/// this flag: its `run_programs` entry point dispatches rank programs
/// to the thread pool (`Threads`, the bit-identity oracle) or to the
/// single priority-queue scheduler (`Events`, for p = 10⁵–10⁶).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Thread-per-rank with wall-clock recv patience (the default).
    #[default]
    Threads,
    /// Event-driven blocking with proven deadlock detection.
    Events,
}

impl Backend {
    /// The spec-file / CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Events => "events",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" | "thread" => Ok(Backend::Threads),
            "events" | "event" => Ok(Backend::Events),
            other => Err(format!("unknown backend `{other}` (threads|events)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cooperative cancellation flag shared between a running
/// [`Machine::run`] and an outside watchdog (e.g. the lab's
/// `--timeout`).
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same
/// flag. Once [`CancelFlag::cancel`] is called, ranks notice at their
/// next send/receive, blocked receivers are woken through the existing
/// poison machinery, and the run returns [`SimError::Cancelled`].
/// Cancellation is sticky: the flag cannot be reset, so one flag serves
/// at most one run.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent and safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has [`CancelFlag::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Two-level machine hierarchy (paper Fig. 2): ranks are grouped into
/// nodes of `cores_per_node` consecutive ids; messages between ranks of
/// the same node use the (cheaper) intra-node link prices instead of the
/// machine-level `beta_t`/`alpha_t`.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Ranks per node (`pl`); rank `r` lives on node `r / cores_per_node`.
    pub cores_per_node: usize,
    /// `βlt` — virtual seconds per word on intra-node links.
    pub intra_beta_t: f64,
    /// `αlt` — virtual seconds per message on intra-node links.
    pub intra_alpha_t: f64,
}

/// Cost-model and safety configuration of a simulated machine. Time
/// parameters follow paper Eq. 1.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// `γt` — virtual seconds per flop.
    pub gamma_t: f64,
    /// `βt` — virtual seconds per word sent (inter-node when a
    /// [`Hierarchy`] is configured).
    pub beta_t: f64,
    /// `αt` — virtual seconds per message (inter-node when a
    /// [`Hierarchy`] is configured).
    pub alpha_t: f64,
    /// `m` — maximum words per message; longer transfers are split (so a
    /// `k`-word send counts `⌈k/m⌉` messages, the paper's `S = W/m`).
    pub max_message_words: usize,
    /// Optional per-rank tracked-allocation limit, in words. `None`
    /// disables enforcement (peaks are still recorded).
    pub mem_limit_words: Option<u64>,
    /// Wall-clock patience for a blocking receive before the run is
    /// declared deadlocked. (Wall-clock only; virtual time is unaffected.)
    pub recv_timeout: Duration,
    /// Optional two-level hierarchy (paper Fig. 2). `None` = flat
    /// machine: all links priced at `beta_t`/`alpha_t`.
    pub hierarchy: Option<Hierarchy>,
    /// Record a typed event log per rank (see [`crate::record`]) for
    /// trace replay. Off by default: with the flag off the only cost is
    /// one branch per operation; with it on, one `Vec` push per
    /// operation (payloads are never copied).
    pub record_trace: bool,
    /// Deterministic fault injection and recovery (see `psse-faults`).
    /// `None` (the default) disables every fault path: the run is
    /// bit-identical to a build without the feature, at the cost of one
    /// branch per operation.
    pub faults: Option<FaultPlan>,
    /// How blocking receives wait and how deadlock is diagnosed; see
    /// [`Backend`]. Identical virtual-time output either way.
    pub backend: Backend,
    /// Floor of the rank-thread pool's demand-based idle trim: a
    /// finishing run never trims the parked fleet below this many
    /// threads (see `sim/src/pool.rs`).
    pub pool_idle_floor: usize,
    /// Ceiling of the idle pool; parked threads beyond it exit. The
    /// `PSSE_POOL_IDLE_MAX` environment variable overrides this at run
    /// time.
    pub pool_idle_max: usize,
    /// Optional cooperative cancellation hook. When set, a watchdog
    /// thread inside [`Machine::run`] polls the flag and, once it fires,
    /// poisons the run exactly as a failing rank would: blocked
    /// receivers wake immediately and the run returns
    /// [`SimError::Cancelled`]. `None` (the default) adds no thread and
    /// no per-operation cost beyond one branch.
    pub cancel: Option<CancelFlag>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-8,
            alpha_t: 1e-6,
            max_message_words: 1 << 16,
            mem_limit_words: None,
            recv_timeout: Duration::from_secs(30),
            hierarchy: None,
            record_trace: false,
            faults: None,
            backend: Backend::Threads,
            pool_idle_floor: crate::pool::IDLE_FLOOR,
            pool_idle_max: crate::pool::IDLE_CAP,
            cancel: None,
        }
    }
}

impl SimConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> SimResult<()> {
        if !(self.gamma_t >= 0.0) || !(self.beta_t >= 0.0) || !(self.alpha_t >= 0.0) {
            return Err(SimError::InvalidConfig(
                "time parameters must be non-negative and not NaN".into(),
            ));
        }
        if self.max_message_words == 0 {
            return Err(SimError::InvalidConfig(
                "max_message_words must be at least 1".into(),
            ));
        }
        if let Some(h) = &self.hierarchy {
            if h.cores_per_node == 0 {
                return Err(SimError::InvalidConfig(
                    "hierarchy.cores_per_node must be at least 1".into(),
                ));
            }
            if !(h.intra_beta_t >= 0.0) || !(h.intra_alpha_t >= 0.0) {
                return Err(SimError::InvalidConfig(
                    "intra-node link prices must be non-negative".into(),
                ));
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate().map_err(SimError::InvalidConfig)?;
        }
        if self.pool_idle_floor > self.pool_idle_max {
            return Err(SimError::InvalidConfig(format!(
                "pool_idle_floor ({}) must not exceed pool_idle_max ({})",
                self.pool_idle_floor, self.pool_idle_max
            )));
        }
        Ok(())
    }

    /// A configuration with all time prices zero — useful when only the
    /// counters matter (fastest to simulate, still deterministic).
    pub fn counters_only() -> Self {
        SimConfig {
            gamma_t: 0.0,
            beta_t: 0.0,
            alpha_t: 0.0,
            ..SimConfig::default()
        }
    }
}

/// The outcome of a run: each rank's return value plus the accounting
/// profile.
#[derive(Debug, Clone)]
pub struct SimOutcome<R> {
    /// Per-rank return values, indexed by rank id.
    pub results: Vec<R>,
    /// Per-rank counters and the virtual makespan.
    pub profile: Profile,
}

/// The simulated distributed machine.
pub struct Machine;

impl Machine {
    /// Run `f` on `p` ranks. Each rank executes `f(&mut rank)` on its own
    /// OS thread (reused from a process-wide pool across runs, so a
    /// sweep of thousands of small runs pays thread creation once); the
    /// function returns when all ranks complete.
    ///
    /// If any rank returns an error or panics, the run is poisoned:
    /// peers blocked in `recv` are woken immediately (condvar, no
    /// polling tick) with
    /// [`SimError::PeerFailed`]/[`SimError::RecvFailed`] and the error of
    /// the lowest-numbered failing rank is returned.
    pub fn run<F, R>(p: usize, cfg: SimConfig, f: F) -> SimResult<SimOutcome<R>>
    where
        F: Fn(&mut Rank) -> SimResult<R> + Sync,
        R: Send,
    {
        if p == 0 {
            return Err(SimError::InvalidConfig("world size p must be >= 1".into()));
        }
        cfg.validate()?;
        let (floor, cap) = crate::pool::effective_limits(cfg.pool_idle_floor, cfg.pool_idle_max);
        let registry = match cfg.backend {
            Backend::Threads => None,
            Backend::Events => Some(Arc::new(EventRegistry::new(p))),
        };
        let cfg = Arc::new(cfg);
        let poison = Arc::new(AtomicBool::new(false));
        let mailboxes: Arc<Vec<Mailbox>> = Arc::new((0..p).map(|_| Mailbox::new()).collect());

        type RankOutput<R> = (R, RankStats, Vec<crate::record::TimedEvent>);
        let mut slots: Vec<Option<SimResult<RankOutput<R>>>> = Vec::with_capacity(p);
        slots.resize_with(p, || None);

        // A watchdog thread exists only when a cancel hook was supplied.
        // It polls the flag (wall-clock, never virtual time) and, the
        // moment it fires, raises the same poison protocol a failing
        // rank would — so receivers parked on a mailbox condvar wake
        // immediately instead of draining their recv_timeout.
        let monitor_done = Arc::new(AtomicBool::new(false));
        let monitor = cfg.cancel.clone().map(|flag| {
            let poison = Arc::clone(&poison);
            let mailboxes = Arc::clone(&mailboxes);
            let registry = registry.clone();
            let done = Arc::clone(&monitor_done);
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    if flag.is_cancelled() {
                        poison.store(true, Ordering::SeqCst);
                        for mb in mailboxes.iter() {
                            mb.wake();
                        }
                        if let Some(reg) = registry.as_deref() {
                            reg.poison();
                        }
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        });

        {
            let mut crew = Crew::with_limits(floor, cap);
            for (id, slot) in slots.iter_mut().enumerate() {
                let cfg = Arc::clone(&cfg);
                let mailboxes = Arc::clone(&mailboxes);
                let poison = Arc::clone(&poison);
                let registry = registry.clone();
                let f = &f;
                crew.execute(move || {
                    let mut rank = Rank::new(
                        id,
                        p,
                        cfg,
                        Arc::clone(&mailboxes),
                        Arc::clone(&poison),
                        registry.clone(),
                    );
                    let out = catch_unwind(AssertUnwindSafe(|| f(&mut rank)));
                    let res = match out {
                        Ok(Ok(v)) => {
                            // A crash that struck during a trailing
                            // `compute` (which cannot return an error)
                            // surfaces here instead of being lost.
                            if let Some(e) = rank.take_fault_error() {
                                Err(e)
                            } else {
                                let (stats, events) = rank.into_parts();
                                Ok((v, stats, events))
                            }
                        }
                        Ok(Err(e)) => Err(e),
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "rank panicked".into());
                            Err(SimError::PeerFailed(format!("rank {id} panicked: {msg}")))
                        }
                    };
                    if res.is_err() {
                        // Raise the flag, then take each mailbox lock to
                        // notify: peers blocked in recv wake at once.
                        poison.store(true, Ordering::SeqCst);
                        for mb in mailboxes.iter() {
                            mb.wake();
                        }
                        if let Some(reg) = registry.as_deref() {
                            reg.poison();
                        }
                    }
                    if let Some(reg) = registry.as_deref() {
                        // One fewer live rank: the remaining blocked set
                        // may now be total (a completed rank that never
                        // sent what a peer still waits for).
                        reg.rank_done(&mailboxes);
                    }
                    *slot = Some(res);
                });
            }
            // Crew's destructor blocks until every rank job has finished
            // (and been dropped), the scoped-spawn guarantee the borrows
            // of `f` and `slots` above rely on.
        }
        if let Some(handle) = monitor {
            monitor_done.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }

        let mut results = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        let mut events = Vec::with_capacity(p);
        // Prefer the root cause over derived noise: a "real" error (the
        // rank that actually failed) beats a recv timeout, which beats
        // the PeerFailed abandonment poisoned peers report. The middle
        // tier matters under the event-driven poison wakeup: when a
        // deadlocked rank times out, its peers abandon *immediately*, and
        // a lower rank id's abandonment must not mask the timeout.
        let mut first_peer_failed: Option<SimError> = None;
        let mut first_timeout: Option<SimError> = None;
        let mut first_real: Option<SimError> = None;
        for (id, slot) in slots.into_iter().enumerate() {
            let filled =
                slot.unwrap_or_else(|| Err(SimError::PeerFailed(format!("rank {id} thread died"))));
            match filled {
                Ok((r, s, e)) => {
                    results.push(r);
                    stats.push(s);
                    events.push(e);
                }
                Err(e @ SimError::PeerFailed(_)) => {
                    if first_peer_failed.is_none() {
                        first_peer_failed = Some(e);
                    }
                }
                Err(e @ SimError::RecvFailed { .. }) => {
                    if first_timeout.is_none() {
                        first_timeout = Some(e);
                    }
                }
                Err(e) => {
                    if first_real.is_none() {
                        first_real = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_real.or(first_timeout).or(first_peer_failed) {
            return Err(e);
        }
        let profile = Profile::with_events(stats, events);
        // In debug builds, catch programs that leave transfers
        // unreceived — every word sent across a link must be received
        // (`Profile::words_balance`). Release builds skip the check.
        #[cfg(debug_assertions)]
        profile.assert_balanced()?;
        Ok(SimOutcome { results, profile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    #[test]
    fn zero_ranks_rejected() {
        let r = Machine::run(0, SimConfig::default(), |_| Ok(()));
        assert!(matches!(r, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn bad_config_rejected() {
        let cfg = SimConfig {
            max_message_words: 0,
            ..SimConfig::default()
        };
        let r = Machine::run(2, cfg, |_| Ok(()));
        assert!(matches!(r, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn single_rank_compute_only() {
        let out = Machine::run(1, SimConfig::default(), |rank| {
            rank.compute(1_000_000);
            Ok(rank.now())
        })
        .unwrap();
        assert_eq!(out.results.len(), 1);
        assert!((out.results[0] - 1e-3).abs() < 1e-12); // 1e6 flops × 1e-9 s
        assert_eq!(out.profile.per_rank[0].flops, 1_000_000);
        assert!((out.profile.makespan - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn results_are_indexed_by_rank() {
        let out = Machine::run(5, SimConfig::default(), |rank| Ok(rank.rank() * 10)).unwrap();
        assert_eq!(out.results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn rank_error_propagates() {
        let r = Machine::run(3, SimConfig::default(), |rank| {
            if rank.rank() == 1 {
                Err(SimError::Algorithm("deliberate".into()))
            } else {
                Ok(())
            }
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))), "{r:?}");
    }

    #[test]
    fn rank_panic_is_contained() {
        let r: SimResult<SimOutcome<()>> = Machine::run(2, SimConfig::default(), |rank| {
            if rank.rank() == 0 {
                panic!("deliberate panic");
            }
            Ok(())
        });
        match r {
            Err(SimError::PeerFailed(m)) => assert!(m.contains("deliberate")),
            other => panic!("expected PeerFailed, got {other:?}"),
        }
    }

    #[test]
    fn failing_rank_unblocks_waiting_peer() {
        // Rank 1 waits forever for a message that rank 0 never sends
        // because rank 0 errors out. The poison flag must wake rank 1.
        let cfg = SimConfig {
            recv_timeout: Duration::from_secs(5),
            ..SimConfig::default()
        };
        let start = std::time::Instant::now();
        let r: SimResult<SimOutcome<Vec<f64>>> = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                Err(SimError::Algorithm("poisoner".into()))
            } else {
                rank.recv(0, Tag(1))
            }
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))), "{r:?}");
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "peer should be woken promptly, not time out"
        );
    }

    #[test]
    fn poisoned_eight_rank_run_finishes_well_under_timeout() {
        // Regression: the poison flag used to be polled only in the
        // recv timeout branch; with a generous recv_timeout a dead peer
        // left 7 ranks blocked for the full wall-clock budget. It must
        // now be seen within a tick or two.
        let cfg = SimConfig {
            recv_timeout: Duration::from_secs(20),
            ..SimConfig::default()
        };
        let start = std::time::Instant::now();
        let r: SimResult<SimOutcome<()>> = Machine::run(8, cfg, |rank| {
            if rank.rank() == 7 {
                Err(SimError::Algorithm("dies immediately".into()))
            } else {
                // Everyone else waits on a message rank 7 never sends.
                rank.recv(7, Tag(0))?;
                Ok(())
            }
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))), "{r:?}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "poisoned run took {:?}, should be near-instant",
            start.elapsed()
        );
    }

    #[test]
    fn deadlock_times_out() {
        let cfg = SimConfig {
            recv_timeout: Duration::from_millis(200),
            ..SimConfig::default()
        };
        let r: SimResult<SimOutcome<Vec<f64>>> =
            Machine::run(2, cfg, |rank| rank.recv(1 - rank.rank(), Tag(0)));
        assert!(
            matches!(r, Err(SimError::RecvFailed { .. })),
            "expected deadlock detection, got {r:?}"
        );
    }

    #[test]
    fn events_backend_proves_deadlock_with_blocked_set() {
        // The classic cross-wait: both ranks recv first. Under Events
        // the error is immediate and names every blocked rank — no
        // wall-clock sleep (recv_timeout is deliberately huge).
        let cfg = SimConfig {
            backend: Backend::Events,
            recv_timeout: Duration::from_secs(3600),
            ..SimConfig::default()
        };
        let start = std::time::Instant::now();
        let r: SimResult<SimOutcome<Vec<f64>>> =
            Machine::run(2, cfg, |rank| rank.recv(1 - rank.rank(), Tag(0)));
        match r {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked, vec![0, 1]),
            other => panic!("expected a proven deadlock, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "proof must not sleep: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn events_backend_deadlock_after_peer_completion() {
        // Rank 1 completes without sending; rank 0 can then never
        // proceed. The completion itself must trigger the proof.
        let cfg = SimConfig {
            backend: Backend::Events,
            recv_timeout: Duration::from_secs(3600),
            ..SimConfig::default()
        };
        let r: SimResult<SimOutcome<f64>> = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                let v = rank.recv(1, Tag(0))?;
                Ok(v[0])
            } else {
                Ok(0.0)
            }
        });
        match r {
            Err(SimError::Deadlock { rank: 0, blocked }) => assert_eq!(blocked, vec![0]),
            other => panic!("expected a proven deadlock, got {other:?}"),
        }
    }

    #[test]
    fn events_backend_failing_rank_unblocks_waiting_peer() {
        let cfg = SimConfig {
            backend: Backend::Events,
            recv_timeout: Duration::from_secs(3600),
            ..SimConfig::default()
        };
        let start = std::time::Instant::now();
        let r: SimResult<SimOutcome<Vec<f64>>> = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                Err(SimError::Algorithm("poisoner".into()))
            } else {
                rank.recv(0, Tag(1))
            }
        });
        assert!(matches!(r, Err(SimError::Algorithm(_))), "{r:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn backends_are_bit_identical_on_a_ring() {
        let run = |backend: Backend| {
            let cfg = SimConfig {
                backend,
                record_trace: true,
                ..SimConfig::default()
            };
            Machine::run(6, cfg, |rank| {
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                let mut block = vec![rank.rank() as f64; 64];
                for step in 0..6u64 {
                    block = rank.sendrecv(right, Tag(step), block, left, Tag(step))?;
                    rank.compute(500);
                }
                Ok(block[0])
            })
            .unwrap()
        };
        let a = run(Backend::Threads);
        let b = run(Backend::Events);
        assert_eq!(a.profile, b.profile, "profiles must match byte-for-byte");
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("threads".parse::<Backend>().unwrap(), Backend::Threads);
        assert_eq!("events".parse::<Backend>().unwrap(), Backend::Events);
        assert!("fibers".parse::<Backend>().is_err());
        assert_eq!(Backend::Events.to_string(), "events");
        assert_eq!(Backend::default(), Backend::Threads);
    }

    #[test]
    fn reversed_pool_limits_rejected() {
        let cfg = SimConfig {
            pool_idle_floor: 100,
            pool_idle_max: 10,
            ..SimConfig::default()
        };
        assert!(matches!(
            Machine::run(1, cfg, |_| Ok(())),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cancelled_flag_aborts_a_parked_recv_promptly() {
        // Rank 1 parks in a recv that will never be satisfied; the
        // watchdog flag must wake it long before recv_timeout and the
        // run must report Cancelled (not PeerFailed/RecvFailed).
        let flag = CancelFlag::new();
        let cfg = SimConfig {
            recv_timeout: Duration::from_secs(30),
            cancel: Some(flag.clone()),
            ..SimConfig::default()
        };
        let canceller = std::thread::spawn({
            let flag = flag.clone();
            move || {
                std::thread::sleep(Duration::from_millis(50));
                flag.cancel();
            }
        });
        let start = std::time::Instant::now();
        let r: SimResult<SimOutcome<Vec<f64>>> = Machine::run(2, cfg, |rank| {
            if rank.rank() == 0 {
                rank.recv(1, Tag(0))
            } else {
                rank.recv(0, Tag(0))
            }
        });
        canceller.join().unwrap();
        assert!(matches!(r, Err(SimError::Cancelled)), "{r:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancel must not wait out recv_timeout: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn cancelled_flag_aborts_events_backend_recv() {
        let flag = CancelFlag::new();
        let cfg = SimConfig {
            backend: Backend::Events,
            recv_timeout: Duration::from_secs(3600),
            cancel: Some(flag.clone()),
            ..SimConfig::default()
        };
        let canceller = std::thread::spawn({
            let flag = flag.clone();
            move || {
                std::thread::sleep(Duration::from_millis(50));
                flag.cancel();
            }
        });
        // One rank computes forever-ish while the other waits on it, so
        // the deadlock prover cannot fire before the cancel does.
        let r: SimResult<SimOutcome<Vec<f64>>> =
            Machine::run(2, cfg, |rank| rank.recv(1 - rank.rank(), Tag(7)));
        canceller.join().unwrap();
        // The deadlock prover races the watchdog here; either diagnosis
        // is sound, but a pre-cancelled flag must always win (below).
        assert!(
            matches!(r, Err(SimError::Cancelled) | Err(SimError::Deadlock { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn pre_cancelled_flag_fails_fast_with_cancelled() {
        let flag = CancelFlag::new();
        flag.cancel();
        let cfg = SimConfig {
            cancel: Some(flag),
            ..SimConfig::default()
        };
        let r: SimResult<SimOutcome<()>> = Machine::run(2, cfg, |rank| {
            rank.send(1 - rank.rank(), Tag(0), vec![1.0])?;
            rank.recv(1 - rank.rank(), Tag(0))?;
            Ok(())
        });
        assert!(matches!(r, Err(SimError::Cancelled)), "{r:?}");
    }

    #[test]
    fn unused_cancel_flag_changes_nothing() {
        // A configured-but-never-fired flag must leave results and the
        // profile identical to a run without one.
        let run = |cancel: Option<CancelFlag>| {
            let cfg = SimConfig {
                cancel,
                ..SimConfig::default()
            };
            Machine::run(4, cfg, |rank| {
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                rank.compute(100);
                rank.sendrecv(right, Tag(1), vec![rank.rank() as f64; 8], left, Tag(1))
                    .map(|b| b[0])
            })
            .unwrap()
        };
        let plain = run(None);
        let flagged = run(Some(CancelFlag::new()));
        assert_eq!(plain.results, flagged.results);
        assert_eq!(plain.profile, flagged.profile);
    }

    #[test]
    fn counters_only_config_has_zero_makespan() {
        let out = Machine::run(2, SimConfig::counters_only(), |rank| {
            rank.compute(100);
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0, 2.0])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.profile.makespan, 0.0);
        assert_eq!(out.profile.total_flops(), 200);
        assert_eq!(out.profile.total_words_sent(), 2);
    }
}
