//! Typed event recording for trace replay.
//!
//! When [`crate::machine::SimConfig::record_trace`] is set, every rank
//! appends one [`TimedEvent`] per clock-advancing (or memory-tracking)
//! operation to a per-rank log, returned through
//! [`crate::profile::Profile::events`]. The log captures the complete
//! message DAG of the run: `psse-trace` re-walks it to re-price the run
//! under different machine parameters without re-executing the
//! algorithm.
//!
//! Recording is **opt-in** and costs one `Vec` push per operation (no
//! payload data is copied — only peer ids, tags and word counts). With
//! the flag off (the default) the only overhead is one branch per
//! operation.

/// What happened during one recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// `flops` floating-point operations (`Rank::compute`).
    Compute {
        /// Operations charged.
        flops: u64,
    },
    /// One whole transfer to `dest` (before splitting into messages).
    /// Self-sends are recorded too (they are free but must be present so
    /// the matching self-receive can be replayed).
    Send {
        /// Destination rank.
        dest: usize,
        /// Transfer tag.
        tag: u64,
        /// Total payload words (chunk sizes are re-derived from `m`).
        words: usize,
    },
    /// One whole transfer received from `src`.
    Recv {
        /// Source rank.
        src: usize,
        /// Transfer tag.
        tag: u64,
        /// Total payload words.
        words: usize,
        /// Messages (chunks) the transfer arrived in.
        msgs: usize,
    },
    /// Tracked allocation (`Rank::alloc`).
    Alloc {
        /// Words allocated.
        words: u64,
    },
    /// Tracked release (`Rank::free`).
    Free {
        /// Words freed.
        words: u64,
    },
    /// A collective operation began on this rank.
    CollBegin {
        /// Collective name (e.g. `"allreduce_sum"`).
        op: String,
    },
    /// The matching collective completed on this rank.
    CollEnd {
        /// Collective name.
        op: String,
    },
    /// A failed transfer attempt (dropped or corrupt-detected) that was
    /// retransmitted, or a link-level duplicate (`backoff == 0.0`,
    /// `attempt == 0`): the words crossed the wire without being
    /// delivered. Replay re-prices the wasted chunks from `words` and
    /// the machine's link parameters, then adds the `backoff` wait.
    Retry {
        /// Destination rank of the doomed attempt.
        dest: usize,
        /// Transfer tag.
        tag: u64,
        /// Which attempt failed (0 = the original send).
        attempt: usize,
        /// Payload words charged but not delivered.
        words: usize,
        /// Virtual-time backoff waited after the failure, seconds
        /// (a policy constant — replay adds it verbatim).
        backoff: f64,
    },
    /// The link stalled the sender for `seconds` of virtual time before
    /// a transfer departed (an injected delay fault).
    LinkDelay {
        /// Stall length, virtual seconds.
        seconds: f64,
    },
    /// A coordinated checkpoint: `words` words of rank state written to
    /// stable storage, priced like a message (`αt + βt·w` per chunk).
    Checkpoint {
        /// Checkpoint volume, words.
        words: u64,
    },
    /// A crash absorbed by checkpoint/restart: the rank re-did `lost`
    /// seconds of work since its last checkpoint and paid `restart`
    /// seconds to rejoin. Both are recorded verbatim (rework is
    /// execution history, not a priced quantity — replay adds the spans
    /// as-is under any machine).
    CrashRecovery {
        /// Re-executed virtual time, seconds.
        lost: f64,
        /// Fixed restart cost, seconds.
        restart: f64,
    },
}

/// One recorded event with its virtual time span on the recording rank.
///
/// `t_start` is the rank's clock when the operation began, `t_end` when
/// it completed. For `Recv`, `t_end - t_start` is the wait for the
/// transfer's last chunk; for markers the two are equal.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Rank clock at the start of the operation, virtual seconds.
    pub t_start: f64,
    /// Rank clock at the end of the operation, virtual seconds.
    pub t_end: f64,
    /// The operation.
    pub kind: EventKind,
}

impl TimedEvent {
    /// Duration of the event on the recording rank's clock.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_span() {
        let e = TimedEvent {
            t_start: 1.5,
            t_end: 4.0,
            kind: EventKind::Compute { flops: 10 },
        };
        assert_eq!(e.duration(), 2.5);
    }
}
