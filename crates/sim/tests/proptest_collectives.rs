//! Property-based tests of the collective library: correctness over
//! random group shapes, payload sizes and subgroup layouts, plus
//! determinism and traffic-conservation invariants.

use proptest::prelude::*;
use psse_sim::prelude::*;

fn counters() -> SimConfig {
    SimConfig::counters_only()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast delivers the root's payload to every member for any
    /// world size, root and payload length.
    #[test]
    fn broadcast_any_shape(p in 1usize..10, root_pick in 0usize..10, len in 0usize..200) {
        let root = root_pick % p;
        let out = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            let data = if rank.rank() == root {
                Some((0..len).map(|i| i as f64).collect())
            } else {
                None
            };
            rank.broadcast(Tag(0), &group, root, data)
        })
        .unwrap();
        let expect: Vec<f64> = (0..len).map(|i| i as f64).collect();
        for r in out.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// broadcast_large agrees with broadcast for any shape.
    #[test]
    fn broadcast_variants_agree(p in 1usize..10, len in 1usize..300, seed in 0u64..1000) {
        let out = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            let payload: Vec<f64> = (0..len).map(|i| (i as f64) + seed as f64).collect();
            let a = rank.broadcast(
                Tag(0),
                &group,
                0,
                (rank.rank() == 0).then(|| payload.clone()),
            )?;
            let b = rank.broadcast_large(
                Tag(10_000),
                &group,
                0,
                (rank.rank() == 0).then(|| payload.clone()),
            )?;
            Ok(a == b && a == payload)
        })
        .unwrap();
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    /// All reduction flavours compute the same sums.
    #[test]
    fn reductions_agree(p in 1usize..9, len in 1usize..60, seed in 0u64..1000) {
        let out = Machine::run(p, counters(), move |rank| {
            let me = rank.rank() as f64 + seed as f64;
            let group = Group::world(rank.size());
            let data: Vec<f64> = (0..len).map(|i| me * (i as f64 + 1.0)).collect();
            let binomial = rank.reduce_sum(Tag(0), &group, 0, data.clone())?;
            let large = if group.len() <= 64 {
                rank.reduce_sum_large(Tag(10_000), &group, 0, data.clone())?
            } else {
                binomial.clone()
            };
            let allred = rank.allreduce_sum_group(Tag(20_000), &group, data)?;
            Ok((binomial, large, allred))
        })
        .unwrap();
        // Expected sums.
        let total: f64 = (0..p).map(|r| r as f64 + seed as f64).sum();
        let expect: Vec<f64> = (0..len).map(|i| total * (i as f64 + 1.0)).collect();
        let close = |a: &[f64]| a.iter().zip(&expect).all(|(x, y)| (x - y).abs() < 1e-9);
        for (rank_id, (binomial, large, allred)) in out.results.iter().enumerate() {
            if rank_id == 0 {
                prop_assert!(close(binomial.as_ref().unwrap()));
                prop_assert!(close(large.as_ref().unwrap()));
            } else {
                prop_assert!(binomial.is_none());
            }
            prop_assert!(close(allred));
        }
    }

    /// reduce_scatter chunks tile the summed vector for any (p, len).
    #[test]
    fn reduce_scatter_tiles(p in 1usize..9, mult in 1usize..8) {
        let len = p * mult + (mult % 3); // sometimes non-divisible
        let out = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            let data: Vec<f64> = (0..len).map(|i| (rank.rank() + i) as f64).collect();
            rank.reduce_scatter_sum(Tag(0), &group, data)
        })
        .unwrap();
        // Reassemble and compare to the serial sum.
        let mut whole = Vec::new();
        for chunk in &out.results {
            whole.extend_from_slice(chunk);
        }
        prop_assert_eq!(whole.len(), len);
        for (i, v) in whole.iter().enumerate() {
            let expect: f64 = (0..p).map(|r| (r + i) as f64).sum();
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    /// Both all-to-alls transpose arbitrary block matrices identically.
    #[test]
    fn alltoalls_agree(log_p in 0u32..4, len in 1usize..20) {
        let p = 1usize << log_p;
        let out = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            let me = rank.rank();
            let blocks: Vec<Vec<f64>> =
                (0..p).map(|j| vec![(me * 31 + j) as f64; len]).collect();
            let a = rank.alltoall(Tag(0), &group, blocks.clone())?;
            let b = rank.alltoall_hypercube(Tag(10_000), &group, blocks)?;
            Ok(a == b)
        })
        .unwrap();
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    /// Collectives on disjoint subgroups don't interfere, for random
    /// splits of the world.
    #[test]
    fn disjoint_subgroups_are_isolated(p in 2usize..10, cut_pick in 1usize..9) {
        let cut = 1 + (cut_pick % (p - 1)).min(p - 2);
        let out = Machine::run(p, counters(), move |rank| {
            let me = rank.rank();
            let group = if me < cut {
                Group::new((0..cut).collect())?
            } else {
                Group::new((cut..rank.size()).collect())?
            };
            rank.allreduce_sum_group(Tag(0), &group, vec![me as f64])
        })
        .unwrap();
        let low: f64 = (0..cut).map(|r| r as f64).sum();
        let high: f64 = (cut..p).map(|r| r as f64).sum();
        for (me, r) in out.results.iter().enumerate() {
            let expect = if me < cut { low } else { high };
            prop_assert_eq!(r[0], expect, "rank {}", me);
        }
    }

    /// Words sent equal words received, whatever the traffic pattern.
    #[test]
    fn traffic_is_conserved(p in 1usize..8, len in 0usize..100, seed in 0u64..100) {
        let profile = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            let data: Vec<f64> = vec![seed as f64; len + 1];
            rank.allreduce_sum_group(Tag(0), &group, data.clone())?;
            rank.allgather(Tag(10_000), &group, data)?;
            rank.barrier(Tag(20_000), &group)?;
            Ok(())
        })
        .unwrap()
        .profile;
        let (sent, recvd) = profile.words_balance();
        prop_assert_eq!(sent, recvd);
        let msgs_sent: u64 = profile.per_rank.iter().map(|s| s.msgs_sent).sum();
        let msgs_recvd: u64 = profile.per_rank.iter().map(|s| s.msgs_recvd).sum();
        prop_assert_eq!(msgs_sent, msgs_recvd);
    }

    /// Scan produces prefix sums for any world size.
    #[test]
    fn scan_prefixes(p in 1usize..10, scale in 1.0..100.0f64) {
        let out = Machine::run(p, counters(), move |rank| {
            let group = Group::world(rank.size());
            rank.scan_sum(Tag(0), &group, vec![scale * (rank.rank() + 1) as f64])
        })
        .unwrap();
        for (i, r) in out.results.iter().enumerate() {
            let expect: f64 = scale * ((i + 1) * (i + 2)) as f64 / 2.0;
            prop_assert!((r[0] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        }
    }

    /// Virtual makespans are deterministic for randomized programs.
    #[test]
    fn makespan_is_deterministic(p in 2usize..8, rounds in 1usize..5, seed in 0u64..50) {
        let run = || {
            Machine::run(p, SimConfig::default(), move |rank| {
                let group = Group::world(rank.size());
                let mut x = vec![(rank.rank() as u64 ^ seed) as f64; 32];
                for round in 0..rounds {
                    rank.compute(1000 + (seed % 7) * 100);
                    x = rank.allreduce_sum_group(Tag(round as u64 * 1000), &group, x)?;
                }
                Ok(x[0])
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.profile, b.profile);
        prop_assert_eq!(a.results, b.results);
    }
}
