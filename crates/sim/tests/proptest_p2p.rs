//! Fuzz-style property tests of the point-to-point layer: random matched
//! communication schedules must deliver every payload intact, conserve
//! traffic, and produce bit-identical profiles on re-execution.

use proptest::prelude::*;
use psse_sim::prelude::*;

/// A randomly generated transfer: src → dst with a unique tag and a
/// payload derived from (src, tag).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    src: usize,
    dst: usize,
    tag: u64,
    len: usize,
}

fn payload_for(t: &Transfer) -> Vec<f64> {
    (0..t.len)
        .map(|i| (t.src * 1_000_003 + t.tag as usize * 97 + i) as f64)
        .collect()
}

/// Strategy: a world size and a set of transfers with unique tags.
fn schedules() -> impl Strategy<Value = (usize, Vec<Transfer>)> {
    (2usize..7).prop_flat_map(|p| {
        let transfer =
            (0usize..p, 0usize..p, 0usize..400).prop_map(move |(src, dst, len)| Transfer {
                src,
                dst: if src == dst { (dst + 1) % p } else { dst },
                tag: 0, // assigned below
                len,
            });
        (Just(p), prop::collection::vec(transfer, 1..40)).prop_map(|(p, mut ts)| {
            for (i, t) in ts.iter_mut().enumerate() {
                t.tag = i as u64; // unique tags: no matching ambiguity
            }
            (p, ts)
        })
    })
}

fn run_schedule(p: usize, transfers: &[Transfer], cfg: SimConfig) -> SimOutcome<usize> {
    Machine::run(p, cfg, |rank| {
        let me = rank.rank();
        // Deterministic per-rank order: first all sends (eager, never
        // block), then all receives in schedule order.
        for t in transfers.iter().filter(|t| t.src == me) {
            rank.send(t.dst, Tag(t.tag), payload_for(t))?;
        }
        let mut received = 0usize;
        for t in transfers.iter().filter(|t| t.dst == me) {
            let data = rank.recv(t.src, Tag(t.tag))?;
            assert_eq!(data, payload_for(t), "payload corrupted in transit");
            received += 1;
        }
        Ok(received)
    })
    .expect("schedule must complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every payload arrives intact; word/message totals balance; the
    /// profile is deterministic across executions.
    #[test]
    fn random_schedules_deliver_and_conserve((p, transfers) in schedules()) {
        let out1 = run_schedule(p, &transfers, SimConfig::default());
        let total_received: usize = out1.results.iter().sum();
        prop_assert_eq!(total_received, transfers.len());

        let (sent, recvd) = out1.profile.words_balance();
        prop_assert_eq!(sent, recvd);
        let expected_words: u64 = transfers.iter().map(|t| t.len as u64).sum();
        prop_assert_eq!(sent, expected_words);

        // Determinism: an identical re-run yields an identical profile.
        let out2 = run_schedule(p, &transfers, SimConfig::default());
        prop_assert_eq!(out1.profile, out2.profile);
    }

    /// Message splitting: with a tiny message cap, message counts equal
    /// the sum of per-transfer ceil(len/m), and payloads still arrive
    /// intact (checked inside run_schedule).
    #[test]
    fn random_schedules_split_consistently(
        (p, transfers) in schedules(),
        m in 1usize..17,
    ) {
        let cfg = SimConfig {
            max_message_words: m,
            ..SimConfig::counters_only()
        };
        let out = run_schedule(p, &transfers, cfg);
        let expected_msgs: u64 = transfers
            .iter()
            .map(|t| if t.len == 0 { 1 } else { t.len.div_ceil(m) } as u64)
            .sum();
        let total_msgs: u64 = out.profile.per_rank.iter().map(|s| s.msgs_sent).sum();
        prop_assert_eq!(total_msgs, expected_msgs);
    }

    /// Virtual makespan is invariant to receive order: permuting the
    /// receive sequence of a rank cannot change send-side clocks, and
    /// the final clock is the max over arrivals either way.
    #[test]
    fn makespan_invariant_to_receive_order((p, transfers) in schedules(), flip in any::<bool>()) {
        let transfers = &transfers;
        let run = |reversed: bool| {
            Machine::run(p, SimConfig::default(), |rank| {
                let me = rank.rank();
                for t in transfers.iter().filter(|t| t.src == me) {
                    rank.send(t.dst, Tag(t.tag), payload_for(t))?;
                }
                let mut mine: Vec<&Transfer> =
                    transfers.iter().filter(|t| t.dst == me).collect();
                if reversed {
                    mine.reverse();
                }
                for t in mine {
                    rank.recv(t.src, Tag(t.tag))?;
                }
                Ok(rank.now())
            })
            .expect("schedule must complete")
        };
        let a = run(false);
        let b = run(flip);
        // Per-rank final clocks agree (max over the same arrival set).
        for (x, y) in a.results.iter().zip(&b.results) {
            prop_assert!((x - y).abs() < 1e-15);
        }
        prop_assert!((a.profile.makespan - b.profile.makespan).abs() < 1e-15);
    }
}
