//! The sequential two-level machine (paper Fig. 1(a) and Eqs. 3–4),
//! exercised for real: naive vs blocked matmul driven through the LRU
//! cache simulator, measured traffic vs the `Ω(F/√M)` lower bound, and
//! the sequential energy-optimal cache size.

use psse_algos::seq_matmul::{choose_tile, instrumented_matmul, SeqVariant};
use psse_bench::report::{ascii_plot_loglog, banner, sci, Table};
use psse_core::params::MachineParams;
use psse_core::sequential::{
    blocked_matmul_costs, optimal_fast_memory, sequential_energy, sequential_time,
    traffic_vs_lower_bound,
};
use psse_kernels::matrix::Matrix;

fn main() {
    banner("measured traffic: naive vs blocked matmul vs the Eq. 3 bound");
    let n = 64usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut t = Table::new(&[
        "fast mem (words)",
        "naive W",
        "blocked W",
        "blocked/bound",
        "model W (blocked)",
    ]);
    let mut naive_pts = Vec::new();
    let mut blocked_pts = Vec::new();
    let mut bound_pts = Vec::new();
    for log_m in [9u32, 10, 11, 12] {
        let fast = 1u64 << log_m;
        let (_, sn) = instrumented_matmul(&a, &b, SeqVariant::Naive, fast, 1).unwrap();
        let tile = choose_tile(fast);
        let (_, sb) = instrumented_matmul(&a, &b, SeqVariant::Blocked { tile }, fast, 1).unwrap();
        let ratio = traffic_vs_lower_bound(n as u64, fast as f64, sb.words_moved as f64);
        let model = blocked_matmul_costs(n as u64, fast as f64, 1.0).words;
        t.row(&[
            fast.to_string(),
            sn.words_moved.to_string(),
            sb.words_moved.to_string(),
            format!("{ratio:.2}"),
            sci(model),
        ]);
        naive_pts.push((fast as f64, sn.words_moved as f64));
        blocked_pts.push((fast as f64, sb.words_moved as f64));
        bound_pts.push((fast as f64, sb.words_moved as f64 / ratio));
        assert!(ratio >= 1.0, "measured traffic must respect the bound");
    }
    println!("{}", t.render());
    t.write_csv("sequential_traffic");
    println!(
        "{}",
        ascii_plot_loglog(
            &[
                ("naive", &naive_pts),
                ("blocked", &blocked_pts),
                ("lower bound", &bound_pts),
            ],
            60,
            14
        )
    );
    println!(
        "Blocked traffic hugs the Ω(F/sqrt(M)) bound within a small constant;\n\
         naive traffic stays ~n³ regardless of M (LRU thrashing).\n"
    );

    banner("sequential energy: the cache size that minimizes energy");
    let mp = MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(1e-8)
        .alpha_t(1e-7)
        .gamma_e(1e-9)
        .beta_e(1e-7)
        .delta_e(1e-6)
        .max_message_words(8.0)
        .build()
        .unwrap();
    let n_model = 1u64 << 11;
    let (m_star, e_star) = optimal_fast_memory(&mp, n_model, 48.0).unwrap();
    println!(
        "n = {n_model}: energy-optimal fast memory M* = {} words (E = {} J)",
        sci(m_star),
        sci(e_star)
    );
    let mut t = Table::new(&["M (words)", "T (s)", "E (J)", "E/E*"]);
    for f in [0.1, 0.3, 1.0, 3.0, 10.0] {
        let m = m_star * f;
        let c = blocked_matmul_costs(n_model, m, mp.max_message_words);
        let e = sequential_energy(&mp, &c, m);
        t.row(&[
            sci(m),
            sci(sequential_time(&mp, &c)),
            sci(e),
            format!("{:.3}", e / e_star),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("sequential_energy");
    println!(
        "The sequential analogue of the paper's M0: below M* communication\n\
         energy dominates, above it the powered-memory term does — 'race to\n\
         halt' (max cache) is not energy-optimal even sequentially."
    );
}
