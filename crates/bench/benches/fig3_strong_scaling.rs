//! Regenerates paper **Fig. 3**: "Limits of communication strong scaling
//! for matrix multiplication" — `W·p` (bandwidth cost × processors)
//! versus `p`, for classical (`ω = 3`) and Strassen-like
//! (`ω0 = log₂7`) matmul.
//!
//! The flat region is perfect strong scaling (communication volume per
//! processor shrinks like `1/p`); past `p = n^ω/M^(ω/2)` the
//! memory-independent lower bound takes over and `W·p` rises as
//! `p^(1/3)` (classical) / `p^(1−2/ω0)` (Strassen-like) — the
//! Strassen-like curve leaves the flat region **earlier**, exactly as in
//! the paper's figure.
//!
//! A second section cross-checks the flat region against *measured*
//! words from real 2.5D runs on the simulator.

use psse_algos::prelude::*;
use psse_bench::report::{ascii_plot_loglog, banner, sci, svg_plot, write_svg, Scale, Table};
use psse_core::prelude::*;
use psse_kernels::matrix::Matrix;
use psse_sim::machine::SimConfig;

fn main() {
    banner("Figure 3: limits of communication strong scaling");

    // Model curves. Problem first fits at p_min = n²/M = 64 processors;
    // classical scaling saturates at p_min^(3/2) = 512 (the paper's
    // x-axis tick labels are p_min, p_min^(3/2)).
    let n: u64 = 1 << 13;
    let mem = (n as f64) * (n as f64) / 64.0;
    let classical = fig3_series(n, mem, 3.0, 28, 64.0);
    let strassen = fig3_series(n, mem, STRASSEN_OMEGA, 28, 64.0);

    let mut table = Table::new(&[
        "p",
        "W*p classical",
        "perfect(cl)",
        "W*p strassen-like",
        "perfect(st)",
    ]);
    for (c, s) in classical.iter().zip(&strassen) {
        table.row(&[
            c.p.to_string(),
            sci(c.words_times_p),
            if c.perfect { "yes" } else { "no" }.into(),
            sci(s.words_times_p),
            if s.perfect { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", table.render());
    table.write_csv("fig3_strong_scaling");

    let c_pts: Vec<(f64, f64)> = classical
        .iter()
        .map(|pt| (pt.p as f64, pt.words_times_p))
        .collect();
    let s_pts: Vec<(f64, f64)> = strassen
        .iter()
        .map(|pt| (pt.p as f64, pt.words_times_p))
        .collect();
    println!(
        "{}",
        ascii_plot_loglog(&[("classical", &c_pts), ("strassen-like", &s_pts)], 64, 16)
    );
    write_svg(
        "fig3_strong_scaling",
        &svg_plot(
            "Fig. 3: limits of communication strong scaling",
            "p (processors)",
            "W * p (bandwidth cost x processors)",
            &[("classical", &c_pts), ("strassen-like", &s_pts)],
            Scale::Log,
            Scale::Log,
        ),
    );

    let p_limit_cl = classical.iter().rfind(|pt| pt.perfect).unwrap().p;
    let p_limit_st = strassen.iter().rfind(|pt| pt.perfect).unwrap().p;
    println!(
        "scaling limit (classical):     p ≈ {p_limit_cl}  (theory: n³/M^(3/2) = {})",
        sci((n as f64).powi(3) / mem.powf(1.5))
    );
    println!(
        "scaling limit (strassen-like): p ≈ {p_limit_st}  (theory: n^ω/M^(ω/2) = {})",
        sci((n as f64).powf(STRASSEN_OMEGA) / mem.powf(STRASSEN_OMEGA / 2.0))
    );
    assert!(
        p_limit_st < p_limit_cl,
        "Strassen-like scaling must saturate earlier (paper Fig. 3)"
    );

    // Measured cross-check: run 2.5D matmul with fixed per-rank memory
    // (fixed q = 8, so the shift phase dominates) and growing
    // replication c — the flat region made real. At toy sizes the O(1)
    // skew/replication terms are visible, so we assert the *shape*:
    // per-rank W falls monotonically while p grows 4x, and W·p stays
    // within a small constant (past the limit it would grow without
    // bound).
    banner("Fig. 3 cross-check: measured W·p on the simulator (2.5D runs)");
    let nn = 64usize;
    let a = Matrix::random(nn, nn, 1);
    let b = Matrix::random(nn, nn, 2);
    let mut mtable = Table::new(&["p", "c", "max W/rank (words)", "W*p", "vs c=1"]);
    let mut base: Option<f64> = None;
    let mut prev_w = u64::MAX;
    for c in [1usize, 2, 4] {
        let p = 64 * c; // q = 8 fixed ⇒ fixed block size / memory per rank
        let (_, profile) = matmul_25d(&a, &b, p, c, SimConfig::counters_only()).unwrap();
        let w = profile.max_words_sent();
        let wp = w as f64 * p as f64;
        let flat = match base {
            None => {
                base = Some(wp);
                "ref".to_string()
            }
            Some(b0) => format!("{:.2}x", wp / b0),
        };
        mtable.row(&[p.to_string(), c.to_string(), w.to_string(), sci(wp), flat]);
        assert!(w < prev_w, "per-rank W must fall as p grows at fixed M");
        assert!(wp <= base.unwrap() * 2.5, "W·p must stay within a constant");
        prev_w = w;
    }
    println!("{}", mtable.render());
    mtable.write_csv("fig3_measured");
    println!(
        "Per-rank W falls monotonically while p grows 4x and W·p stays within\n\
         a small constant of the 2D baseline — the flat region, measured\n\
         (algorithmic O(1) skew/replication terms account for the drift;\n\
         past the scaling limit W·p would grow as p^(1/3))."
    );
}
