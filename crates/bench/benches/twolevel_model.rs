//! The two-level machine model (paper Fig. 2 and Eqs. 12/17) exercised
//! end-to-end: the analytic model priced against real 2.5D-matmul and
//! n-body runs on a *hierarchical* simulated machine (cheap intra-node
//! links, expensive inter-node links).

use psse_algos::prelude::*;
use psse_bench::report::{banner, sci, Table};
use psse_core::twolevel::TwoLevelParams;
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::random_particles;

fn two_level(nodes: u64, cores: u64) -> TwoLevelParams {
    TwoLevelParams {
        nodes,
        cores_per_node: cores,
        gamma_t: 1e-9,
        gamma_e: 2e-9,
        beta_n_t: 2e-8, // inter-node: 20x slower than intra
        beta_n_e: 4e-8,
        beta_l_t: 1e-9,
        beta_l_e: 2e-9,
        delta_n_e: 1e-9,
        delta_l_e: 1e-10,
        epsilon_e: 1e-5,
        mem_node: 1e6,
        mem_local: 1e4,
    }
}

fn main() {
    banner("Eq. 17 workload: n-body on the hierarchical simulator");
    let particles = random_particles(256, 1);
    let mut t = Table::new(&[
        "nodes",
        "cores",
        "p",
        "T meas (s)",
        "E meas (J)",
        "intra words",
        "inter words",
        "E model (J)",
    ]);
    for (nodes, cores) in [(4u64, 4u64), (8, 4), (16, 4)] {
        let tl = two_level(nodes, cores);
        let p = (nodes * cores) as usize;
        let cfg = sim_config_two_level(&tl);
        // Layout: pr ring across all ranks; node-major ids mean ring
        // neighbours are mostly intra-node.
        let (_, profile) = nbody_replicated(&particles, p, 1, cfg).unwrap();
        let m = measure_two_level(&profile, &tl);
        let (_t_model, e_model) = tl.nbody_point(256, 20.0);
        t.row(&[
            nodes.to_string(),
            cores.to_string(),
            p.to_string(),
            sci(m.time),
            sci(m.energy),
            profile.total_words_intra().to_string(),
            profile.total_words_inter().to_string(),
            sci(e_model),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("twolevel_nbody");
    println!(
        "Most ring traffic stays on cheap intra-node links (node-major rank\n\
         layout); the analytic Eq. 17 model prices the same machine for\n\
         comparison (its algorithm walks all pr blocks, so absolute numbers\n\
         differ by algorithmic constants — the scaling shape is the point).\n"
    );

    banner("Eq. 12 workload: 2.5D matmul on the hierarchical simulator");
    let n = 64;
    let a = Matrix::random(n, n, 2);
    let b = Matrix::random(n, n, 3);
    let mut t = Table::new(&[
        "layout",
        "T meas (s)",
        "E meas (J)",
        "intra words",
        "inter words",
    ]);
    // Same p = 64 machine, increasingly node-aligned layer placement:
    // with layer-major rank ids, each 2.5D layer (16 ranks) spans
    // 16/cores nodes; fibers cross nodes. Vary cores per node.
    for cores in [1u64, 4, 16] {
        let tl = two_level(64 / cores, cores);
        let cfg = sim_config_two_level(&tl);
        let (cm, profile) = matmul_25d(&a, &b, 64, 4, cfg).unwrap();
        assert!(cm.max_abs_diff(&psse_kernels::gemm::matmul(&a, &b)) < 1e-9);
        let m = measure_two_level(&profile, &tl);
        t.row(&[
            format!("{} nodes x {cores} cores", 64 / cores),
            sci(m.time),
            sci(m.energy),
            profile.total_words_intra().to_string(),
            profile.total_words_inter().to_string(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("twolevel_matmul");
    println!(
        "Fatter nodes keep more of the 2.5D traffic on intra-node links,\n\
         cutting both runtime and communication energy — the co-design\n\
         lever the two-level model (Fig. 2) exists to expose."
    );

    banner("analytic two-level scaling (Eq. 17): energy flat in node count");
    let mut t = Table::new(&["nodes", "T model (s)", "E model (J)"]);
    let mut base_e = None;
    for nodes in [4u64, 8, 16, 32] {
        let tl = two_level(nodes, 8);
        let (tm, em) = tl.nbody_point(1 << 20, 20.0);
        let e0 = *base_e.get_or_insert(em);
        t.row(&[nodes.to_string(), sci(tm), sci(em)]);
        assert!(
            (em / e0 - 1.0).abs() < 1e-9,
            "two-level energy must be flat"
        );
    }
    println!("{}", t.render());
    t.write_csv("twolevel_scaling");
    println!("Perfect strong scaling survives the two-level refinement.");
}
