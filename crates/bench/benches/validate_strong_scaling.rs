//! End-to-end validation of the headline theorem (our addition — the
//! paper proves it but reports no runs): execute the real algorithms on
//! the simulated machine along a strong-scaling path with **fixed memory
//! per processor** and measure both sides of the claim:
//!
//! * runtime `T` (virtual makespan) falls like `1/p`, and
//! * energy `E` (Eq. 2 priced over the measured counters) stays within a
//!   small constant of the baseline,
//!
//! for 2.5D matmul and the replicating n-body algorithm — while the FFT
//! (the paper's counterexample) shows energy *growing* with `p`, and
//! distributed LU shows its message count growing with `p` (the
//! critical-path latency term that cannot scale).

use psse_algos::prelude::*;
use psse_bench::report::{banner, sci, Table};
use psse_core::params::MachineParams;
use psse_kernels::fft::Complex64;
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::random_particles;
use psse_kernels::rng::XorShift64;

/// A machine where compute, bandwidth, latency, memory and leakage all
/// contribute visibly to energy at bench scale.
fn machine() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(4e-9)
        .alpha_t(1e-7)
        .gamma_e(2e-9)
        .beta_e(8e-9)
        .alpha_e(2e-7)
        .delta_e(1e-7)
        .epsilon_e(1e-4)
        .max_message_words(4096.0)
        .mem_words(1e9)
        .build()
        .unwrap()
}

fn main() {
    let mp = machine();
    let cfg = sim_config_from(&mp);

    banner("2.5D matmul: fixed M per rank, p = c·p_min (q = 8 fixed)");
    let n = 256usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let reference = psse_kernels::gemm::matmul(&a, &b);
    let mut t1 = Table::new(&["p", "c", "T (s)", "T*p", "E (J)", "E/E(c=1)", "max W/rank"]);
    let mut base_e = None;
    let mut base_t = None;
    for c in [1usize, 2, 4] {
        let p = 64 * c;
        let (cm, profile) = matmul_25d(&a, &b, p, c, cfg.clone()).unwrap();
        assert!(cm.max_abs_diff(&reference) < 1e-9, "numerics must hold");
        let m = measure(&profile, &mp);
        let e0 = *base_e.get_or_insert(m.energy);
        let t0 = *base_t.get_or_insert(m.time);
        t1.row(&[
            p.to_string(),
            c.to_string(),
            sci(m.time),
            sci(m.time * p as f64),
            sci(m.energy),
            format!("{:.3}", m.energy / e0),
            profile.max_words_sent().to_string(),
        ]);
        // Perfect strong scaling, modulo algorithmic constants.
        assert!(
            m.time < t0 / c as f64 * 1.35,
            "runtime must scale ~1/p: c={c}, T = {} vs T0 = {t0}",
            m.time
        );
        assert!(
            m.energy < e0 * 1.6 && m.energy > e0 * 0.6,
            "energy must stay ~constant: c={c}, E = {} vs E0 = {e0}",
            m.energy
        );
    }
    println!("{}", t1.render());
    t1.write_csv("validate_matmul_25d");

    banner("replicating n-body: fixed block size, p = c·p_min (pr = 16 fixed)");
    let particles = random_particles(256, 3);
    let mut t2 = Table::new(&["p", "c", "T (s)", "T*p", "E (J)", "E/E(c=1)"]);
    let mut base_e = None;
    let mut base_t = None;
    for c in [1usize, 2, 4] {
        let p = 16 * c;
        let (_, profile) = nbody_replicated(&particles, 16, c, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        let e0 = *base_e.get_or_insert(m.energy);
        let t0 = *base_t.get_or_insert(m.time);
        t2.row(&[
            p.to_string(),
            c.to_string(),
            sci(m.time),
            sci(m.time * p as f64),
            sci(m.energy),
            format!("{:.3}", m.energy / e0),
        ]);
        assert!(m.time < t0 / c as f64 * 1.35, "n-body runtime must scale");
        assert!(
            m.energy < e0 * 1.5 && m.energy > 0.6 * e0,
            "n-body energy must stay ~constant"
        );
    }
    println!("{}", t2.render());
    t2.write_csv("validate_nbody");

    banner("FFT (counterexample): energy grows with p");
    let mut rng = XorShift64::new(9);
    let signal: Vec<Complex64> = (0..4096)
        .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
        .collect();
    let mut t3 = Table::new(&[
        "p",
        "T (s)",
        "E (J)",
        "max S/rank (naive)",
        "max S/rank (tree)",
    ]);
    let mut prev_e = 0.0;
    for p in [4usize, 8, 16, 32] {
        let (_, naive) = distributed_fft(&signal, p, AllToAllKind::Pairwise, cfg.clone()).unwrap();
        let (_, tree) = distributed_fft(&signal, p, AllToAllKind::Hypercube, cfg.clone()).unwrap();
        let m = measure(&naive, &mp);
        t3.row(&[
            p.to_string(),
            sci(m.time),
            sci(m.energy),
            naive.max_msgs_sent().to_string(),
            tree.max_msgs_sent().to_string(),
        ]);
        if p > 4 {
            assert!(
                m.energy > prev_e * 0.95,
                "FFT energy should not fall with p (no perfect range)"
            );
        }
        prev_e = m.energy;
    }
    println!("{}", t3.render());
    t3.write_csv("validate_fft");

    banner("LU (critical path): messages per rank grow with p");
    let alu = Matrix::random_diagonally_dominant(64, 5);
    let mut t4 = Table::new(&["p", "T (s)", "max S/rank", "max W/rank"]);
    let mut prev_s = 0;
    for p in [4usize, 16, 64] {
        let (_, profile) = lu_2d(&alu, p, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        t4.row(&[
            p.to_string(),
            sci(m.time),
            profile.max_msgs_sent().to_string(),
            profile.max_words_sent().to_string(),
        ]);
        assert!(
            profile.max_msgs_sent() > prev_s,
            "LU message count must grow with p"
        );
        prev_s = profile.max_msgs_sent();
    }
    println!("{}", t4.render());
    t4.write_csv("validate_lu");

    banner("TSQR (communication-avoiding QR): log p critical path");
    let atall = Matrix::random(1 << 12, 8, 6);
    let mut t5 = Table::new(&["p", "T (s)", "root recv words", "naive gather words"]);
    for p in [4usize, 16, 64] {
        let (_, profile) = tsqr(&atall, p, cfg.clone()).unwrap();
        let m = measure(&profile, &mp);
        t5.row(&[
            p.to_string(),
            sci(m.time),
            profile.per_rank[0].words_recvd.to_string(),
            ((p - 1) * 64).to_string(),
        ]);
    }
    println!("{}", t5.render());
    t5.write_csv("validate_tsqr");
    println!(
        "The R-combine tree keeps the root's received words at log2(p)·n²\n\
         instead of the naive gather's (p−1)·n²."
    );

    banner("verdict");
    println!(
        "matmul & n-body: T ∝ 1/p at constant E (perfect strong scaling, no\n\
         additional energy). FFT: E grows with p. LU: S grows with p.\n\
         All numerics verified against sequential references."
    );
}
