//! Regenerates paper **Table I**: the parameters of the §VI case-study
//! machine (dual-socket Intel Sandy Bridge "Jaketown"), plus the model's
//! predictions for the case-study run that Figs. 6–7 are built on.

use psse_bench::report::{banner, sci, Table};
use psse_core::energy::{e_matmul_25d, gflops_per_watt};
use psse_core::machines::{jaketown, table2};
use psse_core::tech_scaling::CaseStudy;
use psse_core::time::t_matmul_25d;

fn main() {
    banner("Table I: case-study machine parameters (Jaketown)");
    let mp = jaketown();

    let mut t = Table::new(&["parameter", "value", "unit"]);
    t.row(&["gamma_t".into(), sci(mp.gamma_t), "s/flop".into()]);
    t.row(&["beta_t".into(), sci(mp.beta_t), "s/word".into()]);
    t.row(&["alpha_t".into(), sci(mp.alpha_t), "s/msg".into()]);
    t.row(&["gamma_e".into(), sci(mp.gamma_e), "J/flop".into()]);
    t.row(&["beta_e".into(), sci(mp.beta_e), "J/word".into()]);
    t.row(&["alpha_e".into(), sci(mp.alpha_e), "J/msg".into()]);
    t.row(&["delta_e".into(), sci(mp.delta_e), "J/word/s".into()]);
    t.row(&["epsilon_e".into(), sci(mp.epsilon_e), "J/s".into()]);
    t.row(&["M".into(), sci(mp.mem_words), "words".into()]);
    t.row(&["m".into(), sci(mp.max_message_words), "words".into()]);
    println!("{}", t.render());
    t.write_csv("table1_parameters");

    // Derivations the paper describes in §VI.
    banner("Table I derivation checks");
    let sb = &table2()[0]; // Sandy Bridge 2687W row
    println!(
        "peak FP: {:.1} GFLOP/s  →  gamma_t = 1/peak = {} (table: {})",
        sb.peak_gflops(),
        sci(sb.gamma_t()),
        sci(mp.gamma_t)
    );
    println!(
        "TDP {} W  →  gamma_e = TDP/peak = {} (table: {})",
        sb.tdp_w,
        sci(sb.gamma_e()),
        sci(mp.gamma_e)
    );
    println!(
        "QPI 25.6 GB/s, 4-byte words  →  beta_t = {} (table: {})",
        sci(4.0 / 25.6e9),
        sci(mp.beta_t)
    );

    // The §VI model evaluation these parameters feed.
    banner("case-study model evaluation (2.5D matmul, n = 35000, p = 2)");
    let study = CaseStudy::default();
    let mem = study.memory(&mp);
    let t_run = t_matmul_25d(&mp, study.n, study.p, mem);
    let e_run = e_matmul_25d(&mp, study.n, mem);
    let nf = study.n as f64;
    let mut m = Table::new(&["quantity", "value"]);
    m.row(&["memory used/socket (words)".into(), sci(mem)]);
    m.row(&["predicted runtime T (s)".into(), sci(t_run)]);
    m.row(&["predicted energy E (J)".into(), sci(e_run)]);
    m.row(&["average power E/T (W)".into(), sci(e_run / t_run)]);
    m.row(&[
        "efficiency (GFLOPS/W)".into(),
        format!("{:.3}", gflops_per_watt(nf * nf * nf, e_run)),
    ]);
    m.row(&[
        "peak-only efficiency (GFLOPS/W)".into(),
        format!("{:.3}", sb.gflops_per_watt()),
    ]);
    println!("{}", m.render());
    m.write_csv("table1_case_study_eval");
    println!(
        "Note (paper): with p = 2 and n = 35000 this point is outside the\n\
         theoretical strong-scaling region; the model still prices it."
    );
}
