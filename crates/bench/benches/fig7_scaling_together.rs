//! Regenerates paper **Fig. 7**: GFLOPS/W of the §VI case study as **all**
//! energy parameters improve together by a multiplier over current
//! technology. The paper's headline: a desired efficiency of
//! 75 GFLOPS/W is reached "after 5 generations" (multiplier ≈ 32).

use psse_bench::report::{ascii_plot_loglog, banner, svg_plot, write_svg, Scale, Table};
use psse_core::energy::gflops_per_watt;
use psse_core::machines::jaketown;
use psse_core::tech_scaling::{fig7_series, multiplier_for_target, scale_all_energy, CaseStudy};
use psse_lab::prelude::{Lab, LabConfig, RunKey};

fn main() {
    banner("Figure 7: scaling gamma_e, beta_e, delta_e together");
    let base = jaketown();
    let study = CaseStudy::default();

    let multipliers: Vec<f64> = (0..=10).map(|i| 2f64.powi(i)).collect();
    let series = fig7_series(&base, study, &multipliers);

    // The same sweep through the psse-lab engine: one matmul model run
    // per multiplier; the lab's closed-form pricing reproduces
    // `fig7_series` bit-for-bit (asserted per row).
    let lab = Lab::new(LabConfig::default());
    let keys: Vec<RunKey> = multipliers
        .iter()
        .map(|&k| {
            let scaled = scale_all_energy(&base, 1.0 / k);
            let mut key = RunKey::model("matmul", study.n, study.p, scaled.clone());
            key.mem = study.memory(&scaled);
            key
        })
        .collect();
    let results = lab.run_keys(&keys);

    let mut table = Table::new(&["improvement multiplier", "generations", "GFLOPS/W"]);
    let mut pts = Vec::new();
    for (i, (k, eff)) in series.iter().enumerate() {
        let r = results[i].as_ref().expect("matmul model run");
        let lab_eff = gflops_per_watt(r.flops, r.energy);
        assert_eq!(lab_eff.to_bits(), eff.to_bits());
        table.row(&[
            format!("{k}"),
            format!("{:.1}", k.log2()),
            format!("{lab_eff:.3}"),
        ]);
        pts.push((*k, lab_eff));
    }
    println!("{}", table.render());
    table.write_csv("fig7_scaling_together");
    println!("{}", ascii_plot_loglog(&[("GFLOPS/W", &pts)], 64, 14));
    write_svg(
        "fig7_scaling_together",
        &svg_plot(
            "Fig. 7: scaling all energy parameters together",
            "improvement multiplier over current technology",
            "GFLOPS/W",
            &[("GFLOPS/W", &pts)],
            Scale::Log,
            Scale::Log,
        ),
    );

    let target = 75.0;
    let k = multiplier_for_target(&base, study, target).unwrap();
    println!(
        "target {target} GFLOPS/W reached at multiplier {:.1} = {:.2} generations \
         (paper: ~5 generations)",
        k,
        k.log2()
    );
    assert!(
        (4.0..=6.5).contains(&k.log2()),
        "expected ≈5 generations, got {:.2}",
        k.log2()
    );
    println!("OK: Fig. 7 shape reproduced.");
}
