//! Criterion micro-benchmarks for the local kernels and the simulator
//! itself: blocked GEMM vs naive, Strassen vs classical (the crossover
//! behind `ω0`), FFT, LU, the n-body interaction kernel, and the
//! per-message overhead of the virtual machine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psse_algos::prelude::*;
use psse_kernels::fft::{fft, Complex64};
use psse_kernels::gemm::{matmul, matmul_naive};
use psse_kernels::lu::lu_partial_pivot_inplace;
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::{accumulate_forces, random_particles};
use psse_kernels::rng::XorShift64;
use psse_kernels::strassen::{strassen_winograd, strassen_with_cutoff};
use psse_sim::machine::SimConfig;
use psse_sim::seqmem::FastMemory;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| matmul(black_box(&a), black_box(&b)))
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
                bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
            });
        }
    }
    g.finish();
}

fn bench_strassen(c: &mut Criterion) {
    let mut g = c.benchmark_group("strassen_vs_classical");
    g.sample_size(10);
    for n in [256usize, 512] {
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        g.bench_with_input(BenchmarkId::new("classical", n), &n, |bch, _| {
            bch.iter(|| matmul(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("strassen_cut64", n), &n, |bch, _| {
            bch.iter(|| strassen_with_cutoff(black_box(&a), black_box(&b), 64))
        });
        g.bench_with_input(BenchmarkId::new("winograd_cut64", n), &n, |bch, _| {
            bch.iter(|| strassen_winograd(black_box(&a), black_box(&b), 64))
        });
    }
    g.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.bench_function("lru_stream_1m_accesses", |bch| {
        bch.iter(|| {
            let mut m = FastMemory::new(1 << 14, 8);
            for a in 0..1_000_000u64 {
                m.access(black_box(a % (1 << 16)), a % 7 == 0);
            }
            m.stats()
        })
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    let mut rng = XorShift64::new(5);
    for logn in [12usize, 16] {
        let n = 1 << logn;
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |bch, _| {
            bch.iter(|| fft(black_box(&x)))
        });
    }
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    for n in [64usize, 128] {
        let a = Matrix::random_diagonally_dominant(n, 6);
        g.bench_with_input(BenchmarkId::new("partial_pivot", n), &n, |bch, _| {
            bch.iter(|| {
                let mut m = a.clone();
                lu_partial_pivot_inplace(black_box(&mut m)).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("scalar_nopivot", n), &n, |bch, _| {
            bch.iter(|| {
                let mut m = a.clone();
                psse_kernels::lu::lu_nopivot_inplace(black_box(&mut m)).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("blocked_nopivot", n), &n, |bch, _| {
            bch.iter(|| {
                let mut m = a.clone();
                psse_kernels::lu::lu_blocked_inplace(black_box(&mut m), 32).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_qr_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorizations");
    let a = Matrix::random(512, 16, 7);
    g.bench_function("householder_qr_512x16", |bch| {
        bch.iter(|| psse_kernels::qr::householder_qr(black_box(&a)))
    });
    let b = Matrix::random(96, 96, 8);
    let mut spd = psse_kernels::gemm::matmul(&b.transpose(), &b);
    for i in 0..96 {
        spd[(i, i)] += 96.0;
    }
    g.bench_function("cholesky_96", |bch| {
        bch.iter(|| {
            let mut m = spd.clone();
            psse_kernels::lu::cholesky_inplace(black_box(&mut m)).unwrap()
        })
    });
    g.finish();
}

fn bench_nbody_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbody_kernel");
    for n in [256usize, 1024] {
        let ps = random_particles(n, 7);
        g.bench_with_input(BenchmarkId::new("pairwise", n), &n, |bch, _| {
            let mut acc = vec![[0.0f64; 3]; n];
            bch.iter(|| accumulate_forces(black_box(&ps), black_box(&ps), &mut acc))
        });
    }
    g.finish();
}

fn bench_simulator_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("spawn_16_ranks_allreduce", |bch| {
        bch.iter(|| {
            psse_sim::machine::Machine::run(16, SimConfig::counters_only(), |rank| {
                rank.allreduce_sum(psse_sim::message::Tag(0), vec![1.0; 256])
            })
            .unwrap()
        })
    });
    g.bench_function("cannon_16_ranks_n32", |bch| {
        let a = Matrix::random(32, 32, 8);
        let b = Matrix::random(32, 32, 9);
        bch.iter(|| cannon_matmul(black_box(&a), black_box(&b), 16, SimConfig::counters_only()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_strassen,
    bench_fft,
    bench_lu,
    bench_qr_cholesky,
    bench_nbody_kernel,
    bench_cache_sim,
    bench_simulator_overhead
);
criterion_main!(benches);
