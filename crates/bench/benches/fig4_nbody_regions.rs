//! Regenerates paper **Fig. 4(a–c)**: possible executions of the
//! data-replicating n-body algorithm in the `(p, M)` plane for fixed
//! `n`, with contrived-but-illustrative machine parameters (as in the
//! paper: "these graphs are for illustrative purposes only, and use
//! contrived parameters").
//!
//! * **(a)** energy as a function of `M` (independent of `p`!), the
//!   minimum at `M = M0`, and equally spaced constant-runtime contours;
//! * **(b)** the runs feasible within an energy budget and within a
//!   per-processor power budget;
//! * **(c)** the runs feasible within a runtime cap and a total power
//!   budget, plus the minimum-energy line `M = M0`.
//!
//! The feasible region is bounded by the thick 1D (`M = n/p`) and 2D
//! (`M = n/√p`) limits. Each panel is emitted as a CSV grid and an ASCII
//! region map; the §V closed forms are cross-checked against the grid.

use psse_bench::report::{banner, sci, svg_plot, write_svg, Scale, Table};
use psse_core::costs::{Algorithm, DirectNBody};
use psse_core::optimize::nbody::NBodyOptimizer;
use psse_core::params::MachineParams;
use psse_lab::prelude::{Lab, LabConfig, RunKey};

/// Contrived machine, tuned so that `M0 = sqrt(B/D) = 1000` sits
/// mid-wedge for `n = 10⁴`, the flop energy baseline is ~1 J, and the
/// communication and memory energies at `M0` are ~0.5 J each — a clearly
/// visible dip, with the `M0` line feasible for `p ∈ [10, 100]`.
fn contrived() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(2e-8)
        .alpha_t(1e-6)
        .gamma_e(1e-9)
        .beta_e(4e-6)
        .alpha_e(1e-4)
        .delta_e(5e-4)
        .epsilon_e(0.0)
        .max_message_words(100.0)
        .mem_words(1e12)
        .build()
        .unwrap()
}

const F: f64 = 10.0;
const N: u64 = 10_000;

fn feasible(nb: &DirectNBody, p: u64, m: f64) -> bool {
    let lo = nb.min_memory(N, p);
    let hi = nb.max_useful_memory(N, p);
    (lo..=hi).contains(&m)
}

/// Render an ASCII map over the (p, M) plane; `class` returns a marker
/// character for feasible cells.
fn region_map(title: &str, class: impl Fn(u64, f64) -> char) {
    let nb = DirectNBody {
        flops_per_interaction: F,
    };
    println!("\n{title}");
    println!("  M (rows, log-spaced high→low) vs p (cols, 6..100)");
    let m_lo = nb.min_memory(N, 100);
    let m_hi = nb.max_useful_memory(N, 6);
    for mi in (0..18).rev() {
        let m = m_lo * (m_hi / m_lo).powf(mi as f64 / 17.0);
        let mut line = format!("  M={:>9.1} |", m);
        for pi in 0..48 {
            let p = (6.0 * (100.0f64 / 6.0).powf(pi as f64 / 47.0)).round() as u64;
            line.push(if feasible(&nb, p, m) {
                class(p, m)
            } else {
                ' '
            });
        }
        println!("{line}");
    }
    println!("               +{}", "-".repeat(48));
    println!("                p = 6 .. 100 (log)");
}

fn main() {
    banner("Figure 4: executions of the data-replicating n-body algorithm");
    let mp = contrived();
    let opt = NBodyOptimizer::new(&mp, F).unwrap();
    let nb = DirectNBody {
        flops_per_interaction: F,
    };

    let m0 = opt.m0().unwrap();
    let e_star = opt.e_star(N).unwrap();
    let (p_lo, p_hi) = opt.m0_processor_range(N).unwrap();
    println!("n = {N}, f = {F}");
    println!("M0 (energy-optimal memory)   = {}", sci(m0));
    println!("E* (minimum energy)          = {} J", sci(e_star));
    println!(
        "M0 feasible for p in         [{}, {}]",
        sci(p_lo),
        sci(p_hi)
    );

    // Panel (a): energy vs M (p-independent) + time contours.
    banner("Fig. 4(a): energy (independent of p) and constant-time contours");
    let mut ta = Table::new(&["M", "E (J)", "E/E*"]);
    let m_lo = nb.min_memory(N, 100);
    let m_hi = nb.max_useful_memory(N, 6);
    for i in 0..25 {
        let m = m_lo * (m_hi / m_lo).powf(i as f64 / 24.0);
        let cfg = opt.evaluate(N, 50, m);
        ta.row(&[
            sci(m),
            sci(cfg.energy),
            format!("{:.3}", cfg.energy / e_star),
        ]);
    }
    println!("{}", ta.render());
    ta.write_csv("fig4a_energy_vs_memory");
    let e_curve: Vec<(f64, f64)> = (0..60)
        .map(|i| {
            let m = m_lo * (m_hi / m_lo).powf(i as f64 / 59.0);
            (m, opt.evaluate(N, 50, m).energy)
        })
        .collect();
    write_svg(
        "fig4a_energy_vs_memory",
        &svg_plot(
            "Fig. 4(a): n-body energy vs memory (independent of p)",
            "M (words per processor)",
            "E (J)",
            &[("E(M)", &e_curve)],
            Scale::Log,
            Scale::Log,
        ),
    );

    // The (p, M) grid with T and E for external contour plotting —
    // routed through the psse-lab batch engine: the keys expand in the
    // same nested order as the old inline loop, the pool executes them
    // on every core, and the runner prices n-body with the identical
    // `NBodyOptimizer::evaluate` floats, so the CSV bytes are unchanged.
    let lab = Lab::new(LabConfig::default());
    let mut keys = Vec::new();
    for pi in 0..30 {
        let p = (6.0 * (100.0f64 / 6.0).powf(pi as f64 / 29.0)).round() as u64;
        for mi in 0..30 {
            let m = m_lo * (m_hi / m_lo).powf(mi as f64 / 29.0);
            let mut k = RunKey::model("nbody", N, p, mp.clone());
            k.f = F;
            k.mem = m;
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);
    let mut grid = Table::new(&["p", "M", "T", "E", "P"]);
    for (k, r) in keys.iter().zip(&results) {
        let r = r.as_ref().expect("n-body model run");
        if r.feasible {
            grid.row(&[
                k.p.to_string(),
                sci(k.mem),
                sci(r.time),
                sci(r.energy),
                sci(r.energy / r.time),
            ]);
        }
    }
    grid.write_csv("fig4_grid");

    let t_mid = opt.evaluate(N, 30, m0).time;
    region_map(
        "Fig. 4(a) region: '=' cells within the feasible wedge; 'T' on the\n\
         T ≈ T(p=30, M0) contour; 'E' on the minimum-energy line M ≈ M0",
        |p, m| {
            let cfg = opt.evaluate(N, p, m);
            if (m / m0).ln().abs() < 0.15 {
                'E'
            } else if (cfg.time / t_mid).ln().abs() < 0.08 {
                'T'
            } else {
                '='
            }
        },
    );

    // Panel (b): energy budget and per-processor power budget.
    banner("Fig. 4(b): runs within an energy budget / per-processor power budget");
    let emax = e_star * 1.3;
    let pmax_proc = opt.average_power(1.0, m0) * 1.5;
    let m_cap = opt.max_memory_given_proc_power(pmax_proc).unwrap();
    println!("energy budget Emax = 1.3·E* = {} J", sci(emax));
    println!(
        "per-proc power budget = {} W  → memory cap M ≤ {}",
        sci(pmax_proc),
        sci(m_cap)
    );
    region_map(
        "'e' = within Emax; 'w' = within per-proc power cap; 'b' = both",
        |p, m| {
            let cfg = opt.evaluate(N, p, m);
            let e_ok = cfg.energy <= emax;
            let w_ok = m <= m_cap;
            match (e_ok, w_ok) {
                (true, true) => 'b',
                (true, false) => 'e',
                (false, true) => 'w',
                (false, false) => '.',
            }
        },
    );
    let fastest = opt.min_time_given_emax(N, emax).unwrap();
    println!(
        "minimum runtime within Emax: T = {} s at p = {}, M = {} (2D boundary)",
        sci(fastest.time),
        sci(fastest.p),
        sci(fastest.mem)
    );

    // Panel (c): runtime cap and total power budget.
    banner("Fig. 4(c): runs within a max time / total power budget");
    let tmax = opt.tmax_threshold().unwrap() * 2.0;
    // Budget sized so the Tmax region and the power region overlap (the
    // paper's "minimum energy and runtime given total power limit" dot).
    let p_total = opt.average_power(70.0, m0);
    println!(
        "runtime cap Tmax = {} s; total power budget = {} W",
        sci(tmax),
        sci(p_total)
    );
    region_map(
        "'t' = meets Tmax; 'w' = within total power; 'b' = both; '.' = neither",
        |p, m| {
            let cfg = opt.evaluate(N, p, m);
            let t_ok = cfg.time <= tmax;
            let w_ok = opt.average_power(p as f64, m) <= p_total;
            match (t_ok, w_ok) {
                (true, true) => 'b',
                (true, false) => 't',
                (false, true) => 'w',
                (false, false) => '.',
            }
        },
    );
    let cheapest = opt.min_energy_given_tmax(N, tmax).unwrap();
    println!(
        "minimum energy within Tmax: E = {} J at p = {}, M = {}",
        sci(cheapest.energy),
        sci(cheapest.p),
        sci(cheapest.mem)
    );

    // Cross-checks: closed forms vs brute-force over the grid.
    banner("closed-form vs grid cross-checks");
    let mut best_e = f64::MAX;
    let mut best_m = 0.0;
    for mi in 0..4000 {
        let m = m_lo * (m_hi / m_lo).powf(mi as f64 / 3999.0);
        let e = opt.evaluate(N, 50, m).energy;
        if e < best_e {
            best_e = e;
            best_m = m;
        }
    }
    println!(
        "grid argmin M = {} vs closed-form M0 = {}  (ratio {:.4})",
        sci(best_m),
        sci(m0),
        best_m / m0
    );
    println!(
        "grid min E   = {} vs closed-form E*  = {}  (ratio {:.6})",
        sci(best_e),
        sci(e_star),
        best_e / e_star
    );
    assert!((best_m / m0 - 1.0).abs() < 0.01);
    assert!((best_e / e_star - 1.0).abs() < 1e-4);
    println!("OK: Section V closed forms match the brute-force grid.");
}
