//! Wall-clock transport benchmark: how fast does the *simulator itself*
//! run on the host machine?
//!
//! Every other bench in this crate measures virtual time and energy —
//! the paper's models. This one measures the real seconds the postal
//! transport burns to deliver them, because that cost bounds the
//! largest `p` the workspace can sweep (the ROADMAP's "fast as the
//! hardware allows" axis). The suite times:
//!
//! * ring shifts, binomial broadcasts and allreduces at
//!   `p ∈ {16, 64, 256, 1024}` — the collective skeletons of every
//!   distributed algorithm here;
//! * one sim-backed SUMMA multiplication (`n = 256`, `p = 16`);
//! * one end-to-end fault sweep (2.5D ABFT matmul with drops,
//!   corruption and acked retries — the same workload as
//!   `psse faults sweep --q 4 --n 64`);
//! * event-backend binomial allreduces at `p ∈ {10^4, 10^5}` — the
//!   discrete-event scheduler's mega-scale canary (quick mode keeps
//!   the `p = 10^4` point).
//!
//! Results merge into `BENCH_sim.json` at the repo root, keyed by
//! phase (`PSSE_WALLCLOCK_PHASE`, default `after`) so a before/after
//! pair from two builds can live in one file; when both phases are
//! present the suite recomputes per-entry speedups. Environment knobs:
//!
//! * `PSSE_WALLCLOCK_PHASE=before|after` — which phase to record;
//! * `PSSE_WALLCLOCK_QUICK=1` — reduced payloads and one repetition
//!   (the CI perf-smoke setting; still includes the `p = 1024` ring).

use psse_algos::prelude::*;
use psse_bench::report::banner;
use psse_bench::wallclock::{self, time_best, Entry};
use psse_core::machines::jaketown;
use psse_kernels::matrix::Matrix;
use psse_sim::prelude::*;

/// A flat machine with zero virtual prices: the wall-clock cost is pure
/// transport (threads, queues, payload movement), no model arithmetic.
fn transport_cfg() -> SimConfig {
    SimConfig {
        max_message_words: 1 << 12,
        ..SimConfig::counters_only()
    }
}

fn ring(p: usize, words: usize, steps: usize) {
    let out = Machine::run(p, transport_cfg(), |rank| {
        let right = (rank.rank() + 1) % rank.size();
        let left = (rank.rank() + rank.size() - 1) % rank.size();
        let mut block = vec![rank.rank() as f64; words];
        for step in 0..steps {
            block = rank.sendrecv(right, Tag(step as u64), block, left, Tag(step as u64))?;
        }
        Ok(block[0])
    })
    .expect("ring");
    assert_eq!(out.results.len(), p);
}

fn bcast(p: usize, words: usize) {
    let out = Machine::run(p, transport_cfg(), |rank| {
        let group = Group::world(rank.size());
        let data = if rank.rank() == 0 {
            Some(vec![1.5; words])
        } else {
            None
        };
        let v = rank.broadcast(Tag(0), &group, 0, data)?;
        Ok(v[words / 2])
    })
    .expect("bcast");
    assert!(out.results.iter().all(|&x| x == 1.5));
}

fn allreduce(p: usize, words: usize) {
    let out = Machine::run(p, transport_cfg(), |rank| {
        let data = vec![rank.rank() as f64; words];
        let sum = rank.allreduce_sum(Tag(0), data)?;
        Ok(sum[0])
    })
    .expect("allreduce");
    let expect = (p * (p - 1) / 2) as f64;
    assert!(out.results.iter().all(|&x| x == expect));
}

fn summa_run(n: usize, p: usize) {
    let a = Matrix::random(n, n, 11);
    let b = Matrix::random(n, n, 12);
    let q = (p as f64).sqrt() as usize;
    let (c, prof) =
        summa_matmul(&a, &b, p, n / q, sim_config_from(&jaketown())).expect("summa sim");
    assert_eq!(c.rows(), n);
    assert!(prof.total_words_sent() > 0);
}

/// The event backend's scale canary: a counted binomial allreduce at
/// `p` ranks in one process — the workload `psse-event` exists for
/// (thread-per-rank transport tops out around `p ≈ 10^3`; the event
/// scheduler is expected to clear `10^5` in well under a second).
fn event_allreduce(p: usize, words: usize) {
    let cfg = SimConfig {
        backend: Backend::Events,
        max_message_words: 1 << 12,
        ..SimConfig::counters_only()
    };
    let out = psse_event::run_programs(
        p,
        &cfg,
        psse_event::programs::BinomialAllreduce::counted(Tag(0), words),
    )
    .expect("event allreduce");
    let t =
        psse_event::programs::BinomialAllreduce::expected_totals(p as u64, words as u64, 1 << 12);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
}

/// The `psse faults sweep` hot loop: 2.5D ABFT matmul under a
/// drop+corrupt plan with acked retries, across replication factors.
fn faults_sweep(n: usize, q: usize, c_list: &[usize]) {
    let a = Matrix::random(n, n, 42);
    let b = Matrix::random(n, n, 43);
    let plan = FaultPlan {
        spec: FaultSpec {
            seed: 42,
            drop_rate: 0.05,
            corrupt_rate: 0.02,
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 24,
            retry_backoff: 1e-8,
            checkpoint: None,
        },
    };
    for &c in c_list {
        let p = q * q * c;
        let mut cfg = sim_config_from(&jaketown());
        cfg.faults = Some(plan.clone());
        let (cm, prof) = matmul_25d_abft(&a, &b, p, c, cfg).expect("faulted 2.5D");
        assert_eq!(cm.rows(), n);
        assert!(prof.total_retries() > 0, "plan must inject faults");
    }
}

fn main() {
    let quick = wallclock::quick();
    let phase = wallclock::phase();
    banner("wall-clock transport suite (host seconds, not virtual time)");
    println!("phase `{phase}`, quick = {quick}\n");

    let reps = if quick { 1 } else { 3 };
    let (ring_words, coll_words) = if quick {
        (256, 1 << 10)
    } else {
        (2048, 1 << 14)
    };
    let mut entries: Vec<Entry> = Vec::new();
    let push = |entries: &mut Vec<Entry>, name: &'static str, p: usize, ms: f64| {
        println!("{name:<18} {ms:>10.2} ms");
        entries.push(Entry {
            name: name.into(),
            p,
            millis: ms,
        });
    };

    for (name, p) in [
        ("ring/p16", 16usize),
        ("ring/p64", 64),
        ("ring/p256", 256),
        ("ring/p1024", 1024),
    ] {
        let ms = time_best(reps, || ring(p, ring_words, 4));
        push(&mut entries, name, p, ms);
    }
    for (name, p) in [
        ("bcast/p16", 16usize),
        ("bcast/p64", 64),
        ("bcast/p256", 256),
    ] {
        let ms = time_best(reps, || bcast(p, coll_words));
        push(&mut entries, name, p, ms);
    }
    for (name, p) in [
        ("allreduce/p16", 16usize),
        ("allreduce/p64", 64),
        ("allreduce/p256", 256),
    ] {
        let ms = time_best(reps, || allreduce(p, coll_words));
        push(&mut entries, name, p, ms);
    }
    if !quick {
        let ms = time_best(reps, || bcast(1024, coll_words));
        push(&mut entries, "bcast/p1024", 1024, ms);
        let ms = time_best(reps, || allreduce(1024, coll_words));
        push(&mut entries, "allreduce/p1024", 1024, ms);
    }
    let (sn, sp) = if quick { (128, 16) } else { (256, 16) };
    let ms = time_best(reps, || summa_run(sn, sp));
    push(&mut entries, "summa/p16", sp, ms);
    let (fn_, fq, fc): (usize, usize, &[usize]) = if quick {
        (32, 4, &[1, 2])
    } else {
        (64, 4, &[1, 2, 4])
    };
    let ms = time_best(reps, || faults_sweep(fn_, fq, fc));
    push(&mut entries, "faults_sweep", fq * fq, ms);

    // Event backend: mega-scale p in one process. The thread transport
    // stops at p = 1024 above; these entries are the backend's reason
    // to exist and the wall-clock budget CI's mega-scale job leans on.
    let ms = time_best(reps, || event_allreduce(10_000, coll_words));
    push(&mut entries, "event/p10k", 10_000, ms);
    if !quick {
        let ms = time_best(reps, || event_allreduce(100_000, coll_words));
        push(&mut entries, "event/p100k", 100_000, ms);
    }

    // The p = 1024 ring is the scale canary: CI asserts it completes.
    assert!(
        entries
            .iter()
            .any(|e| e.name == "ring/p1024" && e.p == 1024),
        "p = 1024 ring must run"
    );
    wallclock::write_phase_json(
        "BENCH_sim.json",
        "wallclock_transport",
        &phase,
        &entries,
        quick,
    );
}
