//! Regenerates paper **Table II**: `γt`, `γe` and peak GFLOPS/W for the
//! eleven processors, derived from their published frequency / core /
//! SIMD / TDP specifications, and checks the paper's §VII observations:
//! no device approaches 10 GFLOPS/W, and the efficiency "poles" are
//! high-throughput GPUs and low-power parts.

use psse_bench::report::{banner, sci, Table};
use psse_core::machines::table2;

fn main() {
    banner("Table II: example machine parameters");
    let specs = table2();

    let mut t = Table::new(&[
        "processor",
        "freq (GHz)",
        "cores",
        "SIMD",
        "TDP (W)",
        "peak (GFLOP/s)",
        "gamma_t (s/flop)",
        "gamma_e (J/flop)",
        "GFLOPS/W",
    ]);
    for s in &specs {
        t.row(&[
            s.name.to_string(),
            format!("{}", s.freq_ghz),
            s.cores.to_string(),
            s.simd_width.to_string(),
            format!("{}", s.tdp_w),
            format!("{:.2}", s.peak_gflops()),
            sci(s.gamma_t()),
            sci(s.gamma_e()),
            format!("{:.3}", s.gflops_per_watt()),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("table2_machines");

    banner("Section VII observations");
    let max_eff = specs
        .iter()
        .map(|s| s.gflops_per_watt())
        .fold(0.0f64, f64::max);
    println!("best efficiency in the table: {max_eff:.3} GFLOPS/W (paper: none approach 10)");
    assert!(max_eff < 10.0);

    let mut sorted = specs.clone();
    sorted.sort_by(|a, b| {
        b.gflops_per_watt()
            .partial_cmp(&a.gflops_per_watt())
            .unwrap()
    });
    println!("\nefficiency ranking (two poles: big GPUs and low-power parts):");
    for (i, s) in sorted.iter().enumerate() {
        println!(
            "  {:>2}. {:<28} {:>7.3} GFLOPS/W  ({:>7.1} W TDP)",
            i + 1,
            s.name,
            s.gflops_per_watt(),
            s.tdp_w
        );
    }
    let top3: Vec<&str> = sorted.iter().take(3).map(|s| s.name).collect();
    assert!(top3.contains(&"Nvidia GTX590"));
    assert!(top3.contains(&"ARM Cortex A9 (0.8 GHz)"));
    println!("\nOK: Table II derivations and §VII observations reproduced.");
}
