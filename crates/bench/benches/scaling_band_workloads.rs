//! Scaling-band audit for the non-linear-algebra workloads: where does
//! perfect strong scaling survive once the algorithm is a sort or a
//! stencil instead of a matmul?
//!
//! * **Stencil** (`psse_core::costs::HaloStencilModel`): S is constant
//!   per sweep and W is a surface term `Θ(h·n/√p)`, so inside
//!   `[p_min, p_max] = [n²/M, (n/2h)²]` the volume term dominates and
//!   `T·p` stays flat to within the quantified surface + latency
//!   residuals — an ε-perfect band whose width is machine-dependent
//!   (unlike matmul's unconditional band).
//! * **Sample sort** (`SampleSortModel`): W attains the
//!   Scquizzato–Silvestri `Ω(n/p)` bound, but `S = 2(p−1)` grows with
//!   `p` — the same mechanism as the paper's §IV FFT counterexample —
//!   so no perfect band exists and `T·p` blows up past the compute
//!   crossover. The bench quantifies that departure.
//!
//! Both sections cross-check the model against *measured* counters from
//! real simulator runs: the stencil's closed form is matched exactly,
//! the sort's within the splitter-sample constant.

use psse_algos::prelude::*;
use psse_bench::report::{ascii_plot_loglog, banner, sci, Table};
use psse_core::costs::{Algorithm, HaloStencilModel, SampleSortModel};
use psse_core::params::MachineParams;
use psse_sim::machine::SimConfig;

/// Flat-network machine for the band charts: latency low enough that
/// the stencil's constant-S floor stays a labelled residual instead of
/// drowning the surface term (see the model tests for the arithmetic).
fn machine() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(1e-8)
        .alpha_t(1e-7)
        .gamma_e(1e-9)
        .beta_e(1e-8)
        .alpha_e(1e-7)
        .max_message_words(1e4)
        .build()
        .unwrap()
}

fn stencil_band() {
    banner("Stencil: ε-perfect scaling band from surface-to-volume");
    let alg = HaloStencilModel { halo: 1, iters: 4 };
    let mp = machine();
    let n: u64 = 1 << 12;
    let mem = (n * n) as f64 / 16.0; // one copy at p_min = 16
    let range = alg.strong_scaling_range(n, mem).unwrap();
    println!(
        "band: p_min = {} (tile fits), p_max = {} (tile side = 2h)",
        sci(range.p_min),
        sci(range.p_max)
    );

    // The structural band [p_min, p_max] says where the decomposition
    // is *valid*; the ε-band is where T·p actually stays within ε of
    // flat. The surface term grows like √p relative to the fixed
    // volume, so the ε-band is a strict prefix of the structural band —
    // the chart shows both, and the CSV records the drift per point.
    const EPS: f64 = 0.10;
    let mut table = Table::new(&["p", "W*p", "T*p", "Tp/Tp_min", "in_band", "eps_perfect"]);
    let mut pts = Vec::new();
    let mut tp_min = 0.0f64;
    let mut eps_edge = 0u64;
    let mut p = 16u64;
    while p <= 1 << 14 {
        let m = alg.min_memory(n, p);
        let in_band = range.contains(p as f64);
        match alg.costs(n, p, m, &mp) {
            Ok(c) => {
                let tp = mp.time(&c) * p as f64;
                if tp_min == 0.0 {
                    tp_min = tp;
                }
                let drift = (tp / tp_min - 1.0).abs();
                let eps_ok = in_band && drift <= EPS;
                if eps_ok {
                    eps_edge = p;
                }
                table.row(&[
                    p.to_string(),
                    sci(c.words * p as f64),
                    sci(tp),
                    format!("{:.4}", tp / tp_min),
                    if in_band { "yes" } else { "no" }.into(),
                    if eps_ok { "yes" } else { "no" }.into(),
                ]);
                pts.push((p as f64, tp));
            }
            Err(_) => {
                // Past p_max the halo exceeds the tile: the model
                // rejects instead of extrapolating.
                table.row(&[
                    p.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "no (rejected)".into(),
                    "no".into(),
                ]);
            }
        }
        p *= 2;
    }
    println!("{}", table.render());
    table.write_csv("scaling_band_stencil");
    println!("{}", ascii_plot_loglog(&[("stencil T*p", &pts)], 64, 12));
    println!(
        "ε-perfect band (ε = {:.0}%): 16 ≤ p ≤ {eps_edge} on this machine \
         (structural band continues to {}; the 1/√p surface term plus the \
         constant-latency floor take over first)",
        EPS * 100.0,
        sci(range.p_max)
    );
    assert!(
        eps_edge >= 4096,
        "the ε-band must span at least 16..4096 on the flat-network machine, got {eps_edge}"
    );

    // Measured cross-check: the model's W is the exact surface closed
    // form, so simulator counters must match it to the word.
    let ns = 64usize;
    let grid = random_grid(ns, 2);
    for p in [4usize, 16] {
        let (_, profile) =
            halo_stencil(&grid, ns, 1, 4, Decomp::TwoD, p, SimConfig::counters_only()).unwrap();
        let c = alg
            .costs(
                ns as u64,
                p as u64,
                alg.min_memory(ns as u64, p as u64),
                &mp,
            )
            .unwrap();
        let measured = profile.total_words_sent() as f64 / p as f64;
        assert_eq!(
            measured, c.words,
            "p={p}: measured words must equal the surface closed form"
        );
        println!("measured p={p}: W = {measured} words/rank — matches model exactly");
    }
}

fn samplesort_departure() {
    banner("Sample sort: departure from 1/p (no perfect band exists)");
    let alg = SampleSortModel;
    let mp = machine();
    let n: u64 = 1 << 20;
    assert!(
        alg.strong_scaling_range(n, 1e9).is_none(),
        "sorting must report no perfect strong scaling range"
    );

    let mut table = Table::new(&["p", "W*p", "S", "T*p", "Tp/Tp_min"]);
    let mut pts = Vec::new();
    let mut tp_min = 0.0f64;
    let mut last_ratio = 0.0f64;
    let mut p = 16u64;
    while p <= 1 << 12 {
        let m = alg.min_memory(n, p);
        let c = alg.costs(n, p, m, &mp).unwrap();
        let tp = mp.time(&c) * p as f64;
        if tp_min == 0.0 {
            tp_min = tp;
        }
        last_ratio = tp / tp_min;
        table.row(&[
            p.to_string(),
            sci(c.words * p as f64),
            sci(c.messages),
            sci(tp),
            format!("{:.3}", last_ratio),
        ]);
        pts.push((p as f64, tp));
        p *= 2;
    }
    println!("{}", table.render());
    table.write_csv("samplesort_departure");
    println!("{}", ascii_plot_loglog(&[("samplesort T*p", &pts)], 64, 12));
    println!(
        "departure at p = 4096: T*p has grown {last_ratio:.1}x — the α·2(p−1) \
         all-to-all latency term (paper §IV's FFT mechanism), compounded past \
         p³ ≈ n by the (p−1)² splitter-sample words"
    );
    assert!(
        last_ratio > 10.0,
        "the latency term must dominate by an order of magnitude: {last_ratio}"
    );

    // Measured cross-check: real runs attain Ω(n/p) within the
    // splitter-sample constant and pay exactly 2(p−1) messages.
    let ns = 1usize << 14;
    let keys = random_keys(ns, 3);
    for p in [4usize, 8, 16] {
        let (_, profile) = sample_sort(&keys, p, SimConfig::counters_only()).unwrap();
        let measured = profile.total_words_sent() as f64 / p as f64;
        let bound = ns as f64 / p as f64;
        assert!(
            measured >= (1.0 - 1.0 / p as f64) * bound * 0.9
                && measured <= 1.1 * (bound + ((p - 1) * (p - 1)) as f64),
            "p={p}: measured {measured} vs Ω(n/p) = {bound}"
        );
        assert_eq!(profile.max_msgs_sent() as usize, 2 * (p - 1));
        println!(
            "measured p={p}: W = {measured} words/rank (bound {bound}), S = {} msgs",
            profile.max_msgs_sent()
        );
    }
}

fn main() {
    stencil_band();
    samplesort_departure();
    println!("\nscaling_band_workloads: all assertions passed");
}
