//! Ablation study of the collective-communication design choices
//! (flagged in `DESIGN.md`): the constants behind the cost models.
//!
//! 1. **Broadcast**: binomial tree vs scatter+allgather (van de Geijn) —
//!    root traffic and critical-path time across message sizes.
//! 2. **Reduction**: binomial vs reduce-scatter+gather.
//! 3. **All-to-all**: pairwise vs hypercube across the α/β ratio — the
//!    paper's FFT trade-off (`S = p` vs `S = log p`) made concrete.
//! 4. **SUMMA panel width**: the latency/bandwidth knob of the 2D
//!    baseline.
//! 5. **2.5D fiber collectives**: binomial vs scatter+allgather inside
//!    the full algorithm.

use psse_algos::mm25d::{matmul_25d_opts, FiberCollectives};
use psse_algos::prelude::*;
use psse_bench::report::{banner, sci, Table};
use psse_kernels::matrix::Matrix;
use psse_sim::machine::{Machine, SimConfig};
use psse_sim::message::Tag;
use psse_sim::prelude::Group;

fn timing_cfg(alpha: f64, beta: f64) -> SimConfig {
    SimConfig {
        gamma_t: 0.0,
        beta_t: beta,
        alpha_t: alpha,
        ..SimConfig::default()
    }
}

fn main() {
    banner("1. broadcast: binomial vs scatter+allgather");
    let p = 16;
    let mut t = Table::new(&[
        "payload (words)",
        "binomial root W",
        "sag root W",
        "binomial T",
        "sag T",
        "winner",
    ]);
    for len in [64usize, 1024, 16384, 262144] {
        let run = |large: bool| {
            Machine::run(p, timing_cfg(1e-5, 1e-9), move |rank| {
                let group = Group::world(rank.size());
                let data = if rank.rank() == 0 {
                    Some(vec![1.0; len])
                } else {
                    None
                };
                if large {
                    rank.broadcast_large(Tag(0), &group, 0, data)?;
                } else {
                    rank.broadcast(Tag(0), &group, 0, data)?;
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let bin = run(false);
        let sag = run(true);
        t.row(&[
            len.to_string(),
            bin.per_rank[0].words_sent.to_string(),
            sag.per_rank[0].words_sent.to_string(),
            sci(bin.makespan),
            sci(sag.makespan),
            if bin.makespan <= sag.makespan {
                "binomial"
            } else {
                "scatter+allgather"
            }
            .into(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("ablation_broadcast");
    println!(
        "Small payloads: the binomial tree's log p latency wins. Large\n\
         payloads: scatter+allgather's ~2x root traffic (vs log p copies)\n\
         wins — exactly why 2.5D implementations pick per-phase collectives.\n"
    );

    banner("2. reduction: binomial vs reduce-scatter+gather");
    let mut t = Table::new(&[
        "payload",
        "binomial T",
        "rsg T",
        "binomial maxW",
        "rsg maxW",
    ]);
    for len in [64usize, 4096, 65536] {
        let run = |large: bool| {
            Machine::run(p, timing_cfg(1e-5, 1e-9), move |rank| {
                let group = Group::world(rank.size());
                let data = vec![1.0; len];
                if large {
                    rank.reduce_sum_large(Tag(0), &group, 0, data)?;
                } else {
                    rank.reduce_sum(Tag(0), &group, 0, data)?;
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let bin = run(false);
        let rsg = run(true);
        t.row(&[
            len.to_string(),
            sci(bin.makespan),
            sci(rsg.makespan),
            bin.max_words_sent().to_string(),
            rsg.max_words_sent().to_string(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("ablation_reduce");

    banner("3. all-to-all: pairwise vs hypercube across alpha/beta");
    let mut t = Table::new(&["alpha/beta (words)", "pairwise T", "hypercube T", "winner"]);
    let block = 256usize;
    for ratio in [1e2, 1e4, 1e6] {
        let beta = 1e-9;
        let alpha = beta * ratio;
        let run = |hyper: bool| {
            Machine::run(p, timing_cfg(alpha, beta), move |rank| {
                let group = Group::world(rank.size());
                let blocks: Vec<Vec<f64>> = (0..p).map(|_| vec![1.0; block]).collect();
                if hyper {
                    rank.alltoall_hypercube(Tag(0), &group, blocks)?;
                } else {
                    rank.alltoall(Tag(0), &group, blocks)?;
                }
                Ok(())
            })
            .unwrap()
            .profile
        };
        let pw = run(false);
        let hc = run(true);
        t.row(&[
            sci(ratio),
            sci(pw.makespan),
            sci(hc.makespan),
            if pw.makespan <= hc.makespan {
                "pairwise"
            } else {
                "hypercube"
            }
            .into(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("ablation_alltoall");
    println!(
        "High-latency machines prefer the hypercube (log p messages, the\n\
         paper's 'tree-based all-to-all'); bandwidth-bound machines prefer\n\
         pairwise (each word crosses the network once).\n"
    );

    banner("4. SUMMA panel width (latency <-> bandwidth knob)");
    let n = 64;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut t = Table::new(&["panel", "T (s)", "total msgs", "total words"]);
    for panel in [1usize, 2, 4, 8, 16] {
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-9,
            alpha_t: 1e-5,
            ..SimConfig::default()
        };
        let (_, profile) = summa_matmul(&a, &b, 16, panel, cfg).unwrap();
        t.row(&[
            panel.to_string(),
            sci(profile.makespan),
            profile.total_msgs_sent().to_string(),
            profile.total_words_sent().to_string(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("ablation_summa_panel");

    banner("5. 2.5D fiber collectives inside the full algorithm");
    let n = 64;
    let a = Matrix::random(n, n, 3);
    let b = Matrix::random(n, n, 4);
    let mut t = Table::new(&["strategy", "max W/rank", "max S/rank", "T (s)"]);
    for (name, fc) in [
        ("binomial", FiberCollectives::Binomial),
        ("scatter+allgather", FiberCollectives::ScatterAllgather),
    ] {
        let cfg = SimConfig {
            gamma_t: 1e-9,
            beta_t: 4e-9,
            alpha_t: 1e-7,
            ..SimConfig::default()
        };
        let (_, profile) = matmul_25d_opts(&a, &b, 64, 4, fc, cfg).unwrap();
        t.row(&[
            name.into(),
            profile.max_words_sent().to_string(),
            profile.max_msgs_sent().to_string(),
            sci(profile.makespan),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("ablation_25d_fiber");
}
