//! Wall-clock benchmark of the discrete-event mega-scale engine: how
//! many host seconds does `psse-event` burn to push 10^5–10^6 ranks
//! through a priced collective?
//!
//! `wallclock_transport` times the thread-per-rank transport (which
//! tops out near `p = 10^3`); this suite is the event scheduler's own
//! receipt. Entries:
//!
//! * `event/p10k_faulted` — a counted binomial allreduce at `p = 10^4`
//!   under a drop+delay fault plan with acked retries: the *general*
//!   event path (faults disable every fast path), so it prices the
//!   scheduler + mailbox + wire plumbing directly;
//! * `event/stencil_p100k` — the 1-D halo stencil at `p = 10^5` slabs:
//!   a non-collective workload that always takes the general path;
//! * `event/p100k` — the headline: a counted binomial allreduce over
//!   one hundred thousand ranks (the `≥5×` target of the hot-path
//!   overhaul);
//! * `event/p1m` — one million ranks, the paper's headline rank count.
//!
//! Results merge into `BENCH_event.json` at the repo root via the same
//! phase machinery as `BENCH_sim.json` (`PSSE_WALLCLOCK_PHASE`,
//! `PSSE_WALLCLOCK_QUICK`; see `psse_bench::wallclock`). Quick mode
//! keeps the faulted `p = 10^4` and headline `p = 10^5` entries and
//! runs one repetition — the CI mega-scale smoke setting. When
//! `PSSE_WALLCLOCK_CEILING_MS` is set, the suite asserts `event/p100k`
//! finished under that many milliseconds (the CI wall-clock budget).

use psse_bench::wallclock::{self, time_best, Entry};
use psse_event::prelude::*;
use psse_sim::prelude::{FaultPlan, FaultSpec, RecoveryPolicy};

/// Default prices, event backend, `m = 2^12` so the `2^14`-word
/// payloads split into four chunks per transfer (the chunk loop is part
/// of what we're timing).
fn event_cfg() -> SimConfig {
    SimConfig {
        backend: Backend::Events,
        max_message_words: 1 << 12,
        ..SimConfig::default()
    }
}

/// Counted binomial allreduce at `p` ranks; asserts the closed form so
/// a fast path can never silently drop work.
fn allreduce(p: usize, words: usize) {
    let out = run_programs(p, &event_cfg(), BinomialAllreduce::counted(Tag(0), words)).unwrap();
    let t = BinomialAllreduce::expected_totals(p as u64, words as u64, 1 << 12);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_words_sent(), t.words);
    assert_eq!(out.profile.total_flops(), t.flops);
}

/// The same allreduce under a seeded drop+delay plan with acked
/// retries: faults force the exact general event path.
fn allreduce_faulted(p: usize, words: usize) {
    let cfg = SimConfig {
        faults: Some(FaultPlan {
            spec: FaultSpec {
                seed: 42,
                drop_rate: 0.05,
                delay_rate: 0.05,
                delay_seconds: 2e-6,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy {
                max_retries: 24,
                retry_backoff: 1e-8,
                checkpoint: None,
            },
        }),
        ..event_cfg()
    };
    let out = run_programs(p, &cfg, BinomialAllreduce::counted(Tag(0), words)).unwrap();
    assert!(out.profile.total_retries() > 0, "plan must inject faults");
}

/// The 1-D halo stencil at `p` slabs (counted): no collective
/// structure, so every message is an individually scheduled event.
fn stencil(p: usize, sweeps: usize) {
    let cfg = SimConfig {
        backend: Backend::Events,
        ..SimConfig::default()
    };
    let out = run_programs(p, &cfg, Stencil1D::counted(p, 1, sweeps)).unwrap();
    let t = Stencil1D::expected_totals(p as u64, p as u64, 1, sweeps as u64, 1 << 16);
    assert_eq!(out.profile.total_msgs_sent(), t.msgs);
    assert_eq!(out.profile.total_flops(), t.flops);
}

fn main() {
    let quick = wallclock::quick();
    let phase = wallclock::phase();
    psse_bench::report::banner("wall-clock event-engine suite (host seconds, not virtual time)");
    println!("phase `{phase}`, quick = {quick}\n");

    let reps = if quick { 1 } else { 3 };
    let words = 1 << 14;
    let mut entries: Vec<Entry> = Vec::new();
    let push = |entries: &mut Vec<Entry>, name: &str, p: usize, ms: f64| {
        println!("{name:<20} {ms:>10.2} ms");
        entries.push(Entry {
            name: name.into(),
            p,
            millis: ms,
        });
    };

    let ms = time_best(reps, || allreduce_faulted(10_000, words));
    push(&mut entries, "event/p10k_faulted", 10_000, ms);

    if !quick {
        let ms = time_best(reps, || stencil(100_000, 2));
        push(&mut entries, "event/stencil_p100k", 100_000, ms);
    }

    let p100k_ms = time_best(reps, || allreduce(100_000, words));
    push(&mut entries, "event/p100k", 100_000, p100k_ms);

    if !quick {
        let ms = time_best(1, || allreduce(1_000_000, words));
        push(&mut entries, "event/p1m", 1_000_000, ms);
    }

    // CI wall-clock budget: the headline entry must clear the ceiling.
    if let Ok(ceiling) = std::env::var("PSSE_WALLCLOCK_CEILING_MS") {
        let ceiling: f64 = ceiling.parse().expect("PSSE_WALLCLOCK_CEILING_MS");
        assert!(
            p100k_ms <= ceiling,
            "event/p100k took {p100k_ms:.1} ms, over the {ceiling:.0} ms ceiling"
        );
        println!("\nevent/p100k {p100k_ms:.1} ms <= ceiling {ceiling:.0} ms");
    }

    wallclock::write_phase_json(
        "BENCH_event.json",
        "wallclock_event",
        &phase,
        &entries,
        quick,
    );
}
