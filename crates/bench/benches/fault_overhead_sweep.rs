//! Resilience-overhead sweep: E(p) with injected faults vs the
//! fault-free flat band.
//!
//! The paper's headline result is that within the perfect-strong-scaling
//! range, energy E(p) is flat in p (2.5D matmul, replication soaking up
//! the extra memory). This bench re-runs that sweep with a deterministic
//! fault plan (drops + corruption, recovered by acked retries and
//! verified end to end by ABFT) and shows:
//!
//! 1. the faulted numerics are *identical* to fault-free (recovery is
//!    exact, not approximate);
//! 2. measured E(p) with faults sits above the flat band by exactly the
//!    Eq. 2 resilience term — `βe·W_res + αe·S_res + p·(δe·M + εe)·ΔT`
//!    evaluated over the profile's resilience counters;
//! 3. the overhead is a small, priced premium, not a distortion of the
//!    scaling shape.
//!
//! Emits `bench_results/fault_overhead_sweep.csv`.

use psse_algos::abft::matmul_25d_abft;
use psse_algos::prelude::*;
use psse_bench::report::{banner, sci, Table};
use psse_core::machines::jaketown;
use psse_core::optimize::resilience::resilience_energy;
use psse_kernels::matrix::Matrix;
use psse_sim::prelude::*;

fn main() {
    banner("fault-injection overhead: E(p) vs the fault-free flat band");
    let mp = jaketown();
    let n = 64usize;
    let q = 4usize;
    let seed = 42u64;
    let plan = FaultPlan {
        spec: FaultSpec {
            seed,
            drop_rate: 0.05,
            corrupt_rate: 0.02,
            duplicate_rate: 0.01,
            ..FaultSpec::default()
        },
        recovery: RecoveryPolicy {
            max_retries: 24,
            retry_backoff: 1e-8,
            checkpoint: None,
        },
    };
    println!(
        "2.5D matmul, n = {n}, q = {q}, jaketown; plan: drop {}, corrupt {}, dup {}, {} retries\n",
        plan.spec.drop_rate,
        plan.spec.corrupt_rate,
        plan.spec.duplicate_rate,
        plan.recovery.max_retries
    );

    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed + 1);
    let mut t = Table::new(&[
        "c",
        "p",
        "E_free (J)",
        "E_fault (J)",
        "overhead (J)",
        "model (J)",
        "overhead %",
        "retries",
        "res words",
    ]);
    for c in [1usize, 2, 4] {
        let p = q * q * c;
        let (c_free, prof_free) =
            matmul_25d_abft(&a, &b, p, c, sim_config_from(&mp)).expect("fault-free 2.5D");

        let mut cfg = sim_config_from(&mp);
        cfg.faults = Some(plan.clone());
        let (c_fault, prof_fault) = matmul_25d_abft(&a, &b, p, c, cfg).expect("faulted 2.5D");
        assert_eq!(
            c_fault.as_slice(),
            c_free.as_slice(),
            "c = {c}: recovery must reproduce fault-free numerics exactly"
        );
        assert!(
            prof_fault.total_retries() > 0,
            "c = {c}: the plan should actually inject faults"
        );

        let m_free = measure(&prof_free, &mp);
        let m_fault = measure(&prof_fault, &mp);
        let overhead = m_fault.energy - m_free.energy;
        let model = resilience_energy(
            &mp,
            prof_fault.resilience_words() as f64,
            prof_fault.resilience_msgs() as f64,
            m_fault.time - m_free.time,
            p as f64,
            prof_fault.max_mem_peak() as f64,
        );
        assert!(
            overhead > 0.0,
            "c = {c}: faulted energy must exceed the flat band"
        );
        assert!(
            (overhead - model).abs() <= 1e-9 * overhead,
            "c = {c}: measured overhead {overhead} J must match the Eq. 2 \
             resilience term {model} J"
        );
        t.row(&[
            c.to_string(),
            p.to_string(),
            sci(m_free.energy),
            sci(m_fault.energy),
            sci(overhead),
            sci(model),
            format!("{:.3}", 100.0 * overhead / m_free.energy),
            prof_fault.total_retries().to_string(),
            prof_fault.resilience_words().to_string(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("fault_overhead_sweep");
    println!(
        "Faulted E(p) exceeds the fault-free band by exactly the priced\n\
         resilience term (retransmitted words advance W and S; lost time\n\
         extends T under the standby power) — resilience costs energy,\n\
         but a *predictable* amount, and recovery is numerically exact."
    );
}
