//! Regenerates paper **Fig. 6**: GFLOPS/W of 2.5D matrix multiplication
//! on the Table I ("Jaketown") machine as `γe`, `βe`, `δe` are halved
//! **independently**, one process generation at a time
//! (`p = 2`, `n = 35000`, as in §VI).
//!
//! Expected shapes (paper text): scaling `βe` alone has almost no
//! effect; scaling `γe` alone saturates after about 5 generations (once
//! flop energy falls to the level of the unscaled memory term).

use psse_algos::prelude::{matmul_25d, sim_config_from};
use psse_bench::report::{
    ascii_plot_loglog, banner, sci, svg_plot, trace_events_table, write_svg, Scale, Table,
};
use psse_core::energy::gflops_per_watt;
use psse_core::machines::jaketown;
use psse_core::params::MachineParams;
use psse_core::tech_scaling::{fig6_series, scale_all_energy, scale_param, CaseStudy, EnergyParam};
use psse_kernels::matrix::Matrix;
use psse_lab::prelude::{Lab, LabConfig, RunKey};
use psse_sim::machine::SimConfig;
use psse_trace::Trace;

fn main() {
    banner("Figure 6: scaling gamma_e, beta_e, delta_e independently");
    let base = jaketown();
    let study = CaseStudy::default();
    println!(
        "case study: 2.5D matmul, n = {}, p = {}, M = {} words",
        study.n,
        study.p,
        sci(study.memory(&base))
    );
    println!(
        "baseline efficiency: {:.3} GFLOPS/W\n",
        study.gflops_per_watt(&base)
    );

    let generations = 10;
    let rows = fig6_series(&base, study, generations);

    // The same sweep routed through the psse-lab batch engine: one
    // matmul model run per (generation, scaled-machine) cell. The lab
    // prices 2.5D matmul with the exact `e_matmul_25d` closed form, so
    // every cell reproduces `fig6_series` bit-for-bit (asserted below)
    // and the emitted CSV is byte-identical to the checked-in file.
    let lab = Lab::new(LabConfig::default());
    let mut keys = Vec::new();
    for gen in 0..=generations {
        let f = 0.5f64.powi(gen as i32);
        for m in [
            scale_param(&base, EnergyParam::GammaE, f),
            scale_param(&base, EnergyParam::BetaE, f),
            scale_param(&base, EnergyParam::DeltaE, f),
            scale_all_energy(&base, f),
        ] {
            let mut k = RunKey::model("matmul", study.n, study.p, m.clone());
            k.mem = study.memory(&m);
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);
    let cell = |i: usize| {
        let r = results[i].as_ref().expect("matmul model run");
        gflops_per_watt(r.flops, r.energy)
    };

    let mut table = Table::new(&[
        "generation",
        "halve gamma_e",
        "halve beta_e",
        "halve delta_e",
        "all three",
    ]);
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for (gi, row) in rows.iter().enumerate() {
        let eff = |p: EnergyParam| {
            row.per_param
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, e)| *e)
                .unwrap()
        };
        let (g, b, d, all) = (
            cell(4 * gi),
            cell(4 * gi + 1),
            cell(4 * gi + 2),
            cell(4 * gi + 3),
        );
        // Lab-priced cells agree with the closed-form series exactly.
        assert_eq!(g.to_bits(), eff(EnergyParam::GammaE).to_bits());
        assert_eq!(b.to_bits(), eff(EnergyParam::BetaE).to_bits());
        assert_eq!(d.to_bits(), eff(EnergyParam::DeltaE).to_bits());
        assert_eq!(all.to_bits(), row.together.to_bits());
        table.row(&[
            row.generation.to_string(),
            format!("{g:.3}"),
            format!("{b:.3}"),
            format!("{d:.3}"),
            format!("{all:.3}"),
        ]);
        let x = (row.generation + 1) as f64; // log plot needs x > 0
        series[0].push((x, g));
        series[1].push((x, b));
        series[2].push((x, d));
        series[3].push((x, all));
    }
    println!("{}", table.render());
    table.write_csv("fig6_scaling_individual");

    println!(
        "{}",
        ascii_plot_loglog(
            &[
                ("gamma_e", &series[0]),
                ("beta_e", &series[1]),
                ("delta_e", &series[2]),
                ("all", &series[3]),
            ],
            64,
            16
        )
    );
    write_svg(
        "fig6_scaling_individual",
        &svg_plot(
            "Fig. 6: scaling gamma_e, beta_e, delta_e independently",
            "process generation + 1 (halving per generation)",
            "GFLOPS/W",
            &[
                ("gamma_e", &series[0]),
                ("beta_e", &series[1]),
                ("delta_e", &series[2]),
                ("all three", &series[3]),
            ],
            Scale::Linear,
            Scale::Log,
        ),
    );

    // The paper's qualitative findings, asserted.
    let first = &rows[0];
    let at = |r: &psse_core::tech_scaling::Fig6Row, p: EnergyParam| {
        r.per_param.iter().find(|(q, _)| *q == p).unwrap().1
    };
    let beta_gain =
        at(&rows[generations as usize], EnergyParam::BetaE) / at(first, EnergyParam::BetaE);
    let gamma_gain_early = at(&rows[5], EnergyParam::GammaE) / at(first, EnergyParam::GammaE);
    let gamma_gain_late = at(&rows[10], EnergyParam::GammaE) / at(&rows[5], EnergyParam::GammaE);
    println!(
        "beta_e total gain after {generations} generations: ×{beta_gain:.3} (paper: almost none)"
    );
    println!("gamma_e gain gen 0→5: ×{gamma_gain_early:.2}; gen 5→10: ×{gamma_gain_late:.2} (paper: saturates ~gen 5)");
    assert!(beta_gain < 1.1);
    assert!(gamma_gain_early > 3.0 * gamma_gain_late);
    println!("OK: Fig. 6 shapes reproduced.");

    // Trace-driven variant: record ONE small 2.5D run on the simulator
    // and re-price the recorded event DAG for every generation. Energy
    // parameters do not change the DAG, so a single recording serves
    // all rows; the CSV has exactly the analytic table's shape.
    banner("Figure 6 (trace-driven): re-pricing one recorded 2.5D run");
    let cfg = SimConfig {
        record_trace: true,
        ..sim_config_from(&base)
    };
    let (tn, tp, tc) = (32, 8, 2);
    let ma = Matrix::random(tn, tn, 1);
    let mb = Matrix::random(tn, tn, 2);
    let (_, profile) = matmul_25d(&ma, &mb, tp, tc, cfg.clone()).expect("2.5D run");
    let trace = Trace::from_run(&cfg, &profile).expect("trace recorded");
    trace
        .check_consistency(&profile)
        .expect("replay must reproduce the live run bit-for-bit");
    println!(
        "recorded 2.5D matmul: n = {tn}, p = {tp}, c = {tc}; {} events, makespan {} s",
        trace.n_events(),
        sci(trace.makespan)
    );
    let flops = profile.total_flops() as f64;
    let gflops_per_watt = |m: &MachineParams| {
        let measured = trace.reprice(m).expect("re-price recorded DAG");
        flops / measured.energy / 1e9
    };
    let mut ttable = Table::new(&[
        "generation",
        "halve gamma_e",
        "halve beta_e",
        "halve delta_e",
        "all three",
    ]);
    for gen in 0..=generations {
        let f = 0.5f64.powi(gen as i32);
        let g = gflops_per_watt(&scale_param(&base, EnergyParam::GammaE, f));
        let b = gflops_per_watt(&scale_param(&base, EnergyParam::BetaE, f));
        let d = gflops_per_watt(&scale_param(&base, EnergyParam::DeltaE, f));
        let all = gflops_per_watt(&scale_all_energy(&base, f));
        ttable.row(&[
            gen.to_string(),
            format!("{g:.3}"),
            format!("{b:.3}"),
            format!("{d:.3}"),
            format!("{all:.3}"),
        ]);
    }
    println!("{}", ttable.render());
    ttable.write_csv("fig6_scaling_individual_trace");
    trace_events_table(&trace).write_csv("fig6_trace_events");

    let (analytic, traced) = (table.to_csv(), ttable.to_csv());
    assert_eq!(analytic.lines().next(), traced.lines().next());
    assert_eq!(analytic.lines().count(), traced.lines().count());
    println!("OK: trace-driven CSV matches the analytic table's shape.");
}
