//! # psse-bench — figure/table regeneration harness
//!
//! One bench target per table and figure of the paper (see the
//! `[[bench]]` sections in `Cargo.toml`), plus Criterion
//! micro-benchmarks for the local kernels. Each figure bench prints the
//! paper's rows/series to stdout, renders a quick ASCII view, and writes
//! CSVs under `bench_results/` for external plotting.
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_strong_scaling` | Fig. 3 — limits of communication strong scaling |
//! | `fig4_nbody_regions` | Fig. 4(a–c) — n-body energy/time/power regions |
//! | `fig6_scaling_individual` | Fig. 6 — scaling γe, βe, δe independently |
//! | `fig7_scaling_together` | Fig. 7 — scaling them together |
//! | `table1_case_study` | Table I — case-study machine + model predictions |
//! | `table2_machines` | Table II — processor efficiency comparison |
//! | `validate_strong_scaling` | our end-to-end check of the headline theorem |
//! | `kernels_criterion` | Criterion micro-benchmarks of the local kernels |

#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values;
// `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod report;
pub mod wallclock;
