//! Shared machinery for the wall-clock suites (`wallclock_transport`,
//! `wallclock_event`): best-of-N timing, the `PSSE_WALLCLOCK_*`
//! environment knobs, and the phase-merging JSON writer behind
//! `BENCH_sim.json` / `BENCH_event.json`.
//!
//! A wall-clock suite is run twice — once on the code *before* an
//! optimisation (`PSSE_WALLCLOCK_PHASE=before`) and once after
//! (`=after`, the default) — and both phases merge into one JSON
//! document at the workspace root. When both phases are present the
//! writer recomputes `speedup_before_over_after` per entry, so the
//! committed file is the optimisation's receipt.

use psse_metrics::Json;
use std::path::PathBuf;
use std::time::Instant;

/// One timed suite entry: label plus best-of-`reps` milliseconds.
pub struct Entry {
    /// Entry label, e.g. `event/p100k`.
    pub name: String,
    /// Rank count of the timed run (for display/analysis; not written).
    pub p: usize,
    /// Best-of-N wall-clock milliseconds.
    pub millis: f64,
}

/// Time `f` `reps` times and keep the minimum (least-noise estimate).
pub fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The `PSSE_WALLCLOCK_QUICK=1` knob: reduced payloads, one repetition
/// (the CI perf-smoke setting).
pub fn quick() -> bool {
    std::env::var("PSSE_WALLCLOCK_QUICK").is_ok_and(|v| v == "1")
}

/// The `PSSE_WALLCLOCK_PHASE` knob (default `after`).
pub fn phase() -> String {
    std::env::var("PSSE_WALLCLOCK_PHASE").unwrap_or_else(|_| "after".into())
}

/// Resolve `file_name` at the workspace root (cargo bench sets cwd to
/// the package dir, so walk two levels up from `CARGO_MANIFEST_DIR`).
pub fn workspace_file(file_name: &str) -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let base = PathBuf::from(dir);
            base.parent()
                .and_then(|p| p.parent())
                .map(|ws| ws.join(file_name))
                .unwrap_or_else(|| base.join(file_name))
        }
        None => PathBuf::from(file_name),
    }
}

/// Merge `phase → entries` into `prior` (a previously written suite
/// document, if any) and recompute `speedup_before_over_after` for
/// every entry present in both phases. Pure function of its inputs —
/// the file plumbing lives in [`write_phase_json`].
pub fn merge_phase_doc(
    prior: Option<&Json>,
    suite: &str,
    phase: &str,
    entries: &[Entry],
    quick: bool,
) -> Json {
    let mut phases: Vec<(String, Json)> = Vec::new();
    if let Some(Json::Obj(pairs)) = prior.and_then(|p| p.get("phases")).cloned() {
        phases = pairs.into_iter().filter(|(k, _)| k != phase).collect();
    }
    let mine = Json::Obj(
        entries
            .iter()
            .map(|e| (e.name.clone(), Json::Float(e.millis)))
            .collect(),
    );
    phases.push((phase.to_string(), mine));
    phases.sort_by(|a, b| a.0.cmp(&b.0)); // "after" < "before": stable order
    let speedup = match (
        phases.iter().find(|(k, _)| k == "before"),
        phases.iter().find(|(k, _)| k == "after"),
    ) {
        (Some((_, Json::Obj(before))), Some((_, Json::Obj(after)))) => {
            let mut s: Vec<(String, Json)> = Vec::new();
            for (k, b) in before {
                if let (Some(bv), Some(av)) = (
                    b.as_f64(),
                    after
                        .iter()
                        .find(|(ak, _)| ak == k)
                        .and_then(|(_, v)| v.as_f64()),
                ) {
                    if av > 0.0 {
                        s.push((k.clone(), Json::Float((bv / av * 100.0).round() / 100.0)));
                    }
                }
            }
            Json::Obj(s)
        }
        _ => Json::Obj(Vec::new()),
    };
    Json::obj(vec![
        ("suite", Json::Str(suite.into())),
        (
            "units",
            Json::Str("milliseconds wall-clock, best of N repetitions".into()),
        ),
        ("quick", Json::Bool(quick)),
        ("phases", Json::Obj(phases)),
        ("speedup_before_over_after", speedup),
    ])
}

/// Merge `phase → entries` into the existing JSON document at
/// `<workspace>/<file_name>` (if any) and write it back.
pub fn write_phase_json(file_name: &str, suite: &str, phase: &str, entries: &[Entry], quick: bool) {
    let path = workspace_file(file_name);
    let prior = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| Json::parse(&t).ok());
    let doc = merge_phase_doc(prior.as_ref(), suite, phase, entries, quick);
    std::fs::write(&path, format!("{doc}\n")).unwrap_or_else(|e| panic!("write {file_name}: {e}"));
    println!("\nwrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ms: f64) -> Entry {
        Entry {
            name: name.into(),
            p: 4,
            millis: ms,
        }
    }

    #[test]
    fn phases_merge_and_speedups_recompute() {
        let before = merge_phase_doc(None, "s", "before", &[entry("a", 100.0)], false);
        assert!(before.get("phases").unwrap().get("before").is_some());
        let both = merge_phase_doc(
            Some(&before),
            "s",
            "after",
            &[entry("a", 20.0), entry("b", 1.0)],
            false,
        );
        let phases = both.get("phases").unwrap();
        assert!(phases.get("before").is_some());
        assert!(phases.get("after").is_some());
        let speedup = both.get("speedup_before_over_after").unwrap();
        assert_eq!(speedup.get("a").and_then(|v| v.as_f64()), Some(5.0));
        assert!(speedup.get("b").is_none(), "after-only entries are skipped");
    }

    #[test]
    fn rewriting_a_phase_replaces_it() {
        let v1 = merge_phase_doc(None, "s", "after", &[entry("a", 10.0)], true);
        let v2 = merge_phase_doc(Some(&v1), "s", "after", &[entry("a", 4.0)], true);
        let after = v2.get("phases").unwrap().get("after").unwrap();
        assert_eq!(after.get("a").and_then(|v| v.as_f64()), Some(4.0));
    }

    #[test]
    fn time_best_takes_minimum() {
        let mut calls = 0;
        let ms = time_best(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(ms >= 0.0 && ms.is_finite());
    }
}
