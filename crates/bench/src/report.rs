//! Plain-text reporting: aligned tables, log-log ASCII plots, and CSV
//! output for the figure benches.

use std::fs;
use std::path::PathBuf;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:>width$}  ", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form under `<workspace>/bench_results/<name>.csv`
    /// (best effort; prints the path on success).
    pub fn write_csv(&self, name: &str) {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if fs::write(&path, self.to_csv()).is_ok() {
                println!("[csv] wrote {}", path.display());
            }
        }
    }
}

/// Format a float compactly for table cells.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if (1e-3..1e5).contains(&a) {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

/// Render several named series as a log-log ASCII chart.
///
/// Each series is a list of `(x, y)` points with positive coordinates;
/// the i-th series is drawn with the i-th marker character.
pub fn ascii_plot_loglog(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    let markers = ['*', 'o', '+', 'x', '#', '@'];
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    if pts.is_empty() {
        return "(no positive data to plot)".into();
    }
    let (mut x0, mut x1) = (f64::MAX, f64::MIN);
    let (mut y0, mut y1) = (f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let (lx0, lx1) = (x0.ln(), (x1 * 1.0000001).ln());
    let (ly0, ly1) = (y0.ln(), (y1 * 1.0000001).ln());
    let xspan = (lx1 - lx0).max(1e-12);
    let yspan = (ly1 - ly0).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let m = markers[si % markers.len()];
        for &(x, y) in s.iter() {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let col = (((x.ln() - lx0) / xspan) * (width - 1) as f64).round() as usize;
            let row = (((y.ln() - ly0) / yspan) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            grid[r][col.min(width - 1)] = m;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("y: {:.3e} .. {:.3e} (log)\n", y0, y1));
    for row in grid {
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("x: {:.3e} .. {:.3e} (log)   ", x0, x1));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("[{}] {}  ", markers[si % markers.len()], name));
    }
    out.push('\n');
    out
}

/// Print a standard bench header.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 8);
    println!("\n{line}\n=== {title} ===\n{line}");
}

/// Axis scaling for [`svg_plot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log₁₀ axis (all values must be positive).
    Log,
}

fn scale_pos(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => (v - lo) / (hi - lo).max(1e-300),
        Scale::Log => (v.ln() - lo.ln()) / (hi.ln() - lo.ln()).max(1e-300),
    }
}

/// Render named series as a standalone SVG line chart (700×420). Returns
/// the SVG document; see [`write_svg`] to save it under `bench_results/`.
///
/// Hand-rolled on purpose: figure regeneration must not depend on
/// plotting crates outside the approved dependency set.
pub fn svg_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(&str, &[(f64, f64)])],
    x_scale: Scale,
    y_scale: Scale,
) -> String {
    const W: f64 = 700.0;
    const H: f64 = 420.0;
    const ML: f64 = 70.0; // margins
    const MR: f64 = 20.0;
    const MT: f64 = 40.0;
    const MB: f64 = 55.0;
    let colors = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
    ];

    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .filter(|&(x, y)| {
            x.is_finite()
                && y.is_finite()
                && (x_scale == Scale::Linear || x > 0.0)
                && (y_scale == Scale::Linear || y > 0.0)
        })
        .collect();
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n"
    ));
    if pts.is_empty() {
        svg.push_str("<text x=\"20\" y=\"40\">no data</text></svg>\n");
        return svg;
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x0 == x1 {
        x1 = x0 + 1.0;
    }
    if y0 == y1 {
        y1 = y0 * 1.5 + 1.0;
    }
    let px = |x: f64| ML + scale_pos(x, x0, x1, x_scale) * (W - ML - MR);
    let py = |y: f64| H - MB - scale_pos(y, y0, y1, y_scale) * (H - MT - MB);

    // Frame, title, axis labels.
    svg.push_str(&format!(
        "<rect x=\"{ML}\" y=\"{MT}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"#888\"/>\n",
        W - ML - MR,
        H - MT - MB
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        W / 2.0,
        xml_escape(title)
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        W / 2.0,
        H - 12.0,
        xml_escape(x_label)
    ));
    svg.push_str(&format!(
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>\n",
        H / 2.0,
        H / 2.0,
        xml_escape(y_label)
    ));
    // Min/max tick labels.
    svg.push_str(&format!(
        "<text x=\"{ML}\" y=\"{}\" font-size=\"10\">{:.3e}</text>\n\
         <text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\">{:.3e}</text>\n\
         <text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\">{:.3e}</text>\n\
         <text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\">{:.3e}</text>\n",
        H - MB + 14.0,
        x0,
        W - MR,
        H - MB + 14.0,
        x1,
        ML - 4.0,
        H - MB,
        y0,
        ML - 4.0,
        MT + 10.0,
        y1
    ));
    // Series.
    for (si, (name, s)) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        let path: Vec<String> = s
            .iter()
            .filter(|&&(x, y)| {
                (x_scale == Scale::Linear || x > 0.0) && (y_scale == Scale::Linear || y > 0.0)
            })
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        if !path.is_empty() {
            svg.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
                path.join(" ")
            ));
        }
        // Legend entry.
        let ly = MT + 16.0 + 16.0 * si as f64;
        svg.push_str(&format!(
            "<line x1=\"{}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"3\"/>\n\
             <text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>\n",
            ML + 8.0,
            ML + 30.0,
            ML + 36.0,
            ly + 4.0,
            xml_escape(name)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Write an SVG document under `<workspace>/bench_results/<name>.svg`
/// (best effort).
pub fn write_svg(name: &str, svg: &str) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.svg"));
        if fs::write(&path, svg).is_ok() {
            println!("[svg] wrote {}", path.display());
        }
    }
}

/// Tabulate a recorded trace's events, one row per event — the compact
/// CSV companion to `psse_trace::Trace::to_chrome_json`. Render with
/// [`Table::render`] or dump with [`Table::write_csv`].
pub fn trace_events_table(trace: &psse_trace::Trace) -> Table {
    use psse_sim::record::EventKind;
    let mut t = Table::new(&["rank", "t_start", "t_end", "kind", "detail"]);
    for (rank, events) in trace.events.iter().enumerate() {
        for e in events {
            let (kind, detail) = match &e.kind {
                EventKind::Compute { flops } => ("compute", format!("flops={flops}")),
                EventKind::Send { dest, tag, words } => {
                    ("send", format!("dest={dest} tag={tag} words={words}"))
                }
                EventKind::Recv {
                    src,
                    tag,
                    words,
                    msgs,
                } => (
                    "recv",
                    format!("src={src} tag={tag} words={words} msgs={msgs}"),
                ),
                EventKind::Alloc { words } => ("alloc", format!("words={words}")),
                EventKind::Free { words } => ("free", format!("words={words}")),
                EventKind::CollBegin { op } => ("coll_begin", format!("op={op}")),
                EventKind::CollEnd { op } => ("coll_end", format!("op={op}")),
                EventKind::Retry {
                    dest,
                    tag,
                    attempt,
                    words,
                    backoff,
                } => (
                    "retry",
                    format!(
                        "dest={dest} tag={tag} attempt={attempt} words={words} backoff={backoff}"
                    ),
                ),
                EventKind::LinkDelay { seconds } => ("link_delay", format!("seconds={seconds}")),
                EventKind::Checkpoint { words } => ("checkpoint", format!("words={words}")),
                EventKind::CrashRecovery { lost, restart } => {
                    ("crash_recovery", format!("lost={lost} restart={restart}"))
                }
            };
            t.row(&[
                rank.to_string(),
                sci(e.t_start),
                sci(e.t_end),
                kind.to_string(),
                detail,
            ]);
        }
    }
    t
}

/// Tabulate a critical-path report's per-rank compute/comm/idle
/// breakdown (seconds), ready for [`Table::render`]/[`Table::write_csv`].
pub fn trace_breakdown_table(report: &psse_trace::CriticalPathReport) -> Table {
    let mut t = Table::new(&["rank", "compute_s", "comm_s", "idle_s", "makespan_s"]);
    for b in &report.breakdown {
        t.row(&[
            b.rank.to_string(),
            sci(b.compute),
            sci(b.comm),
            sci(b.idle),
            sci(report.makespan),
        ]);
    }
    t
}

/// The output directory: `bench_results/` at the workspace root.
/// Benches run with the package directory as cwd, so resolve via
/// `CARGO_MANIFEST_DIR` (two levels up from `crates/bench`); fall back
/// to a relative path when invoked outside cargo.
fn results_dir() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let base = PathBuf::from(dir);
            base.parent()
                .and_then(|p| p.parent())
                .map(|ws| ws.join("bench_results"))
                .unwrap_or_else(|| base.join("bench_results"))
        }
        None => PathBuf::from("bench_results"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["p", "energy"]);
        t.row(&["4".into(), "1.0".into()]);
        t.row(&["1024".into(), "123.456".into()]);
        let s = t.render();
        assert!(s.contains("p"));
        assert!(s.contains("1024"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn trace_tables_cover_events_and_breakdown() {
        use psse_sim::machine::{Machine, SimConfig};
        use psse_sim::Tag;
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg.clone(), |rank| {
            rank.compute(100);
            let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64])?;
            Ok(v[0])
        })
        .unwrap();
        let trace = psse_trace::Trace::from_run(&cfg, &out.profile).unwrap();

        let events = trace_events_table(&trace);
        let csv = events.to_csv();
        assert_eq!(csv.lines().count(), trace.n_events() + 1);
        assert!(csv.contains("compute"));
        assert!(csv.contains("send"));
        assert!(csv.contains("recv"));
        assert!(csv.contains("coll_begin"));

        let report = trace.critical_path(&trace.params).unwrap();
        let breakdown = trace_breakdown_table(&report);
        assert_eq!(breakdown.to_csv().lines().count(), 3); // header + 2 ranks
        assert!(breakdown.to_csv().starts_with("rank,compute_s,comm_s"));
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(1.5).starts_with("1.5"));
        assert!(sci(1.5e-9).contains('e'));
        assert!(sci(-2.0e12).contains('e'));
    }

    #[test]
    fn plot_contains_markers_and_bounds() {
        let s1: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let s2: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 5.0)).collect();
        let plot = ascii_plot_loglog(&[("quad", &s1), ("flat", &s2)], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("quad"));
        assert!(plot.contains("flat"));
    }

    #[test]
    fn plot_handles_empty() {
        let plot = ascii_plot_loglog(&[("none", &[])], 10, 5);
        assert!(plot.contains("no positive data"));
    }

    #[test]
    fn svg_plot_contains_series_and_labels() {
        let s1: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let s2: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 5.0)).collect();
        let svg = svg_plot(
            "W*p vs p",
            "p",
            "W*p",
            &[("classical", &s1), ("flat", &s2)],
            Scale::Log,
            Scale::Log,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("classical"));
        assert!(svg.contains("flat"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("W*p vs p"));
    }

    #[test]
    fn svg_plot_handles_empty_and_degenerate() {
        let svg = svg_plot(
            "t",
            "x",
            "y",
            &[("none", &[])],
            Scale::Linear,
            Scale::Linear,
        );
        assert!(svg.contains("no data"));
        let one = [(2.0, 3.0)];
        let svg = svg_plot(
            "t",
            "x",
            "y",
            &[("one", &one)],
            Scale::Linear,
            Scale::Linear,
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn svg_escapes_markup() {
        let pts = [(1.0, 1.0)];
        let svg = svg_plot(
            "a < b & c",
            "x",
            "y",
            &[("s", &pts)],
            Scale::Linear,
            Scale::Linear,
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn svg_log_scale_rejects_nonpositive_points() {
        let pts = [(0.0, 1.0), (1.0, 1.0), (10.0, 10.0)];
        let svg = svg_plot("t", "x", "y", &[("s", &pts)], Scale::Log, Scale::Log);
        // The polyline should only contain the two positive points.
        let poly = svg.split("<polyline points=\"").nth(1).unwrap();
        let coords = poly.split('"').next().unwrap();
        assert_eq!(coords.split(' ').count(), 2);
    }

    #[test]
    fn plot_monotone_series_fills_diagonal() {
        let s: Vec<(f64, f64)> = (0..20).map(|i| (2f64.powi(i), 2f64.powi(i))).collect();
        let plot = ascii_plot_loglog(&[("diag", &s)], 30, 10);
        // First data row (top) and last (bottom) both contain the marker.
        let rows: Vec<&str> = plot.lines().filter(|l| l.starts_with('|')).collect();
        assert!(rows.first().unwrap().contains('*'));
        assert!(rows.last().unwrap().contains('*'));
    }
}
