//! Golden-file tests: regenerating the Fig. 4 grid and the Fig. 6
//! analytic table **through the psse-lab engine** reproduces the
//! checked-in `bench_results/` CSVs byte for byte.
//!
//! This is the contract that lets the figure benches route their sweeps
//! through the lab: the runner prices n-body and 2.5D matmul with the
//! exact `psse-core` closed-form floats, and the pool reassembles
//! results in spec order, so neither parallelism nor caching can change
//! a single output byte.

use psse_bench::report::{sci, Table};
use psse_core::costs::{Algorithm, DirectNBody};
use psse_core::energy::gflops_per_watt;
use psse_core::machines::jaketown;
use psse_core::params::MachineParams;
use psse_core::tech_scaling::{scale_all_energy, scale_param, CaseStudy, EnergyParam};
use psse_lab::prelude::{Lab, LabConfig, RunKey};
use std::path::PathBuf;

fn checked_in(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../bench_results")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()))
}

/// The Fig. 4 contrived machine (same parameters as the bench).
fn contrived() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(2e-8)
        .alpha_t(1e-6)
        .gamma_e(1e-9)
        .beta_e(4e-6)
        .alpha_e(1e-4)
        .delta_e(5e-4)
        .epsilon_e(0.0)
        .max_message_words(100.0)
        .mem_words(1e12)
        .build()
        .unwrap()
}

#[test]
fn fig4_grid_regenerated_through_lab_is_byte_identical() {
    const N: u64 = 10_000;
    const F: f64 = 10.0;
    let mp = contrived();
    let nb = DirectNBody {
        flops_per_interaction: F,
    };
    let m_lo = nb.min_memory(N, 100);
    let m_hi = nb.max_useful_memory(N, 6);

    let lab = Lab::new(LabConfig::default());
    let mut keys = Vec::new();
    for pi in 0..30 {
        let p = (6.0 * (100.0f64 / 6.0).powf(pi as f64 / 29.0)).round() as u64;
        for mi in 0..30 {
            let m = m_lo * (m_hi / m_lo).powf(mi as f64 / 29.0);
            let mut k = RunKey::model("nbody", N, p, mp.clone());
            k.f = F;
            k.mem = m;
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);

    let mut grid = Table::new(&["p", "M", "T", "E", "P"]);
    for (k, r) in keys.iter().zip(&results) {
        let r = r.as_ref().expect("n-body model run");
        if r.feasible {
            grid.row(&[
                k.p.to_string(),
                sci(k.mem),
                sci(r.time),
                sci(r.energy),
                sci(r.energy / r.time),
            ]);
        }
    }
    assert_eq!(grid.to_csv(), checked_in("fig4_grid.csv"));
}

#[test]
fn fig6_table_regenerated_through_lab_is_byte_identical() {
    let base = jaketown();
    let study = CaseStudy::default();
    let generations = 10u32;

    let lab = Lab::new(LabConfig::default());
    let mut keys = Vec::new();
    for gen in 0..=generations {
        let f = 0.5f64.powi(gen as i32);
        for m in [
            scale_param(&base, EnergyParam::GammaE, f),
            scale_param(&base, EnergyParam::BetaE, f),
            scale_param(&base, EnergyParam::DeltaE, f),
            scale_all_energy(&base, f),
        ] {
            let mut k = RunKey::model("matmul", study.n, study.p, m.clone());
            k.mem = study.memory(&m);
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);
    let cell = |i: usize| {
        let r = results[i].as_ref().expect("matmul model run");
        gflops_per_watt(r.flops, r.energy)
    };

    let mut table = Table::new(&[
        "generation",
        "halve gamma_e",
        "halve beta_e",
        "halve delta_e",
        "all three",
    ]);
    for gen in 0..=generations as usize {
        table.row(&[
            gen.to_string(),
            format!("{:.3}", cell(4 * gen)),
            format!("{:.3}", cell(4 * gen + 1)),
            format!("{:.3}", cell(4 * gen + 2)),
            format!("{:.3}", cell(4 * gen + 3)),
        ]);
    }
    assert_eq!(table.to_csv(), checked_in("fig6_scaling_individual.csv"));
}
