//! Property-based tests for the metrics layer: histogram merge is
//! exactly associative and commutative (the guarantee that makes
//! per-worker shard reduction deterministic), snapshots are canonical
//! regardless of recording order, and histogram JSON round-trips.

use proptest::prelude::*;
use psse_metrics::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning every octave regime: exact small buckets, mid-range
/// log-linear buckets, and near-overflow values.
fn sample() -> impl Strategy<Value = u64> {
    (0u64..3, any::<u64>()).prop_map(|(regime, raw)| match regime {
        0 => raw % 64,
        1 => raw % 1_000_000,
        _ => raw,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a), down to full state equality.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(sample(), 0..40),
        ys in prop::collection::vec(sample(), 0..40),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)) — so any
    /// reduction-tree shape over worker shards gives the same result.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(sample(), 0..30),
        ys in prop::collection::vec(sample(), 0..30),
        zs in prop::collection::vec(sample(), 0..30),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging shards equals recording the concatenated sample stream
    /// directly — sharding loses nothing.
    #[test]
    fn sharding_is_lossless(
        xs in prop::collection::vec(sample(), 0..40),
        ys in prop::collection::vec(sample(), 0..40),
    ) {
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_of(&all));
    }

    /// A histogram survives the JSON round-trip with full state
    /// equality (buckets, count, exact sum, min, max).
    #[test]
    fn histogram_json_round_trips(xs in prop::collection::vec(sample(), 0..60)) {
        let h = hist_of(&xs);
        let text = histogram_to_json(&h).to_string();
        let parsed = Json::parse(&text).unwrap();
        let back = histogram_from_json(&parsed).unwrap();
        prop_assert_eq!(back, h);
    }

    /// Snapshot text/JSON are canonical: recording the same multiset of
    /// samples in any order yields identical bytes.
    #[test]
    fn snapshot_is_order_independent(
        xs in prop::collection::vec(sample(), 1..40),
        seed in any::<u64>(),
    ) {
        let reg_a = Registry::new();
        let ha = reg_a.histogram("wall_ns").unwrap();
        for &v in &xs {
            ha.record(v);
        }
        reg_a.counter("runs").unwrap().add(xs.len() as u64);

        // Same samples, deterministically shuffled, registered in the
        // opposite metric order.
        let mut perm = xs.clone();
        let mut state = seed;
        for i in (1..perm.len()).rev() {
            // splitmix64 step — keeps the shuffle self-contained.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            perm.swap(i, (z % (i as u64 + 1)) as usize);
        }
        let reg_b = Registry::new();
        reg_b.counter("runs").unwrap().add(perm.len() as u64);
        let hb = reg_b.histogram("wall_ns").unwrap();
        for &v in &perm {
            hb.record(v);
        }

        prop_assert_eq!(reg_a.snapshot().to_text(), reg_b.snapshot().to_text());
        prop_assert_eq!(
            reg_a.snapshot().to_json().to_string(),
            reg_b.snapshot().to_json().to_string()
        );
    }

    /// Arbitrary JSON trees round-trip through emit → parse.
    #[test]
    fn json_value_round_trips(
        ints in prop::collection::vec(any::<u64>(), 0..8),
        bits in prop::collection::vec(any::<u64>(), 0..4),
        // Printable ASCII plus the characters the emitter escapes.
        chars in prop::collection::vec(0u8..100, 0..24),
    ) {
        let floats: Vec<Json> = bits
            .iter()
            .map(|&b| f64::from_bits(b))
            .filter(|f| f.is_finite())
            .map(Json::Float)
            .collect();
        let s: String = chars
            .iter()
            .map(|&c| match c {
                95 => '"',
                96 => '\\',
                97 => '\n',
                98 => '\t',
                99 => '\u{1}',
                c => (b' ' + c) as char,
            })
            .collect();
        let v = Json::obj(vec![
            // Signed coverage: interpret the raw u64 as i64.
            ("ints", Json::Arr(ints.iter().map(|&i| Json::Int(i as i64 as i128)).collect())),
            ("floats", Json::Arr(floats)),
            ("s", Json::Str(s)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        prop_assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
