//! # psse-metrics — zero-dependency structured metrics
//!
//! The observability layer for the psse workspace: counters, gauges
//! and mergeable log-linear histograms behind a [`Registry`] that
//! snapshots to canonical text and JSON.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic output.** Snapshots sort by metric name, and the
//!    renderings are canonical — two registries holding the same
//!    recorded values serialize byte-for-byte identically, no matter
//!    what order threads touched them in. This is what lets `psse lab
//!    run --jobs 8` emit a self-profile whose *structure* is stable
//!    across reruns (only timing values vary).
//! 2. **Exact merges.** [`Histogram`] state is all integers (u64
//!    counts, u128 sum), so [`Histogram::merge`] is exactly
//!    associative and commutative. Per-worker shards reduce to the
//!    same result for any reduction-tree shape — verified by proptest.
//! 3. **Zero dependencies.** The crate sits below `psse-sim` and
//!    `psse-faults` in the dependency DAG, so it can pull in nothing;
//!    even JSON is the ~300-line [`json::Json`] value type.
//!
//! ```
//! use psse_metrics::prelude::*;
//!
//! let reg = Registry::new();
//! reg.counter("lab.cache.hits").unwrap().add(3);
//! let wall = reg.histogram("lab.run.wall_ns").unwrap();
//! wall.record_secs(0.001);
//! wall.record_secs(0.004);
//!
//! let snap = reg.snapshot();
//! assert!(snap.to_text().starts_with("counter lab.cache.hits 3\n"));
//! let json = snap.to_json().to_string();
//! assert!(json.contains("\"lab.run.wall_ns\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod registry;

pub use hist::{saturating_nanos, Histogram};
pub use json::Json;
pub use registry::{
    histogram_from_json, histogram_to_json, Counter, Gauge, HistogramHandle, Registry, Snapshot,
    SnapshotValue,
};

/// The usual imports for metrics users.
pub mod prelude {
    pub use crate::hist::{saturating_nanos, Histogram};
    pub use crate::json::Json;
    pub use crate::registry::{
        histogram_from_json, histogram_to_json, Counter, Gauge, HistogramHandle, Registry,
        Snapshot, SnapshotValue,
    };
}
