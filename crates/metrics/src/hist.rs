//! Mergeable log-linear histograms over `u64` samples.
//!
//! The value domain is split into octaves (powers of two), each divided
//! into [`SUBBUCKETS`] linear sub-buckets — the classic HDR layout.
//! Relative bucket width is at most `1/SUBBUCKETS` (6.25%), which is
//! plenty for attribution ("where did the time go"), and the whole
//! state is integers: bucket counts are `u64`, the running sum is a
//! `u128`. That makes [`Histogram::merge`] **exactly** associative and
//! commutative — per-worker shards reduce to the same histogram no
//! matter how the reduction tree is shaped, which is what lets a
//! parallel sweep emit a deterministic self-profile.
//!
//! Samples are raw `u64`s; callers pick the unit. The lab records
//! wall-clock in integer nanoseconds ([`Histogram::record_secs`]
//! converts), the simulator records flop/word/message counters
//! directly, and Eq. 1/2 term breakdowns arrive as nano-seconds /
//! nano-joules.

/// Linear sub-buckets per octave. Must be a power of two.
pub const SUBBUCKETS: u64 = 16;

/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Values below `SUBBUCKETS` get one exact bucket each; above, each
/// octave `[2^e, 2^(e+1))` for `e in SUB_BITS..64` has `SUBBUCKETS`
/// sub-buckets.
const N_BUCKETS: usize = SUBBUCKETS as usize + (64 - SUB_BITS as usize) * SUBBUCKETS as usize;

/// Map a sample to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= SUB_BITS
    let sub = (v >> (e - SUB_BITS)) - SUBBUCKETS; // 0..SUBBUCKETS
    SUBBUCKETS as usize + ((e - SUB_BITS) as usize) * SUBBUCKETS as usize + sub as usize
}

/// Inclusive `(low, high)` value range covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBBUCKETS as usize {
        return (index as u64, index as u64);
    }
    let i = index - SUBBUCKETS as usize;
    let e = (i / SUBBUCKETS as usize) as u32 + SUB_BITS;
    let sub = (i % SUBBUCKETS as usize) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let low = (1u64 << e) + sub * width;
    (low, low + (width - 1))
}

/// A log-linear histogram of `u64` samples with exact integer state.
///
/// Recording is O(1); merging is element-wise integer addition and is
/// exactly associative and commutative (see the module docs). The
/// in-memory footprint is one dense `Vec` of `N_BUCKETS` counters
/// (~7.7 KiB); snapshots keep only the occupied buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a non-negative number of seconds as integer nanoseconds
    /// (rounded; saturating at `u64::MAX`, clamping negatives and NaN
    /// to zero).
    pub fn record_secs(&mut self, secs: f64) {
        self.record(saturating_nanos(secs));
    }

    /// Merge another histogram into this one. Exactly associative and
    /// commutative: all state is integer sums, mins and maxes.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the samples (0 when empty); exact integer arithmetic
    /// until the final division.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q·count)`,
    /// clamped to the recorded `[min, max]`. Deterministic — a pure
    /// function of the integer state.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (_, high) = bucket_bounds(i);
                return Some(high.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Overwrite the derived `sum`/`min`/`max` statistics. Used when
    /// rebuilding a histogram from its serialized bucket form: the
    /// replayed samples land in the right buckets but only at
    /// bucket-low resolution, so the exact aggregates are restored
    /// from the serialized values. No-op on an empty histogram.
    pub(crate) fn force_stats(&mut self, sum: u128, min: u64, max: u64) {
        if self.count > 0 {
            self.sum = sum;
            self.min = min;
            self.max = max;
        }
    }

    /// Occupied buckets as `(low, high, count)` triples, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// Convert non-negative seconds to integer nanoseconds, rounding, with
/// NaN and negatives clamped to 0 and overflow saturating.
pub fn saturating_nanos(secs: f64) -> u64 {
    let ns = secs * 1e9;
    if ns.is_nan() || ns <= 0.0 {
        0
    } else if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUBBUCKETS {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_domain() {
        // Bucket bounds are contiguous and cover every probe value.
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
        }
        // Adjacent indices are adjacent in value.
        for i in 0..N_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn bucket_width_is_bounded() {
        for v in [100u64, 1_000, 1_000_000, 1 << 40] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!((hi - lo) as f64 / lo as f64 <= 1.0 / SUBBUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [10, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 150);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(50));
        assert_eq!(h.mean(), 30.0);
        // Median lands in the bucket containing 30.
        let med = h.quantile(0.5).unwrap();
        let (lo, hi) = bucket_bounds(bucket_index(30));
        assert!((lo..=hi).contains(&med), "{med} vs [{lo}, {hi}]");
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(1_000_000);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 5 + 100 + 1_000_000);
        assert_eq!(m.min(), Some(5));
        assert_eq!(m.max(), Some(1_000_000));
        // Commutativity, spot-checked (the proptest covers it broadly).
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m, m2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let mut m = a.clone();
        m.merge(&Histogram::new());
        assert_eq!(m, a);
    }

    #[test]
    fn secs_conversion_clamps() {
        assert_eq!(saturating_nanos(-1.0), 0);
        assert_eq!(saturating_nanos(f64::NAN), 0);
        assert_eq!(saturating_nanos(0.0), 0);
        assert_eq!(saturating_nanos(1.5e-9), 2); // rounds
        assert_eq!(saturating_nanos(1.0), 1_000_000_000);
        assert_eq!(saturating_nanos(1e30), u64::MAX);
    }
}
