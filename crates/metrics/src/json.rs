//! A minimal JSON value: emit and parse, no external dependencies.
//!
//! Exists so the self-profile a sweep writes can be validated and
//! round-tripped without pulling a serde stack into an offline build.
//! The emitter is canonical enough for byte-stable structure: object
//! keys keep insertion order (callers insert deterministically),
//! integers print exactly ([`Json::Int`] is `i128`, wide enough for
//! histogram sums), and floats print Rust's shortest round-trip form —
//! so `parse(emit(v)) == v` bit-for-bit, which the proptest suite
//! checks.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number. Non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i128` if it is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(s, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's Display prints the shortest string that
                    // parses back to the same f64; force a fraction or
                    // exponent so the parser reads it back as Float.
                    let t = format!("{v}");
                    s.push_str(&t);
                    if !t.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                } else {
                    s.push_str("null");
                }
            }
            Json::Str(v) => write_escaped(s, v),
            Json::Arr(items) => {
                s.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    it.write(s);
                }
                s.push(']');
            }
            Json::Obj(pairs) => {
                s.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write_escaped(s, k);
                    s.push(':');
                    v.write(s);
                }
                s.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Compact serialization (no whitespace); `to_string()` is canonical —
/// byte-stable for a given value.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &mut String, v: &str) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed for our own
                        // output (we never escape above U+001F).
                        out.push(char::from_u32(code).ok_or("bad \\u code".to_string())?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad UTF-8".to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number `{text}`"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Int(0), "0"),
            (Json::Int(-42), "-42"),
            (
                Json::Int(i128::MAX),
                "170141183460469231731687303715884105727",
            ),
            (Json::Str("a\"b\\c\nd".into()), "\"a\\\"b\\\\c\\nd\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.5, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 123.456] {
            let s = Json::Float(v).to_string();
            match Json::parse(&s).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "{s}"),
                other => panic!("expected float from `{s}`, got {other:?}"),
            }
        }
        // Whole-number floats keep their floatness through the trip.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        // Non-finite becomes null.
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::Str("sweep".into())),
            ("runs", Json::Arr(vec![Json::Int(1), Json::Float(2.5)])),
            ("meta", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let s = v.to_string();
        assert_eq!(
            s,
            "{\"name\":\"sweep\",\"runs\":[1,2.5],\"meta\":{\"ok\":true}}"
        );
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(v.get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(v.get("runs").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::obj(vec![("a", Json::Arr(vec![Json::Int(1), Json::Int(2)]))])
        );
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("héllo → wörld".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
