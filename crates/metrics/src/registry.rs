//! The metric registry: named counters, gauges and histograms with
//! canonical snapshots.
//!
//! A [`Registry`] is a concurrent map from metric name to metric.
//! Handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are cheap
//! clones that share state with the registry, so hot paths update
//! without re-hashing the name. [`Registry::snapshot`] freezes the
//! whole map into a [`Snapshot`] whose entries are sorted by name —
//! the text and JSON renderings are therefore canonical: two
//! registries with the same recorded values serialize byte-for-byte
//! identically, regardless of insertion or thread interleaving order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::json::Json;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `i64` gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to a registered [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one `u64` sample (unit chosen by the caller).
    pub fn record(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// Record seconds as integer nanoseconds (see
    /// [`crate::hist::saturating_nanos`]).
    pub fn record_secs(&self, secs: f64) {
        self.0.lock().unwrap().record_secs(secs);
    }

    /// Merge a standalone histogram (e.g. a per-worker shard) into
    /// this one.
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().unwrap().merge(other);
    }

    /// Clone out the current histogram state.
    pub fn load(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A concurrent, snapshot-able collection of named metrics.
///
/// Names are free-form; the workspace convention is dot-separated
/// namespaces (`lab.run.wall_ns`, `sim.rank.flops`, `faults.retries`).
/// Re-registering a name returns the existing metric; asking for the
/// same name with a different kind is an error rather than a silent
/// aliasing bug.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Result<Counter, String> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => Ok(c.clone()),
            other => Err(kind_mismatch(name, "counter", other.kind())),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Result<Gauge, String> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => Ok(g.clone()),
            other => Err(kind_mismatch(name, "gauge", other.kind())),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Result<HistogramHandle, String> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::default()))
        {
            Metric::Histogram(h) => Ok(h.clone()),
            other => Err(kind_mismatch(name, "histogram", other.kind())),
        }
    }

    /// Freeze every metric into a sorted, immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap();
        Snapshot {
            entries: map
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(h.load()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

fn kind_mismatch(name: &str, wanted: &str, found: &str) -> String {
    format!("metric `{name}` is a {found}, not a {wanted}")
}

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(Histogram),
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl Snapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Canonical line-oriented text rendering, one metric per line:
    ///
    /// ```text
    /// counter lab.cache.hits 42
    /// gauge lab.jobs 8
    /// histogram lab.run.wall_ns count=3 sum=1500 min=100 max=900 mean=500 p50=512 p99=927
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("counter {name} {v}\n"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("gauge {name} {v}\n"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "histogram {name} count={} sum={} min={} max={} mean={:.3} p50={} p99={}\n",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.mean(),
                        h.quantile(0.5).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                    ));
                }
            }
        }
        out
    }

    /// Canonical JSON rendering: an object keyed by metric name (name
    /// order), each value tagged with its kind. Histograms serialize
    /// their full occupied-bucket list, so a snapshot round-trips
    /// losslessly through [`Json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        SnapshotValue::Counter(c) => Json::obj(vec![
                            ("kind", Json::Str("counter".into())),
                            ("value", Json::Int(*c as i128)),
                        ]),
                        SnapshotValue::Gauge(g) => Json::obj(vec![
                            ("kind", Json::Str("gauge".into())),
                            ("value", Json::Int(*g as i128)),
                        ]),
                        SnapshotValue::Histogram(h) => histogram_to_json(h),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

/// Serialize a histogram as a tagged JSON object.
pub fn histogram_to_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("histogram".into())),
        ("count", Json::Int(h.count() as i128)),
        ("sum", Json::Int(h.sum() as i128)),
        ("min", Json::Int(h.min().unwrap_or(0) as i128)),
        ("max", Json::Int(h.max().unwrap_or(0) as i128)),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, c)| {
                        Json::Arr(vec![
                            Json::Int(lo as i128),
                            Json::Int(hi as i128),
                            Json::Int(c as i128),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Rebuild a histogram from [`histogram_to_json`] output. The
/// reconstruction replays one synthetic sample per bucket count at the
/// bucket's low bound, then restores the exact `sum`/`min`/`max` — so
/// count, sum, min, max and the bucket occupancy all round-trip
/// exactly.
pub fn histogram_from_json(v: &Json) -> Result<Histogram, String> {
    let want_int = |k: &str| -> Result<i128, String> {
        v.get(k)
            .and_then(Json::as_int)
            .ok_or_else(|| format!("histogram JSON missing integer `{k}`"))
    };
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram JSON missing `buckets`")?;
    let mut h = Histogram::new();
    for b in buckets {
        let t = b.as_arr().ok_or("bucket is not an array")?;
        if t.len() != 3 {
            return Err("bucket is not a [lo, hi, count] triple".into());
        }
        let lo = t[0].as_u64().ok_or("bad bucket low bound")?;
        let c = t[2].as_u64().ok_or("bad bucket count")?;
        for _ in 0..c {
            h.record(lo);
        }
    }
    if h.count() != want_int("count")? as u64 {
        return Err("bucket counts disagree with `count`".into());
    }
    h.force_stats(
        u128::try_from(want_int("sum")?).map_err(|_| "negative sum".to_string())?,
        want_int("min")? as u64,
        want_int("max")? as u64,
    );
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("lab.cache.hits").unwrap();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying counter.
        assert_eq!(reg.counter("lab.cache.hits").unwrap().get(), 5);

        let g = reg.gauge("lab.jobs").unwrap();
        g.set(8);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let reg = Registry::new();
        reg.counter("x").unwrap();
        assert!(reg.gauge("x").is_err());
        assert!(reg.histogram("x").is_err());
        let err = reg.gauge("x").unwrap_err();
        assert!(err.contains("counter"), "{err}");
    }

    #[test]
    fn snapshot_is_sorted_and_canonical() {
        let reg = Registry::new();
        reg.gauge("z.last").unwrap().set(1);
        reg.counter("a.first").unwrap().add(2);
        let h = reg.histogram("m.mid").unwrap();
        h.record(100);
        h.record(200);

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);

        let text = snap.to_text();
        assert!(text.starts_with("counter a.first 2\n"), "{text}");
        assert!(text.contains("histogram m.mid count=2 sum=300"), "{text}");
        assert!(text.ends_with("gauge z.last 1\n"), "{text}");

        // Same values registered in a different order → same bytes.
        let reg2 = Registry::new();
        let h2 = reg2.histogram("m.mid").unwrap();
        h2.record(200);
        h2.record(100);
        reg2.counter("a.first").unwrap().add(2);
        reg2.gauge("z.last").unwrap().set(1);
        assert_eq!(reg2.snapshot().to_text(), text);
        assert_eq!(
            reg2.snapshot().to_json().to_string(),
            snap.to_json().to_string()
        );
    }

    #[test]
    fn snapshot_get_finds_entries() {
        let reg = Registry::new();
        reg.counter("hits").unwrap().add(3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("hits"), Some(&SnapshotValue::Counter(3)));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 17, 17, 1_000_003, u64::MAX / 3] {
            h.record(v);
        }
        let back = histogram_from_json(&histogram_to_json(&h)).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
    }

    #[test]
    fn shards_merge_through_handles() {
        // Two "workers" each build a local shard; merging through the
        // registry handle gives the union.
        let reg = Registry::new();
        let handle = reg.histogram("wall_ns").unwrap();
        let mut shard_a = Histogram::new();
        shard_a.record(10);
        let mut shard_b = Histogram::new();
        shard_b.record(30);
        handle.merge(&shard_a);
        handle.merge(&shard_b);
        let h = handle.load();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 40);
    }
}
