//! Two-level machine model (paper Fig. 2, Eqs. 12 and 17).
//!
//! The machine is `pn` nodes, each with `pl` cores (`p = pn·pl`). There
//! are two communication levels (inter-node links priced `βnt`/`βne` per
//! word, intra-node links priced `βlt`/`βle`) and two memory levels (node
//! memory `Mn` priced `δne`, core-local memory `Ml` priced `δle`).
//! Latency terms are elided exactly as in the paper ("It can be added by
//! substituting β = β·m + α").
//!
//! ## Transcription note
//!
//! Our source text of the paper renders Eqs. 12 and 17 with damaged
//! sub/superscripts, so both are **re-derived from the machine model**
//! here. For the n-body problem the derivation (with every core
//! participating in node-level communication) reproduces the printed
//! Eq. 17 term by term — see `eq17_closed_form_matches_generic` in the
//! tests. For matrix multiplication the printed Eq. 12's runtime says
//! node-level transfers take `βnt·n³/(pn·√Mn)` (node-granular), while its
//! energy line charges inter-node words at a rate inconsistent with that
//! runtime by a factor of `pl²`; we keep the runtime (node-granular
//! traffic, [`NodeTraffic::PerNode`]) and price energy consistently with
//! it.

use crate::error::CoreError;
use crate::Real;

/// Who generates node-level (inter-node) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTraffic {
    /// One network endpoint per node: per-core inter-node word counts are
    /// the per-node counts, and only `pn` endpoints pay word energy.
    /// (Matches the runtime line of paper Eq. 12.)
    PerNode,
    /// Every core participates in inter-node communication: all `p`
    /// cores pay word time and energy. (Matches paper Eq. 17.)
    PerCore,
}

/// Parameters of the two-level machine of paper Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelParams {
    /// Number of nodes, `pn`.
    pub nodes: u64,
    /// Cores per node, `pl`.
    pub cores_per_node: u64,
    /// `γt` — seconds per flop (per core).
    pub gamma_t: Real,
    /// `γe` — joules per flop.
    pub gamma_e: Real,
    /// `βnt` — seconds per word on inter-node links.
    pub beta_n_t: Real,
    /// `βne` — joules per word on inter-node links.
    pub beta_n_e: Real,
    /// `βlt` — seconds per word on intra-node links.
    pub beta_l_t: Real,
    /// `βle` — joules per word on intra-node links.
    pub beta_l_e: Real,
    /// `δne` — joules per stored word per second in node memory.
    pub delta_n_e: Real,
    /// `δle` — joules per stored word per second in core-local memory.
    pub delta_l_e: Real,
    /// `εe` — leakage joules per second per core.
    pub epsilon_e: Real,
    /// `Mn` — node memory, words.
    pub mem_node: Real,
    /// `Ml` — core-local memory, words.
    pub mem_local: Real,
}

/// Per-core cost profile on the two-level machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelCosts {
    /// Flops per core.
    pub flops: Real,
    /// Inter-node words, per node ([`NodeTraffic::PerNode`]) or per core
    /// ([`NodeTraffic::PerCore`]) according to the model in use.
    pub words_node: Real,
    /// Intra-node words per core.
    pub words_local: Real,
    /// Traffic model for `words_node`.
    pub traffic: NodeTraffic,
}

impl TwoLevelParams {
    /// Total core count `p = pn·pl`.
    pub fn p(&self) -> u64 {
        self.nodes * self.cores_per_node
    }

    /// Validate physical invariants.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.nodes == 0 || self.cores_per_node == 0 {
            return Err(CoreError::InvalidConfiguration(
                "two-level machine needs nodes >= 1 and cores_per_node >= 1".into(),
            ));
        }
        for (name, v) in [
            ("gamma_t", self.gamma_t),
            ("mem_node", self.mem_node),
            ("mem_local", self.mem_local),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(CoreError::InvalidParameter { name, value: v });
            }
        }
        for (name, v) in [
            ("gamma_e", self.gamma_e),
            ("beta_n_t", self.beta_n_t),
            ("beta_n_e", self.beta_n_e),
            ("beta_l_t", self.beta_l_t),
            ("beta_l_e", self.beta_l_e),
            ("delta_n_e", self.delta_n_e),
            ("delta_l_e", self.delta_l_e),
            ("epsilon_e", self.epsilon_e),
        ] {
            if v.is_nan() || v < 0.0 {
                return Err(CoreError::InvalidParameter { name, value: v });
            }
        }
        Ok(())
    }

    /// Runtime on the two-level machine:
    /// `T = γt·F + βnt·Wn + βlt·Wl` (per-core critical path; no overlap,
    /// latency elided per the paper).
    pub fn time(&self, c: &TwoLevelCosts) -> Real {
        self.gamma_t * c.flops + self.beta_n_t * c.words_node + self.beta_l_t * c.words_local
    }

    /// Energy on the two-level machine:
    ///
    /// ```text
    /// E = γe·(total flops) + βne·(total inter-node words)
    ///   + βle·(total intra-node words)
    ///   + (pn·δne·Mn + p·δle·Ml + p·εe)·T
    /// ```
    ///
    /// where totals follow the traffic model of `c`.
    pub fn energy(&self, c: &TwoLevelCosts, t: Real) -> Real {
        let p = self.p() as Real;
        let pn = self.nodes as Real;
        let node_endpoints = match c.traffic {
            NodeTraffic::PerNode => pn,
            NodeTraffic::PerCore => p,
        };
        self.gamma_e * c.flops * p
            + self.beta_n_e * c.words_node * node_endpoints
            + self.beta_l_e * c.words_local * p
            + (pn * self.delta_n_e * self.mem_node
                + p * self.delta_l_e * self.mem_local
                + p * self.epsilon_e)
                * t
    }

    /// Cost profile of 2.5D matrix multiplication on the two-level
    /// machine (the Eq. 12 workload): node-granular inter-node traffic
    /// `Wn = n³/(pn·√Mn)` and per-core intra-node traffic
    /// `Wl = n³/(p·√Ml)`.
    pub fn matmul_costs(&self, n: u64) -> TwoLevelCosts {
        let nf = n as Real;
        let n3 = nf * nf * nf;
        TwoLevelCosts {
            flops: n3 / self.p() as Real,
            words_node: n3 / (self.nodes as Real * self.mem_node.sqrt()),
            words_local: n3 / (self.p() as Real * self.mem_local.sqrt()),
            traffic: NodeTraffic::PerNode,
        }
    }

    /// Cost profile of the data-replicating direct n-body algorithm on
    /// the two-level machine (the Eq. 17 workload): every core
    /// participates in node-level exchanges, `Wn = n²/(pn·Mn)` per core,
    /// and `Wl = n²/(p·Ml)` per core.
    pub fn nbody_costs(&self, n: u64, f: Real) -> TwoLevelCosts {
        let nf = n as Real;
        let n2 = nf * nf;
        TwoLevelCosts {
            flops: f * n2 / self.p() as Real,
            words_node: n2 / (self.nodes as Real * self.mem_node),
            words_local: n2 / (self.p() as Real * self.mem_local),
            traffic: NodeTraffic::PerCore,
        }
    }

    /// `(T, E)` for 2.5D matmul (two-level analogue of Eqs. 9/10, with
    /// the Eq. 12 runtime).
    pub fn matmul_point(&self, n: u64) -> (Real, Real) {
        let c = self.matmul_costs(n);
        let t = self.time(&c);
        (t, self.energy(&c, t))
    }

    /// `(T, E)` for the n-body algorithm (paper Eq. 17).
    pub fn nbody_point(&self, n: u64, f: Real) -> (Real, Real) {
        let c = self.nbody_costs(n, f);
        let t = self.time(&c);
        (t, self.energy(&c, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;

    fn params() -> TwoLevelParams {
        TwoLevelParams {
            nodes: 16,
            cores_per_node: 8,
            gamma_t: 2.5e-12,
            gamma_e: 3.8e-10,
            beta_n_t: 1.6e-10,
            beta_n_e: 3.8e-10,
            beta_l_t: 2.0e-11,
            beta_l_e: 5.0e-11,
            delta_n_e: 5.8e-9,
            delta_l_e: 1.0e-9,
            epsilon_e: 0.05,
            mem_node: 1e9,
            mem_local: 1e6,
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = params();
        p.nodes = 0;
        assert!(matches!(
            p.validate(),
            Err(CoreError::InvalidConfiguration(_))
        ));
        let mut p = params();
        p.mem_local = 0.0;
        assert!(matches!(
            p.validate(),
            Err(CoreError::InvalidParameter { .. })
        ));
        let mut p = params();
        p.beta_n_e = -1.0;
        assert!(matches!(
            p.validate(),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(params().validate().is_ok());
    }

    /// The printed Eq. 17: term-by-term closed form, compared against the
    /// generic two-level evaluation.
    #[test]
    fn eq17_closed_form_matches_generic() {
        let tl = params();
        let n = 1u64 << 22;
        let f = 20.0;
        let (t, e) = tl.nbody_point(n, f);

        let nf = n as Real;
        let n2 = nf * nf;
        let pl = tl.cores_per_node as Real;
        let (bnt, bne, blt, ble) = (tl.beta_n_t, tl.beta_n_e, tl.beta_l_t, tl.beta_l_e);
        let (dn, dl, eps, gt, ge) = (
            tl.delta_n_e,
            tl.delta_l_e,
            tl.epsilon_e,
            tl.gamma_t,
            tl.gamma_e,
        );
        let (mn, ml) = (tl.mem_node, tl.mem_local);
        let pn = tl.nodes as Real;
        let p = pn * pl;

        // T = f·n²·γt/p + βnt·n²/(Mn·pn) + βlt·n²/(Ml·p)   (Eq. 17)
        let t_closed = f * n2 * gt / p + bnt * n2 / (mn * pn) + blt * n2 / (ml * p);
        assert!((t - t_closed).abs() / t_closed < 1e-12);

        // E = n²[ (f·γe + f·γt·εe + δne·βnt + δle·βlt)
        //       + (pl·βne + εe·pl·βnt)/Mn
        //       + (βle + εe·βlt)/Ml
        //       + δne·f·γt·Mn/pl + δle·f·γt·Ml
        //       + δne·βlt·Mn/(pl·Ml) + δle·βnt·pl·Ml/Mn ]   (Eq. 17)
        let e_closed = n2
            * ((f * ge + f * gt * eps + dn * bnt + dl * blt)
                + (pl * bne + eps * pl * bnt) / mn
                + (ble + eps * blt) / ml
                + dn * f * gt * mn / pl
                + dl * f * gt * ml
                + dn * blt * mn / (pl * ml)
                + dl * bnt * pl * ml / mn);
        assert!(
            (e - e_closed).abs() / e_closed < 1e-12,
            "generic {e} vs closed {e_closed}"
        );
    }

    #[test]
    fn two_level_nbody_energy_is_independent_of_node_count() {
        // The two-level analogue of perfect strong scaling: with Mn and
        // Ml fixed, the per-node/per-core work all scales as 1/pn while
        // node and core counts multiply it back.
        let mut tl = params();
        let n = 1u64 << 22;
        let f = 20.0;
        let (_, e1) = tl.nbody_point(n, f);
        tl.nodes *= 4;
        let (t4, e4) = tl.nbody_point(n, f);
        let (t1, _) = params().nbody_point(n, f);
        assert!((e4 - e1).abs() / e1 < 1e-12);
        assert!((t4 * 4.0 - t1).abs() / t1 < 1e-12);
    }

    #[test]
    fn matmul_reduces_to_single_level_when_degenerate() {
        // One core per node, free local traffic and no local memory cost:
        // the two-level matmul model must agree with Eqs. 9/10 at
        // M = Mn, m = ∞ (latency elided).
        let tl = TwoLevelParams {
            nodes: 64,
            cores_per_node: 1,
            gamma_t: 2.5e-12,
            gamma_e: 3.8e-10,
            beta_n_t: 1.6e-10,
            beta_n_e: 3.8e-10,
            beta_l_t: 0.0,
            beta_l_e: 0.0,
            delta_n_e: 5.8e-9,
            delta_l_e: 0.0,
            epsilon_e: 0.05,
            mem_node: 1e9,
            mem_local: 1.0,
        };
        let single = MachineParams::builder()
            .gamma_t(tl.gamma_t)
            .beta_t(tl.beta_n_t)
            .gamma_e(tl.gamma_e)
            .beta_e(tl.beta_n_e)
            .delta_e(tl.delta_n_e)
            .epsilon_e(tl.epsilon_e)
            .max_message_words(Real::INFINITY)
            .build();
        // max_message_words = ∞ is rejected? No: it is finite-positive
        // required; use a huge value instead.
        let single = match single {
            Ok(s) => s,
            Err(_) => MachineParams::builder()
                .gamma_t(tl.gamma_t)
                .beta_t(tl.beta_n_t)
                .gamma_e(tl.gamma_e)
                .beta_e(tl.beta_n_e)
                .delta_e(tl.delta_n_e)
                .epsilon_e(tl.epsilon_e)
                .max_message_words(1e30)
                .build()
                .unwrap(),
        };
        let n = 4096u64;
        let (t2, e2) = tl.matmul_point(n);
        let t1 = crate::time::t_matmul_25d(&single, n, 64, 1e9);
        let e1 = crate::energy::e_matmul_25d(&single, n, 1e9);
        assert!((t2 - t1).abs() / t1 < 1e-9, "t2={t2} t1={t1}");
        assert!((e2 - e1).abs() / e1 < 1e-9, "e2={e2} e1={e1}");
    }

    #[test]
    fn nbody_reduces_to_single_level_when_degenerate() {
        let tl = TwoLevelParams {
            nodes: 256,
            cores_per_node: 1,
            gamma_t: 2.5e-12,
            gamma_e: 3.8e-10,
            beta_n_t: 1.6e-10,
            beta_n_e: 3.8e-10,
            beta_l_t: 0.0,
            beta_l_e: 0.0,
            delta_n_e: 5.8e-9,
            delta_l_e: 0.0,
            epsilon_e: 0.05,
            mem_node: 1e6,
            mem_local: 1.0,
        };
        let single = MachineParams::builder()
            .gamma_t(tl.gamma_t)
            .beta_t(tl.beta_n_t)
            .gamma_e(tl.gamma_e)
            .beta_e(tl.beta_n_e)
            .delta_e(tl.delta_n_e)
            .epsilon_e(tl.epsilon_e)
            .max_message_words(1e30)
            .build()
            .unwrap();
        let n = 1u64 << 20;
        let f = 20.0;
        let (t2, e2) = tl.nbody_point(n, f);
        let t1 = crate::time::t_nbody(&single, n, 256, 1e6, f);
        let e1 = crate::energy::e_nbody(&single, n, 1e6, f);
        assert!((t2 - t1).abs() / t1 < 1e-9);
        assert!((e2 - e1).abs() / e1 < 1e-9);
    }

    #[test]
    fn faster_local_network_reduces_time_not_node_energy_terms() {
        let mut tl = params();
        let n = 4096u64;
        let (t_slow, _) = tl.matmul_point(n);
        tl.beta_l_t /= 10.0;
        let (t_fast, _) = tl.matmul_point(n);
        assert!(t_fast < t_slow);
    }

    #[test]
    fn p_is_product_of_levels() {
        assert_eq!(params().p(), 128);
    }
}
