//! # psse-core — energy and time models for communication-avoiding algorithms
//!
//! This crate implements the analytical heart of Demmel, Gearhart, Lipshitz
//! and Schwartz, *"Perfect Strong Scaling Using No Additional Energy"*
//! (IPDPS 2013):
//!
//! * the **machine model** — a homogeneous distributed machine whose links
//!   are priced per message (`αt`, `αe`), per word (`βt`, `βe`) and whose
//!   processors are priced per flop (`γt`, `γe`), per stored word-second
//!   (`δe`) and per second of leakage (`εe`) — see [`params::MachineParams`];
//! * the **time model** (paper Eq. 1): `T = γt·F + βt·W + αt·S` — see
//!   [`time`];
//! * the **energy model** (paper Eq. 2):
//!   `E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)` — see [`energy`];
//! * per-processor **computation/communication cost models** `(F, W, S)`
//!   for classical and Strassen matrix multiplication, LU, the direct
//!   n-body problem and the FFT (paper §IV) — see [`costs`];
//! * **communication lower bounds** and the limits of perfect strong
//!   scaling (paper §III and Fig. 3) — see [`bounds`];
//! * the **energy optimization suite** of paper §V (minimum-energy memory
//!   `M0`, energy/time/power-constrained optima, GFLOPS/W targets) — see
//!   [`optimize`];
//! * the **two-level machine model** of paper Fig. 2 with the matmul and
//!   n-body energy expressions (paper Eqs. 12 and 17) — see [`twolevel`];
//! * the §VI **case study**: the dual-socket Sandy Bridge ("Jaketown")
//!   parameters of Table I, the processor database of Table II, and the
//!   technology-scaling sweeps of Figs. 6–7 — see [`machines`] and
//!   [`tech_scaling`].
//!
//! The crate is pure analysis: it has no dependencies and performs no
//! simulation. The sibling crates `psse-sim` and `psse-algos` *execute*
//! the algorithms on a virtual-time distributed machine; their measured
//! counter profiles can be evaluated against this crate's models through
//! [`summary::ExecutionSummary`].
//!
//! ## Quick example
//!
//! ```
//! use psse_core::prelude::*;
//!
//! // The paper's Table I machine (one socket = one "processor").
//! let machine = jaketown();
//!
//! // Costs of 2.5D classical matrix multiplication at n = 8192 with one
//! // copy of the data spread over p = 64 processors (M = n²/p).
//! let n = 8192;
//! let p = 64;
//! let m = ClassicalMatMul.min_memory(n, p);
//! let costs = ClassicalMatMul.costs(n, p, m, &machine).unwrap();
//! let t = machine.time(&costs);
//! let e = machine.energy(p, &costs, m, t);
//! assert!(t > 0.0 && e > 0.0);
//!
//! // Inside the perfect strong scaling range, doubling p at fixed M
//! // halves T and leaves E unchanged.
//! let costs2 = ClassicalMatMul.costs(n, 2 * p, m, &machine).unwrap();
//! let t2 = machine.time(&costs2);
//! let e2 = machine.energy(2 * p, &costs2, m, t2);
//! assert!((t2 / t - 0.5).abs() < 1e-12);
//! assert!((e2 / e - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positive values;
// `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod bounds;
pub mod costs;
pub mod energy;
pub mod error;
pub mod hetero;
pub mod machines;
pub mod optimize;
pub mod paper;
pub mod params;
pub mod sequential;
pub mod summary;
pub mod tech_scaling;
pub mod time;
pub mod twolevel;

/// Scalar type used throughout the models (SI units; seconds, joules,
/// words, flops).
pub type Real = f64;

/// Strassen's exponent `ω0 = log2(7)`, the canonical "fast matrix
/// multiplication" exponent used throughout the paper's examples.
pub const STRASSEN_OMEGA: Real = 2.807354922057604; // log2(7)

/// One-stop imports for typical users of the crate.
pub mod prelude {
    pub use crate::bounds::{
        fig3_series, memory_independent_word_bound, parallel_word_lower_bound,
        sequential_word_lower_bound, ScalingRange,
    };
    pub use crate::costs::{
        Algorithm, AlgorithmCosts, Cholesky25d, ClassicalMatMul, DirectNBody, FftAllToAll, FftTree,
        HaloStencilModel, Lu25d, MatVec, SampleSortModel, StrassenMatMul,
    };
    pub use crate::error::CoreError;
    pub use crate::machines::{jaketown, table2, MachineSpec};
    pub use crate::optimize::nbody::NBodyOptimizer;
    pub use crate::optimize::resilience::{
        daly_optimal_interval, overhead_fraction, resilience_energy,
    };
    pub use crate::params::MachineParams;
    pub use crate::summary::{ExecutionSummary, Measured};
    pub use crate::twolevel::TwoLevelParams;
    pub use crate::{Real, STRASSEN_OMEGA};
}
