//! Energy/time/power optimization problems (paper §V).
//!
//! The paper poses five questions in its introduction:
//!
//! 1. What is the minimum energy required for a computation?
//! 2. Given a maximum runtime `Tmax`, what is the minimum energy?
//! 3. Given an energy budget `Emax`, what is the minimum runtime?
//! 4. Given a bound on (total or per-processor) power, minimize energy or
//!    runtime.
//! 5. Given a target GFLOPS/W, constrain the machine parameters.
//!
//! [`nbody`] answers all of them **in closed form** for the direct n-body
//! problem, following §V A–F line by line (with one sign fix relative to
//! the paper's Eq. 20, documented at
//! [`nbody::NBodyOptimizer::max_memory_given_proc_power`]).
//! [`numeric`] answers the same questions for *any* [`Algorithm`]
//! (classical and Strassen matmul in particular, cf. the technical report
//! version of the paper) by golden-section search over `M` and
//! logarithmic sweep over `p`; the n-body closed forms double as its test
//! oracle.

use crate::costs::Algorithm;
use crate::error::CoreError;
use crate::params::MachineParams;
use crate::Real;

/// A concrete choice of machine scale and memory, with its modelled
/// runtime and energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Number of processors (continuous relaxation; round as needed).
    pub p: Real,
    /// Memory used per processor, in words.
    pub mem: Real,
    /// Modelled runtime, seconds.
    pub time: Real,
    /// Modelled energy, joules.
    pub energy: Real,
}

/// Closed-form §V results for the direct n-body problem.
pub mod nbody {
    use super::*;
    use crate::energy::e_nbody;
    use crate::time::t_nbody;

    /// Optimizer for the data-replicating direct n-body algorithm on a
    /// fixed machine (all of paper §V A–F).
    #[derive(Debug, Clone)]
    pub struct NBodyOptimizer<'a> {
        params: &'a MachineParams,
        /// Flops per pairwise interaction (`f`).
        pub f: Real,
    }

    impl<'a> NBodyOptimizer<'a> {
        /// Create an optimizer for machine `params` and interaction cost
        /// `f` flops.
        pub fn new(params: &'a MachineParams, f: Real) -> Result<Self, CoreError> {
            params.validate()?;
            if !(f > 0.0) || !f.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "flops_per_interaction",
                    value: f,
                });
            }
            Ok(NBodyOptimizer { params, f })
        }

        /// Effective per-word time `βt + αt/m`.
        fn bt(&self) -> Real {
            self.params.beta_t_eff()
        }

        /// The coefficient `A = f·(γe + γt·εe) + δe·(βt + αt/m)` — the
        /// `M`- and `p`-independent part of `E/n²` (§V.C).
        pub fn coeff_a(&self) -> Real {
            self.f * self.params.gamma_e_leak() + self.params.delta_e * self.bt()
        }

        /// The coefficient `B = (βe + βt·εe) + (αe + αt·εe)/m` — the
        /// communication-energy coefficient of `n²/M` (§V.C).
        pub fn coeff_b(&self) -> Real {
            self.params.beta_e_leak()
        }

        /// The memory-energy coefficient `D = δe·γt·f` of `M·n²`.
        pub fn coeff_d(&self) -> Real {
            self.params.delta_e * self.params.gamma_t * self.f
        }

        /// §V.A: the energy-optimal memory per processor,
        /// `M0 = sqrt(B / D)` — independent of both `n` and `p`.
        ///
        /// Using more memory than `M0` wastes energy keeping DRAM
        /// powered; using less wastes energy on extra communication.
        pub fn m0(&self) -> Result<Real, CoreError> {
            let d = self.coeff_d();
            if d <= 0.0 {
                return Err(CoreError::Infeasible(
                    "M0 undefined: no memory energy cost (delta_e·gamma_t·f = 0); \
                     energy is minimized by unbounded memory"
                        .into(),
                ));
            }
            Ok((self.coeff_b() / d).sqrt())
        }

        /// §V.A, paper Eq. 18: the global minimum energy
        /// `E* = n²·(A + 2·sqrt(D·B))`, attained at `M = M0` for any `p`
        /// in [`Self::m0_processor_range`].
        pub fn e_star(&self, n: u64) -> Result<Real, CoreError> {
            let _ = self.m0()?; // validate D > 0
            let nf = n as Real;
            Ok(nf * nf * (self.coeff_a() + 2.0 * (self.coeff_d() * self.coeff_b()).sqrt()))
        }

        /// The processor counts at which `M = M0` is feasible:
        /// `n/M0 ≤ p ≤ n²/M0²` (the green "minimum energy runs" line of
        /// paper Fig. 4).
        pub fn m0_processor_range(&self, n: u64) -> Result<(Real, Real), CoreError> {
            let m0 = self.m0()?;
            let nf = n as Real;
            Ok((nf / m0, nf * nf / (m0 * m0)))
        }

        /// §V.A: minimum runtime uses as many processors as available and
        /// the 2D limit `M = n/√p`.
        pub fn min_time(&self, n: u64, p: u64) -> RunConfig {
            let nf = n as Real;
            let mem = nf / (p as Real).sqrt();
            RunConfig {
                p: p as Real,
                mem,
                time: t_nbody(self.params, n, p, mem, self.f),
                energy: e_nbody(self.params, n, mem, self.f),
            }
        }

        /// The runtime threshold of §V.B: the minimum energy `E*` is
        /// attainable within a deadline `Tmax` iff
        /// `Tmax ≥ γt·f·M0² + (βt + αt/m)·M0`
        /// (the runtime at `M = M0`, `p = n²/M0²`).
        pub fn tmax_threshold(&self) -> Result<Real, CoreError> {
            let m0 = self.m0()?;
            Ok(self.params.gamma_t * self.f * m0 * m0 + self.bt() * m0)
        }

        /// §V.B: minimize energy subject to `T ≤ Tmax`.
        ///
        /// If the deadline admits an `M0` run, returns the `E*` run at
        /// `p = n²/M0²`. Otherwise the deadline forces
        /// `p ≥ pmin(Tmax)` (paper's quadratic) and the cheapest compliant
        /// run is the 2D run at exactly `p = pmin`.
        pub fn min_energy_given_tmax(&self, n: u64, tmax: Real) -> Result<RunConfig, CoreError> {
            if !(tmax > 0.0) {
                return Err(CoreError::Infeasible(format!(
                    "Tmax = {tmax} must be positive"
                )));
            }
            let nf = n as Real;
            let m0 = self.m0()?;
            if tmax >= self.tmax_threshold()? {
                let p = nf * nf / (m0 * m0);
                return Ok(RunConfig {
                    p,
                    mem: m0,
                    time: self.tmax_threshold()?,
                    energy: self.e_star(n)?,
                });
            }
            // pmin from the paper's quadratic: at the 2D limit M = n/√p,
            // Tmax = γt·f·n²/p + bt·n/√p. With x = √p:
            // Tmax·x² − bt·n·x − γt·f·n² = 0.
            let bt = self.bt();
            let disc = bt * bt * nf * nf + 4.0 * tmax * self.params.gamma_t * self.f * nf * nf;
            let x = (bt * nf + disc.sqrt()) / (2.0 * tmax);
            let p = x * x;
            let mem = nf / x;
            Ok(RunConfig {
                p,
                mem,
                time: tmax,
                energy: e_nbody(self.params, n, mem, self.f),
            })
        }

        /// §V.C: minimize runtime subject to `E ≤ Emax`.
        ///
        /// The optimum is always a 2D run (`M = n/√p`): increasing `p`
        /// from any replicating run until the 2D boundary decreases `T`
        /// without changing `E`. The largest 2D-feasible `p` solves
        /// `B·n·x² − (Emax − A·n²)·x + D·n³ = 0` with `x = √p`
        /// (paper's quadratic, `A`/`B` as in §V.C).
        pub fn min_time_given_emax(&self, n: u64, emax: Real) -> Result<RunConfig, CoreError> {
            let e_star = self.e_star(n)?;
            if emax < e_star {
                return Err(CoreError::Infeasible(format!(
                    "energy budget {emax} J below minimum attainable {e_star} J"
                )));
            }
            let nf = n as Real;
            let a = self.coeff_a();
            let b = self.coeff_b();
            let d = self.coeff_d();
            let rhs = emax - a * nf * nf;
            // Discriminant of B·n·x² − rhs·x + D·n³ = 0.
            let disc = rhs * rhs - 4.0 * b * nf * d * nf * nf * nf;
            if disc < 0.0 {
                // Cannot happen when emax ≥ E*, guarded above; kept as a
                // defensive check against floating-point cancellation.
                return Err(CoreError::Infeasible(format!(
                    "energy budget {emax} J unattainable by any 2D run"
                )));
            }
            let x = (rhs + disc.sqrt()) / (2.0 * b * nf);
            let p = x * x;
            let mem = nf / x;
            Ok(RunConfig {
                p,
                mem,
                time: t_nbody(self.params, n, p.round().max(1.0) as u64, mem, self.f),
                energy: e_nbody(self.params, n, mem, self.f),
            })
        }

        /// §V.D: average power of a run,
        /// `P = p·((γe·f + βe/M + αe/(m·M)) / (γt·f + βt/M + αt/(m·M))
        ///        + δe·M + εe)`.
        pub fn average_power(&self, p: Real, mem: Real) -> Real {
            let mp = self.params;
            let num =
                mp.gamma_e * self.f + mp.beta_e / mem + mp.alpha_e / (mp.max_message_words * mem);
            let den =
                mp.gamma_t * self.f + mp.beta_t / mem + mp.alpha_t / (mp.max_message_words * mem);
            p * (num / den + mp.delta_e * mem + mp.epsilon_e)
        }

        /// §V.D, paper Eq. 19: the largest processor count allowed by a
        /// **total** power budget at memory `mem`.
        pub fn max_p_given_total_power(&self, p_total_max: Real, mem: Real) -> Real {
            let per_proc = self.average_power(1.0, mem);
            p_total_max / per_proc
        }

        /// §V.E, paper Eq. 20 (sign-corrected): the largest memory per
        /// processor allowed by a **per-processor** power budget `Pmax`.
        ///
        /// The feasibility condition `Pmax ≥ P(M)/p` reduces to the
        /// quadratic `δe·γt·f·M² − C·M + D' ≤ 0` with
        /// `C = γt·f·Pmax − γe·f − εe·γt·f − δe·(βt + αt/m)` and
        /// `D' = βe + αe/m − (Pmax − εe)·(βt + αt/m)`.
        ///
        /// Note: the paper prints `D = βe + αe/m − (βt+αt/m)·Pmax −
        /// εe·(βt+αt/m)` and a discriminant `C² − 4·γe·γt·f·D`; re-deriving
        /// the quadratic gives `+εe·(βt+αt/m)` in `D'` and a
        /// `4·δe·γt·f·D'` discriminant. We implement the re-derivation
        /// (property-tested: the returned `M` satisfies the original
        /// inequality with equality).
        pub fn max_memory_given_proc_power(&self, p_max: Real) -> Result<Real, CoreError> {
            let mp = self.params;
            let bt = self.bt();
            let be = mp.beta_e + mp.alpha_e / mp.max_message_words;
            let a2 = mp.delta_e * mp.gamma_t * self.f; // quadratic coefficient
            let c = mp.gamma_t * self.f * p_max
                - mp.gamma_e * self.f
                - mp.epsilon_e * mp.gamma_t * self.f
                - mp.delta_e * bt;
            let d = be - (p_max - mp.epsilon_e) * bt;
            if a2 <= 0.0 {
                // No memory energy cost: feasibility is monotone; any M
                // works iff C ≥ 0 in the linear relaxation.
                if c >= 0.0 {
                    return Ok(Real::INFINITY);
                }
                return Err(CoreError::Infeasible(format!(
                    "per-processor power budget {p_max} W below compute power floor"
                )));
            }
            let disc = c * c - 4.0 * a2 * d;
            if disc < 0.0 || (c < 0.0 && d > 0.0) {
                return Err(CoreError::Infeasible(format!(
                    "per-processor power budget {p_max} W infeasible at any memory size"
                )));
            }
            Ok((c + disc.sqrt()) / (2.0 * a2))
        }

        /// §V.F: the machine's best-case energy efficiency for this
        /// problem, `f·n²/E*` flops per joule — independent of `n`, `p`
        /// and `M`, hence a pure constraint on machine parameters.
        pub fn flops_per_joule_at_optimum(&self) -> Result<Real, CoreError> {
            Ok(self.f / (self.coeff_a() + 2.0 * (self.coeff_d() * self.coeff_b()).sqrt()))
        }

        /// §V.F in GFLOPS/W (the paper's unit).
        pub fn gflops_per_watt_at_optimum(&self) -> Result<Real, CoreError> {
            Ok(self.flops_per_joule_at_optimum()? / 1e9)
        }

        /// §V.F inverted: the factor by which **all** energy parameters
        /// (`γe`, `βe`, `αe`, `δe`, `εe`) must shrink (time parameters
        /// fixed) to reach `target` GFLOPS/W. All three terms of `E*/n²`
        /// scale linearly with the energy prices, so the answer is just
        /// the ratio of target to current efficiency.
        pub fn energy_improvement_for_target(
            &self,
            target_gflops_w: Real,
        ) -> Result<Real, CoreError> {
            let current = self.gflops_per_watt_at_optimum()?;
            if current <= 0.0 {
                return Err(CoreError::Infeasible(
                    "current efficiency is zero; target unreachable by scaling".into(),
                ));
            }
            Ok(target_gflops_w / current)
        }

        /// Paper §VII lists "minimizing average power for the
        /// data-replicating n-body algorithm" as an open problem; this
        /// solves it numerically. Since `P = p·(ratio(M) + δe·M + εe)`
        /// and the feasible region requires `p ≥ n/M`, the minimum-power
        /// run always sits on the 1D limit `p = n/M`; the remaining
        /// one-dimensional profile `P(M) = (n/M)·g(M)` is minimized by a
        /// log-grid scan refined with golden section. Returns the
        /// configuration and its average power.
        pub fn min_average_power(&self, n: u64) -> Result<(RunConfig, Real), CoreError> {
            let nf = n as Real;
            let profile = |m: Real| self.average_power(nf / m, m);
            // Coarse scan over M ∈ [4, n].
            let (lo, hi) = (4.0_f64, nf);
            if hi <= lo {
                return Err(CoreError::InvalidConfiguration(
                    "n too small for a power profile".into(),
                ));
            }
            let mut best_m = lo;
            let mut best_p = profile(lo);
            let steps = 400;
            for i in 0..=steps {
                let m = lo * (hi / lo).powf(i as Real / steps as Real);
                let pw = profile(m);
                if pw < best_p {
                    best_p = pw;
                    best_m = m;
                }
            }
            // Refine around the best bracket.
            let (m_ref, p_ref) = crate::optimize::numeric::golden_section_min(
                profile,
                (best_m / 4.0).max(lo),
                (best_m * 4.0).min(hi),
                1e-12,
            );
            let (m, pw) = if p_ref < best_p {
                (m_ref, p_ref)
            } else {
                (best_m, best_p)
            };
            let p = (nf / m).max(1.0);
            let cfg = RunConfig {
                p,
                mem: m,
                time: crate::time::t_nbody(self.params, n, p.round().max(1.0) as u64, m, self.f),
                energy: crate::energy::e_nbody(self.params, n, m, self.f),
            };
            Ok((cfg, pw))
        }

        /// Evaluate `(T, E)` at an explicit `(p, M)` (for region plots
        /// like paper Fig. 4).
        pub fn evaluate(&self, n: u64, p: u64, mem: Real) -> RunConfig {
            RunConfig {
                p: p as Real,
                mem,
                time: t_nbody(self.params, n, p, mem, self.f),
                energy: e_nbody(self.params, n, mem, self.f),
            }
        }
    }
}

/// Closed-form(ish) §V results for classical matrix multiplication — the
/// analysis the paper defers to its technical report ("The same
/// techniques give qualitatively similar, but more complicated, answers
/// in the case of classical matrix multiplication").
pub mod matmul {
    use super::*;
    use crate::energy::e_matmul_25d;
    use crate::time::t_matmul_25d;

    /// Optimizer for 2.5D classical matmul on a fixed machine.
    ///
    /// Writing `E(n, M) = n³·(A + B/√M + C·M + D·√M)` (Eq. 10) with
    /// `A = γe + γt·εe`, `B = (βe + βt·εe) + (αe + αt·εe)/m`,
    /// `C = δe·γt`, `D = δe·(βt + αt/m)`, the energy-optimal memory
    /// satisfies the **cubic** `2C·x³ + D·x² − B = 0` in `x = √M`
    /// (unique positive root), solved here by bisection + Newton.
    #[derive(Debug, Clone)]
    pub struct MatMulOptimizer<'a> {
        params: &'a MachineParams,
    }

    impl<'a> MatMulOptimizer<'a> {
        /// Create an optimizer for machine `params`.
        pub fn new(params: &'a MachineParams) -> Result<Self, CoreError> {
            params.validate()?;
            Ok(MatMulOptimizer { params })
        }

        /// Coefficient `A = γe + γt·εe` (flop energy per flop).
        pub fn coeff_a(&self) -> Real {
            self.params.gamma_e_leak()
        }

        /// Coefficient `B` of `n³/√M` (communication energy).
        pub fn coeff_b(&self) -> Real {
            self.params.beta_e_leak()
        }

        /// Coefficient `C = δe·γt` of `M·n³` (memory held during flops).
        pub fn coeff_c(&self) -> Real {
            self.params.delta_e * self.params.gamma_t
        }

        /// Coefficient `D = δe·(βt + αt/m)` of `√M·n³` (memory held
        /// during communication).
        pub fn coeff_d(&self) -> Real {
            self.params.delta_e * self.params.beta_t_eff()
        }

        /// §V.A for matmul: the energy-optimal memory per processor
        /// `M0` — independent of `n` and `p`, like the n-body case.
        pub fn m0(&self) -> Result<Real, CoreError> {
            let b = self.coeff_b();
            let c = self.coeff_c();
            let d = self.coeff_d();
            if c <= 0.0 && d <= 0.0 {
                return Err(CoreError::Infeasible(
                    "M0 undefined: no memory energy cost (delta_e = 0); \
                     energy is minimized by unbounded memory"
                        .into(),
                ));
            }
            if b <= 0.0 {
                // No communication energy: smallest memory is best, and
                // there is no interior optimum.
                return Err(CoreError::Infeasible(
                    "M0 undefined: no communication energy cost; energy is \
                     minimized by minimal memory"
                        .into(),
                ));
            }
            // f(x) = 2C·x³ + D·x² − B, increasing for x > 0 with
            // f(0) = −B < 0: a unique positive root. Bracket then Newton.
            let f = |x: Real| 2.0 * c * x * x * x + d * x * x - b;
            let mut hi = 1.0;
            while f(hi) < 0.0 {
                hi *= 2.0;
                if hi > 1e300 {
                    return Err(CoreError::Infeasible("M0 overflow".into()));
                }
            }
            let mut lo = 0.0;
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if f(mid) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let x = 0.5 * (lo + hi);
            Ok(x * x)
        }

        /// The minimum energy `E*(n) = E(n, M0)`.
        pub fn e_star(&self, n: u64) -> Result<Real, CoreError> {
            Ok(e_matmul_25d(self.params, n, self.m0()?))
        }

        /// The processor counts at which `M0` is feasible,
        /// `n²/M0 ≤ p ≤ n³/M0^(3/2)` — exactly `M0`'s perfect strong
        /// scaling range.
        pub fn m0_processor_range(&self, n: u64) -> Result<(Real, Real), CoreError> {
            let m0 = self.m0()?;
            let nf = n as Real;
            Ok((nf * nf / m0, nf * nf * nf / m0.powf(1.5)))
        }

        /// Evaluate `(T, E)` at an explicit `(p, M)`.
        pub fn evaluate(&self, n: u64, p: u64, mem: Real) -> RunConfig {
            RunConfig {
                p: p as Real,
                mem,
                time: t_matmul_25d(self.params, n, p, mem),
                energy: e_matmul_25d(self.params, n, mem),
            }
        }

        /// §V.B for matmul: the fastest runtime at which `E*` is still
        /// attainable (the run at `M = M0`, `p = n³/M0^(3/2)`).
        pub fn tmax_threshold(&self, n: u64) -> Result<Real, CoreError> {
            let m0 = self.m0()?;
            let nf = n as Real;
            let p = nf * nf * nf / m0.powf(1.5);
            // T = (γt + βt_eff/√M0)·n³/p with continuous p.
            Ok((self.params.gamma_t + self.params.beta_t_eff() / m0.sqrt()) * nf * nf * nf / p)
        }
    }
}

/// §V results for fast (Strassen-like) matrix multiplication. The paper
/// notes "analytic solutions are harder to obtain because ω0 appears in
/// the powers of M"; the energy (Eq. 13) is still unimodal in `M`
/// (decreasing communication term plus increasing memory terms), so the
/// optimum is found by golden section with certified bracketing.
pub mod strassen {
    use super::*;
    use crate::energy::e_matmul_fast_lm;
    use crate::time::t_matmul_fast;

    /// Optimizer for CAPS fast matmul with exponent `omega` on a fixed
    /// machine.
    #[derive(Debug, Clone)]
    pub struct FastMatMulOptimizer<'a> {
        params: &'a MachineParams,
        /// The exponent `ω0 ∈ (2, 3]`.
        pub omega: Real,
    }

    impl<'a> FastMatMulOptimizer<'a> {
        /// Create an optimizer; `omega` must lie in `(2, 3]`.
        pub fn new(params: &'a MachineParams, omega: Real) -> Result<Self, CoreError> {
            params.validate()?;
            if !(omega > 2.0 && omega <= 3.0) {
                return Err(CoreError::InvalidParameter {
                    name: "omega",
                    value: omega,
                });
            }
            Ok(FastMatMulOptimizer { params, omega })
        }

        /// The energy-optimal memory per processor (independent of `n`
        /// and `p`): the unique minimum of
        /// `B·M^(1−ω/2) + C·M + D·M^(2−ω/2)` (Eq. 13's M-dependent part,
        /// divided by `n^ω`).
        pub fn m0(&self) -> Result<Real, CoreError> {
            let b = self.params.beta_e_leak();
            let c = self.params.delta_e * self.params.gamma_t;
            let d = self.params.delta_e * self.params.beta_t_eff();
            if c <= 0.0 && d <= 0.0 {
                return Err(CoreError::Infeasible(
                    "M0 undefined: no memory energy cost".into(),
                ));
            }
            if b <= 0.0 {
                return Err(CoreError::Infeasible(
                    "M0 undefined: no communication energy cost".into(),
                ));
            }
            let omega = self.omega;
            let per_unit =
                |m: Real| b * m.powf(1.0 - omega / 2.0) + c * m + d * m.powf(2.0 - omega / 2.0);
            // Bracket: the decreasing term dominates at small M, the
            // increasing terms at large M.
            let (mut lo, mut hi) = (1e-6, 1e6);
            while per_unit(lo * 2.0) > per_unit(lo) && lo > 1e-300 {
                lo /= 1e3;
            }
            while per_unit(hi / 2.0) > per_unit(hi) && hi < 1e300 {
                hi *= 1e3;
            }
            let (m, _) = crate::optimize::numeric::golden_section_min(per_unit, lo, hi, 1e-13);
            Ok(m)
        }

        /// The minimum energy `E*(n) = E(n, M0)` (Eq. 13 at the optimum).
        pub fn e_star(&self, n: u64) -> Result<Real, CoreError> {
            Ok(e_matmul_fast_lm(self.params, n, self.m0()?, self.omega))
        }

        /// Processor counts where `M0` is feasible:
        /// `n²/M0 ≤ p ≤ n^ω/M0^(ω/2)` — `M0`'s perfect scaling range.
        pub fn m0_processor_range(&self, n: u64) -> Result<(Real, Real), CoreError> {
            let m0 = self.m0()?;
            let nf = n as Real;
            Ok((
                nf * nf / m0,
                nf.powf(self.omega) / m0.powf(self.omega / 2.0),
            ))
        }

        /// Evaluate `(T, E)` at an explicit `(p, M)`.
        pub fn evaluate(&self, n: u64, p: u64, mem: Real) -> RunConfig {
            RunConfig {
                p: p as Real,
                mem,
                time: t_matmul_fast(self.params, n, p, mem, self.omega),
                energy: e_matmul_fast_lm(self.params, n, mem, self.omega),
            }
        }
    }
}

/// Numeric optimizers valid for any [`Algorithm`] (used for classical and
/// Strassen matmul, where closed forms are unwieldy because `ω0` appears
/// in the exponents of `M`).
pub mod numeric {
    use super::*;

    /// Golden-section minimization of a unimodal function on `[lo, hi]`.
    ///
    /// Returns `(argmin, min)`. Exposed because it is broadly useful for
    /// the energy curves of this crate, all of which are unimodal in `M`
    /// (sum of a decreasing communication term and increasing memory
    /// terms).
    pub fn golden_section_min(
        mut f: impl FnMut(Real) -> Real,
        mut lo: Real,
        mut hi: Real,
        rel_tol: Real,
    ) -> (Real, Real) {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        const INV_PHI: Real = 0.618_033_988_749_894_8;
        let mut x1 = hi - (hi - lo) * INV_PHI;
        let mut x2 = lo + (hi - lo) * INV_PHI;
        let mut f1 = f(x1);
        let mut f2 = f(x2);
        while (hi - lo) > rel_tol * hi.abs().max(1.0) {
            if f1 <= f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - (hi - lo) * INV_PHI;
                f1 = f(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + (hi - lo) * INV_PHI;
                f2 = f(x2);
            }
        }
        let xm = 0.5 * (lo + hi);
        let fm = f(xm);
        if f1 < fm && f1 < f2 {
            (x1, f1)
        } else if f2 < fm {
            (x2, f2)
        } else {
            (xm, fm)
        }
    }

    /// Question 1 (minimum energy): find the memory `M ∈ [min_memory,
    /// max_useful_memory]` minimizing energy for `alg` at `(n, p)`.
    pub fn argmin_energy_memory(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p: u64,
    ) -> Result<RunConfig, CoreError> {
        let (lo, hi) = alg.memory_range(n, p)?;
        let eval = |m: Real| -> Real {
            match alg.costs(n, p, m, params) {
                Ok(c) => {
                    let t = params.time(&c);
                    params.energy(p, &c, m, t)
                }
                Err(_) => Real::INFINITY,
            }
        };
        let (m, e) = if hi / lo < 1.0 + 1e-12 {
            (lo, eval(lo))
        } else {
            golden_section_min(eval, lo, hi, 1e-12)
        };
        let c = alg.costs(n, p, m, params)?;
        Ok(RunConfig {
            p: p as Real,
            mem: m,
            time: params.time(&c),
            energy: e,
        })
    }

    /// Question 2 (min energy under a deadline): sweep `p` over
    /// `p_candidates` and, for each, minimize energy over `M` subject to
    /// `T(p, M) ≤ tmax`; return the best compliant configuration.
    pub fn min_energy_given_tmax(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p_candidates: &[u64],
        tmax: Real,
    ) -> Result<RunConfig, CoreError> {
        let mut best: Option<RunConfig> = None;
        for &p in p_candidates {
            let Ok((lo, hi)) = alg.memory_range(n, p) else {
                continue;
            };
            let eval = |m: Real| -> Real {
                match alg.costs(n, p, m, params) {
                    Ok(c) => {
                        let t = params.time(&c);
                        if t > tmax {
                            Real::INFINITY
                        } else {
                            params.energy(p, &c, m, t)
                        }
                    }
                    Err(_) => Real::INFINITY,
                }
            };
            // Energy is unimodal in M, but the deadline clips the domain;
            // golden section still finds the clipped minimum because the
            // infeasible region (small M means *less* time for the
            // replicating algorithms, large M less communication — both
            // monotone) stays on one side.
            let (m, e) = golden_section_min(eval, lo, hi.max(lo * (1.0 + 1e-9)), 1e-12);
            if !e.is_finite() {
                continue;
            }
            let c = alg.costs(n, p, m, params)?;
            let cfg = RunConfig {
                p: p as Real,
                mem: m,
                time: params.time(&c),
                energy: e,
            };
            if best.as_ref().is_none_or(|b| cfg.energy < b.energy) {
                best = Some(cfg);
            }
        }
        best.ok_or_else(|| {
            CoreError::Infeasible(format!("no candidate p meets the deadline Tmax = {tmax} s"))
        })
    }

    /// Question 3 (min time under an energy budget): sweep `p`, minimize
    /// time over `M` subject to `E ≤ emax`.
    pub fn min_time_given_emax(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p_candidates: &[u64],
        emax: Real,
    ) -> Result<RunConfig, CoreError> {
        let mut best: Option<RunConfig> = None;
        for &p in p_candidates {
            let Ok((lo, hi)) = alg.memory_range(n, p) else {
                continue;
            };
            let eval = |m: Real| -> Real {
                match alg.costs(n, p, m, params) {
                    Ok(c) => {
                        let t = params.time(&c);
                        if params.energy(p, &c, m, t) > emax {
                            Real::INFINITY
                        } else {
                            t
                        }
                    }
                    Err(_) => Real::INFINITY,
                }
            };
            let (m, t) = golden_section_min(eval, lo, hi.max(lo * (1.0 + 1e-9)), 1e-12);
            if !t.is_finite() {
                continue;
            }
            let c = alg.costs(n, p, m, params)?;
            let cfg = RunConfig {
                p: p as Real,
                mem: m,
                time: t,
                energy: params.energy(p, &c, m, params.time(&c)),
            };
            if best.as_ref().is_none_or(|b| cfg.time < b.time) {
                best = Some(cfg);
            }
        }
        best.ok_or_else(|| {
            CoreError::Infeasible(format!("no candidate p fits the budget Emax = {emax} J"))
        })
    }

    /// Average power `E/T` of `alg` at an explicit `(p, M)`.
    pub fn average_power(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p: u64,
        m: Real,
    ) -> Result<Real, CoreError> {
        let c = alg.costs(n, p, m, params)?;
        let t = params.time(&c);
        Ok(params.energy(p, &c, m, t) / t)
    }

    /// Question 4a (min runtime under a **total** power cap): sweep `p`,
    /// minimize time over `M` subject to `E/T ≤ p_total_max`.
    pub fn min_time_given_total_power(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p_candidates: &[u64],
        p_total_max: Real,
    ) -> Result<RunConfig, CoreError> {
        let mut best: Option<RunConfig> = None;
        for &p in p_candidates {
            let Ok((lo, hi)) = alg.memory_range(n, p) else {
                continue;
            };
            let eval = |m: Real| -> Real {
                match alg.costs(n, p, m, params) {
                    Ok(c) => {
                        let t = params.time(&c);
                        if params.energy(p, &c, m, t) / t > p_total_max {
                            Real::INFINITY
                        } else {
                            t
                        }
                    }
                    Err(_) => Real::INFINITY,
                }
            };
            let (m, t) = golden_section_min(eval, lo, hi.max(lo * (1.0 + 1e-9)), 1e-12);
            if !t.is_finite() {
                continue;
            }
            let c = alg.costs(n, p, m, params)?;
            let cfg = RunConfig {
                p: p as Real,
                mem: m,
                time: t,
                energy: params.energy(p, &c, m, params.time(&c)),
            };
            if best.as_ref().is_none_or(|b| cfg.time < b.time) {
                best = Some(cfg);
            }
        }
        best.ok_or_else(|| {
            CoreError::Infeasible(format!(
                "no candidate p runs within the total power budget {p_total_max} W"
            ))
        })
    }

    /// Question 4b (min energy under a **per-processor** power cap):
    /// sweep `p`, minimize energy over `M` subject to `E/(T·p) ≤ cap`.
    pub fn min_energy_given_proc_power(
        alg: &dyn Algorithm,
        params: &MachineParams,
        n: u64,
        p_candidates: &[u64],
        p_proc_max: Real,
    ) -> Result<RunConfig, CoreError> {
        let mut best: Option<RunConfig> = None;
        for &p in p_candidates {
            let Ok((lo, hi)) = alg.memory_range(n, p) else {
                continue;
            };
            let eval = |m: Real| -> Real {
                match alg.costs(n, p, m, params) {
                    Ok(c) => {
                        let t = params.time(&c);
                        let e = params.energy(p, &c, m, t);
                        if e / (t * p as Real) > p_proc_max {
                            Real::INFINITY
                        } else {
                            e
                        }
                    }
                    Err(_) => Real::INFINITY,
                }
            };
            let (m, e) = golden_section_min(eval, lo, hi.max(lo * (1.0 + 1e-9)), 1e-12);
            if !e.is_finite() {
                continue;
            }
            let c = alg.costs(n, p, m, params)?;
            let cfg = RunConfig {
                p: p as Real,
                mem: m,
                time: params.time(&c),
                energy: e,
            };
            if best.as_ref().is_none_or(|b| cfg.energy < b.energy) {
                best = Some(cfg);
            }
        }
        best.ok_or_else(|| {
            CoreError::Infeasible(format!(
                "no candidate p runs within the per-processor power budget {p_proc_max} W"
            ))
        })
    }

    /// Logarithmically spaced processor-count candidates in `[lo, hi]`,
    /// for use with the sweeps above.
    pub fn log_spaced_p(lo: u64, hi: u64, count: usize) -> Vec<u64> {
        assert!(lo >= 1 && hi >= lo && count >= 2);
        let (l0, l1) = ((lo as Real).ln(), (hi as Real).ln());
        let mut v: Vec<u64> = (0..count)
            .map(|i| {
                let t = i as Real / (count - 1) as Real;
                (l0 + t * (l1 - l0)).exp().round() as u64
            })
            .collect();
        v.dedup();
        v
    }
}

/// Resilience-overhead models: checkpoint-interval optimization (Daly)
/// and Eq. 2 pricing of fault-tolerance traffic.
///
/// These sit beside the §V optimizers because they answer the same kind
/// of question — pick a free parameter (here the checkpoint interval
/// `τ` instead of the memory `M`) to minimize a cost — and because the
/// paper's energy model prices resilience work with no new machinery:
/// retransmitted and checkpointed words advance `W` and `S`, and the
/// time lost to rework/restart extends `T`, each multiplying its Eq. 2
/// coefficient.
pub mod resilience {
    use super::*;

    /// Daly's higher-order optimal checkpoint interval (the computation
    /// time between checkpoints, excluding the write itself):
    ///
    /// `τ* ≈ √(2δM)·[1 + (1/3)·√(δ/2M) + (1/9)·(δ/2M)] − δ`
    ///
    /// where `δ` is the checkpoint write time and `M` the mean time
    /// between failures. For `δ ≥ 2M` (checkpoints cost more than the
    /// expected failure-free stretch) the model degenerates and the
    /// first-order guard `τ = M` is returned.
    pub fn daly_optimal_interval(delta: Real, mtbf: Real) -> Result<Real, CoreError> {
        if !(delta >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                value: delta,
            });
        }
        if !(mtbf > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "mtbf",
                value: mtbf,
            });
        }
        if delta >= 2.0 * mtbf {
            return Ok(mtbf);
        }
        let r = delta / (2.0 * mtbf);
        Ok((2.0 * delta * mtbf).sqrt() * (1.0 + r.sqrt() / 3.0 + r / 9.0) - delta)
    }

    /// First-order expected overhead fraction of checkpoint/restart with
    /// write time `delta`, interval `tau` and mean time between failures
    /// `mtbf`: checkpoint cost `δ/τ` plus expected rework `τ/(2M)` per
    /// unit of useful work. Valid for `τ ≪ M`; minimized near
    /// [`daly_optimal_interval`].
    pub fn overhead_fraction(delta: Real, tau: Real, mtbf: Real) -> Result<Real, CoreError> {
        if !(tau > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "tau",
                value: tau,
            });
        }
        if !(mtbf > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "mtbf",
                value: mtbf,
            });
        }
        if !(delta >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                value: delta,
            });
        }
        Ok(delta / tau + tau / (2.0 * mtbf))
    }

    /// Price resilience overhead with Eq. 2: `extra_words`/`extra_msgs`
    /// are the per-critical-path retransmitted + checkpointed traffic
    /// (advancing `W` and `S`), and `extra_time` is the makespan
    /// extension from backoff, rework and restart, during which all `p`
    /// ranks keep paying memory (`δe·M`) and leakage (`εe`) power.
    pub fn resilience_energy(
        params: &MachineParams,
        extra_words: Real,
        extra_msgs: Real,
        extra_time: Real,
        p: Real,
        mem: Real,
    ) -> Real {
        params.beta_e * extra_words
            + params.alpha_e * extra_msgs
            + p * (params.delta_e * mem + params.epsilon_e) * extra_time
    }
}

#[cfg(test)]
mod tests {
    use super::nbody::NBodyOptimizer;
    use super::numeric::*;
    use super::*;
    use crate::costs::{Algorithm, ClassicalMatMul, DirectNBody};
    use crate::energy::e_nbody;
    use crate::time::t_nbody;

    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(2.5e-12)
            .beta_t(1.6e-10)
            .alpha_t(6e-8)
            .gamma_e(3.8e-10)
            .beta_e(3.8e-10)
            .alpha_e(1e-8)
            .delta_e(5.8e-9)
            .epsilon_e(0.1)
            .max_message_words(4096.0)
            .build()
            .unwrap()
    }

    const F: Real = 20.0;

    #[test]
    fn m0_is_the_argmin_of_energy() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let m0 = opt.m0().unwrap();
        let n = 1u64 << 22;
        let e0 = e_nbody(&mp, n, m0, F);
        // Any perturbation of M increases energy.
        for factor in [0.5, 0.9, 1.1, 2.0] {
            assert!(e_nbody(&mp, n, m0 * factor, F) > e0, "factor={factor}");
        }
        // And the closed form matches a golden-section search. The
        // energy curve is extremely flat near M0 (the M-dependent terms
        // are a small fraction of E on this machine), which limits the
        // numeric argmin to ~sqrt(machine-epsilon) relative precision.
        let (m_num, e_num) =
            golden_section_min(|m| e_nbody(&mp, n, m, F), m0 / 1e4, m0 * 1e4, 1e-12);
        assert!((m_num - m0).abs() / m0 < 1e-2);
        assert!((e_num - e0).abs() / e0 < 1e-12);
    }

    #[test]
    fn e_star_matches_energy_at_m0() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let e_star = opt.e_star(n).unwrap();
        let direct = e_nbody(&mp, n, opt.m0().unwrap(), F);
        assert!((e_star - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn m0_processor_range_brackets_feasibility() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let (p_lo, p_hi) = opt.m0_processor_range(n).unwrap();
        let m0 = opt.m0().unwrap();
        let nb = DirectNBody {
            flops_per_interaction: F,
        };
        // M0 is within [min_memory, max_useful] exactly for p in range.
        let p_mid = ((p_lo * p_hi).sqrt()) as u64;
        assert!(nb.min_memory(n, p_mid) <= m0 && m0 <= nb.max_useful_memory(n, p_mid));
        let p_small = (p_lo * 0.5).max(1.0) as u64;
        assert!(m0 < nb.min_memory(n, p_small) || p_small as Real >= p_lo);
    }

    #[test]
    fn tmax_threshold_is_runtime_of_the_estar_run() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let m0 = opt.m0().unwrap();
        let nf = n as Real;
        let p = (nf * nf / (m0 * m0)).round() as u64;
        let direct = t_nbody(&mp, n, p, m0, F);
        let threshold = opt.tmax_threshold().unwrap();
        // p is rounded to an integer, so allow O(1/p) relative slack.
        assert!((direct - threshold).abs() / threshold < 1e-3);
    }

    #[test]
    fn loose_deadline_returns_global_optimum() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let cfg = opt
            .min_energy_given_tmax(n, opt.tmax_threshold().unwrap() * 10.0)
            .unwrap();
        assert!((cfg.energy - opt.e_star(n).unwrap()).abs() / cfg.energy < 1e-12);
        assert!((cfg.mem - opt.m0().unwrap()).abs() / cfg.mem < 1e-12);
    }

    #[test]
    fn tight_deadline_forces_more_processors_and_energy() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let threshold = opt.tmax_threshold().unwrap();
        let cfg = opt.min_energy_given_tmax(n, threshold / 4.0).unwrap();
        // Deadline met exactly by a 2D run with M = n/√p.
        let nf = n as Real;
        assert!((cfg.mem - nf / cfg.p.sqrt()).abs() / cfg.mem < 1e-9);
        assert!(cfg.energy > opt.e_star(n).unwrap());
        // And the reported runtime is the deadline.
        let t = t_nbody(&mp, n, cfg.p.round() as u64, cfg.mem, F);
        assert!((t - threshold / 4.0).abs() / t < 1e-3);
    }

    #[test]
    fn impossible_deadline_is_rejected() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        assert!(matches!(
            opt.min_energy_given_tmax(1 << 22, -1.0),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn energy_budget_below_estar_is_rejected() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let e_star = opt.e_star(n).unwrap();
        assert!(matches!(
            opt.min_time_given_emax(n, e_star * 0.99),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn energy_budget_binds_with_equality_on_2d_boundary() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let emax = opt.e_star(n).unwrap() * 1.5;
        let cfg = opt.min_time_given_emax(n, emax).unwrap();
        // 2D run: M = n/√p.
        let nf = n as Real;
        assert!((cfg.mem - nf / cfg.p.sqrt()).abs() / cfg.mem < 1e-9);
        // Budget used in full (quadratic solved with equality).
        assert!((cfg.energy - emax).abs() / emax < 1e-9);
        // Spending more budget must not slow us down.
        let cfg2 = opt.min_time_given_emax(n, emax * 2.0).unwrap();
        assert!(cfg2.time <= cfg.time);
        assert!(cfg2.p > cfg.p);
    }

    #[test]
    fn average_power_is_e_over_t() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let p = 256u64;
        let nb = DirectNBody {
            flops_per_interaction: F,
        };
        let mem = nb.max_useful_memory(n, p);
        let e = e_nbody(&mp, n, mem, F);
        let t = t_nbody(&mp, n, p, mem, F);
        let pw = opt.average_power(p as Real, mem);
        assert!((pw - e / t).abs() / pw < 1e-12);
    }

    #[test]
    fn total_power_bound_caps_p_linearly() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let mem = 1e6;
        let p1 = opt.max_p_given_total_power(1000.0, mem);
        let p2 = opt.max_p_given_total_power(2000.0, mem);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
        // The bound is consistent: running at the cap uses ≤ the budget.
        assert!(opt.average_power(p1, mem) <= 1000.0 * (1.0 + 1e-9));
    }

    #[test]
    fn proc_power_bound_satisfied_with_equality_at_max_memory() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        // Pick a budget comfortably above the M→small floor.
        let floor = opt.average_power(1.0, 10.0);
        let p_max = floor * 2.0;
        let m_cap = opt.max_memory_given_proc_power(p_max).unwrap();
        assert!(m_cap.is_finite() && m_cap > 0.0);
        // Equality at the cap, feasible below, infeasible above.
        let at = opt.average_power(1.0, m_cap);
        assert!((at - p_max).abs() / p_max < 1e-9, "at={at}, p_max={p_max}");
        assert!(opt.average_power(1.0, m_cap * 0.5) < p_max);
        assert!(opt.average_power(1.0, m_cap * 2.0) > p_max);
    }

    #[test]
    fn infeasible_proc_power_budget_is_rejected() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        // Below the asymptotic compute-power floor γe/γt·(…): impossible.
        assert!(matches!(
            opt.max_memory_given_proc_power(1e-12),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn gflops_per_watt_is_scale_invariant() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let g = opt.gflops_per_watt_at_optimum().unwrap();
        // f·n²/E*(n) should equal it for any n.
        for n in [1u64 << 16, 1 << 20, 1 << 24] {
            let nf = n as Real;
            let ratio = F * nf * nf / opt.e_star(n).unwrap() / 1e9;
            assert!((ratio - g).abs() / g < 1e-12);
        }
    }

    #[test]
    fn improvement_factor_scales_energy_params() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let current = opt.gflops_per_watt_at_optimum().unwrap();
        let target = current * 8.0;
        let k = opt.energy_improvement_for_target(target).unwrap();
        assert!((k - 8.0).abs() < 1e-12);
        // Verify: dividing all energy prices by k reaches the target.
        let scaled = MachineParams {
            gamma_e: mp.gamma_e / k,
            beta_e: mp.beta_e / k,
            alpha_e: mp.alpha_e / k,
            delta_e: mp.delta_e / k,
            epsilon_e: mp.epsilon_e / k,
            ..mp.clone()
        };
        let opt2 = NBodyOptimizer::new(&scaled, F).unwrap();
        let achieved = opt2.gflops_per_watt_at_optimum().unwrap();
        assert!((achieved - target).abs() / target < 1e-12);
    }

    #[test]
    fn zero_delta_e_makes_m0_undefined() {
        let mp = MachineParams::builder()
            .gamma_t(1e-12)
            .beta_e(1e-10)
            .build()
            .unwrap();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        assert!(matches!(opt.m0(), Err(CoreError::Infeasible(_))));
        assert!(matches!(opt.e_star(1 << 20), Err(CoreError::Infeasible(_))));
    }

    // ---- matmul module ----

    #[test]
    fn matmul_m0_solves_the_cubic() {
        use super::matmul::MatMulOptimizer;
        let mp = params();
        let opt = MatMulOptimizer::new(&mp).unwrap();
        let m0 = opt.m0().unwrap();
        // Root check: 2C·x³ + D·x² = B at x = √M0.
        let x = m0.sqrt();
        let lhs = 2.0 * opt.coeff_c() * x * x * x + opt.coeff_d() * x * x;
        assert!((lhs / opt.coeff_b() - 1.0).abs() < 1e-9, "cubic residual");
    }

    #[test]
    fn matmul_m0_is_the_argmin_of_eq10() {
        use super::matmul::MatMulOptimizer;
        use crate::energy::e_matmul_25d;
        let mp = params();
        let opt = MatMulOptimizer::new(&mp).unwrap();
        let n = 8192u64;
        let m0 = opt.m0().unwrap();
        let e0 = opt.e_star(n).unwrap();
        for f in [0.2, 0.5, 2.0, 5.0] {
            assert!(e_matmul_25d(&mp, n, m0 * f) > e0, "f={f}");
        }
        // And the numeric search agrees on the energy.
        let (_, e_num) = golden_section_min(|m| e_matmul_25d(&mp, n, m), m0 / 1e4, m0 * 1e4, 1e-12);
        assert!((e_num / e0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_m0_range_and_threshold_are_consistent() {
        use super::matmul::MatMulOptimizer;
        use crate::time::t_matmul_25d;
        let mp = params();
        let opt = MatMulOptimizer::new(&mp).unwrap();
        let n = 1u64 << 14;
        let (p_lo, p_hi) = opt.m0_processor_range(n).unwrap();
        assert!(p_lo < p_hi);
        let m0 = opt.m0().unwrap();
        // M0 lies inside the memory range exactly at p in [p_lo, p_hi].
        let p_mid = ((p_lo * p_hi).sqrt()).round() as u64;
        assert!(ClassicalMatMul.min_memory(n, p_mid) <= m0 * (1.0 + 1e-9));
        assert!(m0 <= ClassicalMatMul.max_useful_memory(n, p_mid) * (1.0 + 1e-9));
        // Threshold equals T at (M0, p_hi), continuous-p.
        // p is rounded to an integer, so allow O(1/p_hi) relative slack.
        let direct = t_matmul_25d(&mp, n, p_hi.round() as u64, m0);
        let thr = opt.tmax_threshold(n).unwrap();
        let slack = 2.0 / p_hi + 1e-6;
        assert!((direct / thr - 1.0).abs() < slack, "{direct} vs {thr}");
    }

    #[test]
    fn matmul_m0_degenerate_machines_rejected() {
        use super::matmul::MatMulOptimizer;
        let no_mem = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_e(1e-8)
            .build()
            .unwrap();
        assert!(matches!(
            MatMulOptimizer::new(&no_mem).unwrap().m0(),
            Err(CoreError::Infeasible(_))
        ));
        let no_comm = MachineParams::builder()
            .gamma_t(1e-9)
            .delta_e(1e-8)
            .build()
            .unwrap();
        assert!(matches!(
            MatMulOptimizer::new(&no_comm).unwrap().m0(),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn nbody_min_average_power_sits_on_the_1d_limit() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 20;
        let (cfg, pw) = opt.min_average_power(n).unwrap();
        // On the 1D limit p = n/M.
        assert!((cfg.p * cfg.mem / n as Real - 1.0).abs() < 1e-6);
        // Power is indeed P = E/T there.
        let direct = opt.average_power(cfg.p, cfg.mem);
        assert!((pw / direct - 1.0).abs() < 1e-9);
        // No sampled feasible point beats it.
        for i in 0..50 {
            let m = 4.0 * ((n as Real) / 4.0).powf(i as Real / 49.0);
            let p_min_feasible = n as Real / m;
            assert!(
                opt.average_power(p_min_feasible, m) >= pw * (1.0 - 1e-6),
                "beaten at M = {m}"
            );
        }
    }

    // ---- strassen module ----

    #[test]
    fn strassen_m0_is_the_argmin_of_eq13() {
        use super::strassen::FastMatMulOptimizer;
        use crate::energy::e_matmul_fast_lm;
        let mp = params();
        for omega in [2.3, crate::STRASSEN_OMEGA, 3.0] {
            let opt = FastMatMulOptimizer::new(&mp, omega).unwrap();
            let m0 = opt.m0().unwrap();
            let n = 1u64 << 13;
            let e0 = opt.e_star(n).unwrap();
            for f in [0.2, 0.5, 2.0, 5.0] {
                assert!(
                    e_matmul_fast_lm(&mp, n, m0 * f, omega) >= e0 * (1.0 - 1e-9),
                    "omega={omega}, f={f}"
                );
            }
        }
    }

    #[test]
    fn strassen_m0_at_omega_3_matches_classical() {
        use super::matmul::MatMulOptimizer;
        use super::strassen::FastMatMulOptimizer;
        let mp = params();
        let fast = FastMatMulOptimizer::new(&mp, 3.0).unwrap();
        let classical = MatMulOptimizer::new(&mp).unwrap();
        let a = fast.m0().unwrap();
        let b = classical.m0().unwrap();
        assert!((a / b - 1.0).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn strassen_optimizer_rejects_bad_omega() {
        use super::strassen::FastMatMulOptimizer;
        let mp = params();
        assert!(FastMatMulOptimizer::new(&mp, 2.0).is_err());
        assert!(FastMatMulOptimizer::new(&mp, 3.5).is_err());
    }

    #[test]
    fn strassen_m0_range_is_consistent() {
        use super::strassen::FastMatMulOptimizer;
        use crate::costs::StrassenMatMul;
        let mp = params();
        let opt = FastMatMulOptimizer::new(&mp, crate::STRASSEN_OMEGA).unwrap();
        let n = 1u64 << 14;
        let (p_lo, p_hi) = opt.m0_processor_range(n).unwrap();
        assert!(p_lo < p_hi);
        let m0 = opt.m0().unwrap();
        let alg = StrassenMatMul::default();
        let p_mid = ((p_lo * p_hi).sqrt()).round() as u64;
        assert!(alg.min_memory(n, p_mid) <= m0 * (1.0 + 1e-9));
        assert!(m0 <= alg.max_useful_memory(n, p_mid) * (1.0 + 1e-9));
    }

    // ---- numeric module ----

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, fx) = golden_section_min(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.1, 10.0, 1e-12);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn numeric_argmin_matches_nbody_closed_form() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let m0 = opt.m0().unwrap();
        // Pick p so that M0 is interior to the memory range.
        let (p_lo, p_hi) = opt.m0_processor_range(n).unwrap();
        let p = ((p_lo * p_hi).sqrt()).round() as u64;
        let nb = DirectNBody {
            flops_per_interaction: F,
        };
        let cfg = argmin_energy_memory(&nb, &mp, n, p).unwrap();
        // Flat objective near the optimum: see m0_is_the_argmin_of_energy.
        assert!((cfg.mem - m0).abs() / m0 < 1e-2);
        assert!((cfg.energy - opt.e_star(n).unwrap()).abs() / cfg.energy < 1e-10);
    }

    #[test]
    fn numeric_matmul_min_energy_is_interior_or_boundary() {
        let mp = params();
        let n = 8192u64;
        let p = 64u64;
        let cfg = argmin_energy_memory(&ClassicalMatMul, &mp, n, p).unwrap();
        let (lo, hi) = ClassicalMatMul.memory_range(n, p).unwrap();
        assert!(cfg.mem >= lo * 0.999 && cfg.mem <= hi * 1.001);
        // It is a minimum: both boundaries cost at least as much.
        let e_at = |m: Real| {
            let c = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
            mp.energy(p, &c, m, mp.time(&c))
        };
        assert!(e_at(lo) >= cfg.energy * (1.0 - 1e-9));
        assert!(e_at(hi) >= cfg.energy * (1.0 - 1e-9));
    }

    #[test]
    fn numeric_deadline_sweep_monotone_in_tmax() {
        let mp = params();
        let n = 4096u64;
        let ps = log_spaced_p(4, 4096, 24);
        let loose = min_energy_given_tmax(&ClassicalMatMul, &mp, n, &ps, 1e6).unwrap();
        let tight = min_energy_given_tmax(&ClassicalMatMul, &mp, n, &ps, loose.time / 8.0).unwrap();
        assert!(tight.energy >= loose.energy * (1.0 - 1e-9));
        assert!(tight.time <= loose.time);
    }

    #[test]
    fn numeric_budget_sweep_monotone_in_emax() {
        let mp = params();
        let n = 4096u64;
        let ps = log_spaced_p(4, 4096, 24);
        let unconstrained = min_time_given_emax(&ClassicalMatMul, &mp, n, &ps, 1e12).unwrap();
        let base = argmin_energy_memory(&ClassicalMatMul, &mp, n, 4).unwrap();
        let constrained =
            min_time_given_emax(&ClassicalMatMul, &mp, n, &ps, base.energy * 1.2).unwrap();
        assert!(constrained.time >= unconstrained.time * (1.0 - 1e-9));
        assert!(constrained.energy <= base.energy * 1.2 * (1.0 + 1e-9));
    }

    #[test]
    fn numeric_impossible_deadline_errors() {
        let mp = params();
        let ps = log_spaced_p(4, 64, 8);
        assert!(matches!(
            min_energy_given_tmax(&ClassicalMatMul, &mp, 8192, &ps, 1e-12),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn numeric_impossible_budget_errors() {
        let mp = params();
        let ps = log_spaced_p(4, 64, 8);
        assert!(matches!(
            min_time_given_emax(&ClassicalMatMul, &mp, 8192, &ps, 1e-6),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn numeric_power_matches_closed_form_nbody() {
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let nb = DirectNBody {
            flops_per_interaction: F,
        };
        let p = 256u64;
        let m = nb.max_useful_memory(n, p);
        let numeric = average_power(&nb, &mp, n, p, m).unwrap();
        let closed = opt.average_power(p as Real, m);
        assert!((numeric - closed).abs() / closed < 1e-12);
    }

    #[test]
    fn total_power_cap_limits_scale_out() {
        let mp = params();
        let n = 4096u64;
        let ps = log_spaced_p(4, 16384, 28);
        let fast = min_time_given_total_power(&ClassicalMatMul, &mp, n, &ps, 1e12).unwrap();
        // A tight cap forces fewer processors and more time.
        let cap = average_power(
            &ClassicalMatMul,
            &mp,
            n,
            64,
            ClassicalMatMul.min_memory(n, 64),
        )
        .unwrap();
        let capped = min_time_given_total_power(&ClassicalMatMul, &mp, n, &ps, cap).unwrap();
        assert!(capped.time >= fast.time * (1.0 - 1e-9));
        assert!(capped.p <= fast.p);
        // The cap binds: the chosen run respects it.
        let at = average_power(
            &ClassicalMatMul,
            &mp,
            n,
            capped.p.round() as u64,
            capped.mem,
        )
        .unwrap();
        assert!(at <= cap * (1.0 + 1e-6));
    }

    #[test]
    fn proc_power_cap_infeasible_when_tiny() {
        let mp = params();
        let ps = log_spaced_p(4, 1024, 12);
        assert!(matches!(
            min_energy_given_proc_power(&ClassicalMatMul, &mp, 4096, &ps, 1e-20),
            Err(CoreError::Infeasible(_))
        ));
        assert!(matches!(
            min_time_given_total_power(&ClassicalMatMul, &mp, 4096, &ps, 1e-20),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn proc_power_cap_caps_memory_like_eq20() {
        // For the n-body problem the numeric per-proc-power optimizer
        // must agree with the closed-form Eq. 20 memory cap: the chosen
        // M never exceeds it.
        let mp = params();
        let opt = NBodyOptimizer::new(&mp, F).unwrap();
        let n = 1u64 << 22;
        let nb = DirectNBody {
            flops_per_interaction: F,
        };
        let floor = opt.average_power(1.0, 100.0);
        let cap = floor * 1.2;
        let m_cap = opt.max_memory_given_proc_power(cap).unwrap();
        let ps = log_spaced_p(1 << 6, 1 << 16, 20);
        let cfg = min_energy_given_proc_power(&nb, &mp, n, &ps, cap).unwrap();
        assert!(
            cfg.mem <= m_cap * (1.0 + 1e-6),
            "numeric M {} vs Eq. 20 cap {}",
            cfg.mem,
            m_cap
        );
    }

    #[test]
    fn log_spaced_p_covers_range() {
        let v = log_spaced_p(4, 4096, 11);
        assert_eq!(*v.first().unwrap(), 4);
        assert_eq!(*v.last().unwrap(), 4096);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn daly_interval_minimizes_overhead_fraction() {
        use super::resilience::{daly_optimal_interval, overhead_fraction};
        // Cross-check the closed form against golden-section search on
        // the overhead function it approximately minimizes.
        for (delta, mtbf) in [(10.0, 86_400.0), (60.0, 3_600.0), (1.0, 1e6)] {
            let tau = daly_optimal_interval(delta, mtbf).unwrap();
            assert!(tau > 0.0);
            let (tau_num, _) = golden_section_min(
                |t| overhead_fraction(delta, t, mtbf).unwrap(),
                delta.max(1e-6) * 1e-2,
                mtbf * 10.0,
                1e-13,
            );
            // The first-order overhead model's argmin is √(2δM); Daly's
            // higher-order form corrects it by O(√(δ/M)).
            let rel = (tau - tau_num).abs() / tau_num;
            let corr = (delta / (2.0 * mtbf)).sqrt();
            assert!(rel <= 2.0 * corr + 1e-9, "τ {tau} vs numeric {tau_num}");
            // And the overhead at the Daly interval is near the optimum.
            let at_daly = overhead_fraction(delta, tau, mtbf).unwrap();
            let at_num = overhead_fraction(delta, tau_num, mtbf).unwrap();
            assert!(at_daly <= at_num * 1.05, "{at_daly} vs {at_num}");
        }
    }

    #[test]
    fn daly_interval_degenerate_and_invalid_inputs() {
        use super::resilience::daly_optimal_interval;
        // Checkpoints dearer than the failure-free stretch: fall back
        // to τ = MTBF.
        assert_eq!(daly_optimal_interval(100.0, 40.0).unwrap(), 40.0);
        assert!(daly_optimal_interval(-1.0, 10.0).is_err());
        assert!(daly_optimal_interval(1.0, 0.0).is_err());
        assert!(daly_optimal_interval(f64::NAN, 10.0).is_err());
    }

    #[test]
    fn overhead_fraction_shape_and_validation() {
        use super::resilience::overhead_fraction;
        let (delta, mtbf) = (30.0, 3600.0);
        // Convex in τ: large at both extremes, smaller in between.
        let lo = overhead_fraction(delta, 1.0, mtbf).unwrap();
        let mid = overhead_fraction(delta, 500.0, mtbf).unwrap();
        let hi = overhead_fraction(delta, 1e6, mtbf).unwrap();
        assert!(mid < lo && mid < hi);
        assert!(overhead_fraction(delta, 0.0, mtbf).is_err());
        assert!(overhead_fraction(delta, 10.0, -1.0).is_err());
        assert!(overhead_fraction(-1.0, 10.0, mtbf).is_err());
    }

    #[test]
    fn resilience_energy_prices_each_term() {
        use super::resilience::resilience_energy;
        let mp = params();
        let (p, mem) = (64.0, 1e6);
        // Each component in isolation reduces to one Eq. 2 term.
        let w = resilience_energy(&mp, 1e9, 0.0, 0.0, p, mem);
        assert!((w - mp.beta_e * 1e9).abs() <= 1e-12 * w);
        let s = resilience_energy(&mp, 0.0, 1e6, 0.0, p, mem);
        assert!((s - mp.alpha_e * 1e6).abs() <= 1e-12 * s);
        let t = resilience_energy(&mp, 0.0, 0.0, 10.0, p, mem);
        let expect = p * (mp.delta_e * mem + mp.epsilon_e) * 10.0;
        assert!((t - expect).abs() <= 1e-12 * expect);
        // And the combined call is the sum of the parts.
        let all = resilience_energy(&mp, 1e9, 1e6, 10.0, p, mem);
        assert!((all - (w + s + t)).abs() <= 1e-12 * all);
    }
}
