//! Closed-form runtime expressions (paper Eqs. 1, 9, 15 and the FFT
//! runtime of §IV).
//!
//! All of these are instances of Eq. 1, `T = γt·F + βt·W + αt·S`, with the
//! per-algorithm costs of [`crate::costs`] substituted in; the unit tests
//! verify each closed form against the generic evaluation.

use crate::params::MachineParams;
use crate::Real;

/// Runtime of 2.5D classical matrix multiplication, paper **Eq. 9**:
///
/// `T = γt·n³/p + βt·n³/(√M·p) + αt·n³/(m·√M·p)`.
pub fn t_matmul_25d(params: &MachineParams, n: u64, p: u64, mem: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let n3 = nf * nf * nf;
    params.gamma_t * n3 / pf
        + params.beta_t * n3 / (mem.sqrt() * pf)
        + params.alpha_t * n3 / (params.max_message_words * mem.sqrt() * pf)
}

/// Runtime of CAPS fast matrix multiplication with exponent `ω0`
/// (the Strassen analogue of Eq. 9):
///
/// `T = γt·n^ω/p + (βt + αt/m)·n^ω/(M^(ω/2−1)·p)`.
pub fn t_matmul_fast(params: &MachineParams, n: u64, p: u64, mem: Real, omega: Real) -> Real {
    let nw = (n as Real).powf(omega);
    let pf = p as Real;
    let w = nw / (mem.powf(omega / 2.0 - 1.0) * pf);
    params.gamma_t * nw / pf + params.beta_t * w + params.alpha_t * w / params.max_message_words
}

/// Runtime of the data-replicating direct n-body algorithm, paper
/// **Eq. 15**:
///
/// `T = γt·f·n²/p + βt·n²/(M·p) + αt·n²/(m·M·p)`.
pub fn t_nbody(params: &MachineParams, n: u64, p: u64, mem: Real, f: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let n2 = nf * nf;
    params.gamma_t * f * n2 / pf
        + params.beta_t * n2 / (mem * pf)
        + params.alpha_t * n2 / (params.max_message_words * mem * pf)
}

/// Runtime of the parallel FFT with the tree all-to-all (paper §IV):
///
/// `T = γt·n·log₂n/p + βt·n·log₂p/p + αt·log₂p`.
pub fn t_fft(params: &MachineParams, n: u64, p: u64) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    params.gamma_t * nf * nf.log2() / pf
        + params.beta_t * nf * pf.log2() / pf
        + params.alpha_t * pf.log2()
}

/// Runtime of 2.5D LU: bandwidth identical to 2.5D matmul, latency
/// `αt·S` with `S = p·√M/n` (the non-scaling critical-path term).
pub fn t_lu_25d(params: &MachineParams, n: u64, p: u64, mem: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let n3 = nf * nf * nf;
    params.gamma_t * n3 / pf
        + params.beta_t * n3 / (mem.sqrt() * pf)
        + params.alpha_t * pf * mem.sqrt() / nf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{Algorithm, ClassicalMatMul, DirectNBody, FftTree, Lu25d, StrassenMatMul};

    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(2.5e-12)
            .beta_t(1.6e-10)
            .alpha_t(6e-8)
            .max_message_words(4096.0)
            .build()
            .unwrap()
    }

    #[test]
    fn eq9_matches_generic_eq1() {
        let mp = params();
        let n = 8192u64;
        for p in [16u64, 64, 256] {
            for frac in [0.0, 0.5, 1.0] {
                let lo = ClassicalMatMul.min_memory(n, p);
                let hi = ClassicalMatMul.max_useful_memory(n, p);
                let m = lo + frac * (hi - lo);
                let closed = t_matmul_25d(&mp, n, p, m);
                let generic = mp.time(&ClassicalMatMul.costs(n, p, m, &mp).unwrap());
                assert!(
                    (closed - generic).abs() / generic < 1e-12,
                    "p={p} frac={frac}"
                );
            }
        }
    }

    #[test]
    fn fast_matmul_time_matches_generic() {
        let mp = params();
        let alg = StrassenMatMul::default();
        let n = 8192u64;
        let p = 49u64;
        let m = alg.max_useful_memory(n, p);
        let closed = t_matmul_fast(&mp, n, p, m, alg.omega);
        let generic = mp.time(&alg.costs(n, p, m, &mp).unwrap());
        assert!((closed - generic).abs() / generic < 1e-12);
    }

    #[test]
    fn eq15_matches_generic_eq1() {
        let mp = params();
        let nb = DirectNBody {
            flops_per_interaction: 17.0,
        };
        let n = 1u64 << 22;
        let p = 256u64;
        let m = nb.max_useful_memory(n, p);
        let closed = t_nbody(&mp, n, p, m, 17.0);
        let generic = mp.time(&nb.costs(n, p, m, &mp).unwrap());
        assert!((closed - generic).abs() / generic < 1e-12);
    }

    #[test]
    fn fft_time_matches_generic() {
        let mp = params();
        let n = 1u64 << 24;
        let p = 512u64;
        let m = FftTree.min_memory(n, p);
        let closed = t_fft(&mp, n, p);
        let generic = mp.time(&FftTree.costs(n, p, m, &mp).unwrap());
        assert!((closed - generic).abs() / generic < 1e-12);
    }

    #[test]
    fn lu_time_matches_generic() {
        let mp = params();
        let n = 8192u64;
        let p = 64u64;
        let m = Lu25d.min_memory(n, p) * 2.0;
        let closed = t_lu_25d(&mp, n, p, m);
        let generic = mp.time(&Lu25d.costs(n, p, m, &mp).unwrap());
        assert!((closed - generic).abs() / generic < 1e-12);
    }

    #[test]
    fn perfect_scaling_of_runtime_in_range() {
        // Paper §III: for fixed M, scaling p → c·p divides T by c exactly
        // (every term is proportional to 1/p).
        let mp = params();
        let n = 8192u64;
        let p0 = 16u64;
        let m = ClassicalMatMul.min_memory(n, p0);
        let t0 = t_matmul_25d(&mp, n, p0, m);
        for c in [2u64, 4, 8] {
            let t = t_matmul_25d(&mp, n, c * p0, m);
            assert!((t * c as Real - t0).abs() / t0 < 1e-12);
        }
    }

    #[test]
    fn fft_runtime_does_not_scale_perfectly() {
        // The αt·log p term grows with p, so T(2p) > T(p)/2.
        let mp = params();
        let n = 1u64 << 20;
        let t1 = t_fft(&mp, n, 64);
        let t2 = t_fft(&mp, n, 128);
        assert!(t2 > t1 / 2.0);
    }

    #[test]
    fn lu_runtime_can_increase_at_large_p() {
        // With a large enough latency price the LU critical-path term
        // eventually dominates and runtime grows with p.
        let mp = MachineParams::builder()
            .gamma_t(1e-12)
            .beta_t(1e-11)
            .alpha_t(1e-3)
            .max_message_words(1e6)
            .build()
            .unwrap();
        let n = 4096u64;
        let m = 1e6;
        let t_small = t_lu_25d(&mp, n, 1 << 10, m);
        let t_large = t_lu_25d(&mp, n, 1 << 20, m);
        assert!(t_large > t_small);
    }
}
