//! Heterogeneous-machine extension (the direction of the paper's
//! reference \[7\], Ballard–Demmel–Gearhart, "Communication bounds for
//! heterogeneous architectures"): processors with *different* speeds and
//! energy prices sharing one computation.
//!
//! For a perfectly divisible workload of `F` flops (the dense kernels of
//! this crate are exactly that at the block level), two canonical
//! questions have clean answers:
//!
//! * **minimum runtime**: assign work proportional to speed,
//!   `f_i ∝ 1/γt_i`, giving `T* = F / Σ_i (1/γt_i)`;
//! * **minimum energy under a deadline** `Tmax`: each processor can
//!   absorb at most `Tmax/γt_i` flops; filling the cheapest-energy
//!   (γe) processors first is optimal (a linear program with box
//!   constraints whose objective orders by `γe_i`), with idle leakage
//!   `εe_i·Tmax` paid machine-wide.

use crate::error::CoreError;
use crate::Real;

/// One processor of a heterogeneous machine: compute speed and energy
/// prices (communication is modelled at the workload level, not here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroProc {
    /// Seconds per flop.
    pub gamma_t: Real,
    /// Joules per flop.
    pub gamma_e: Real,
    /// Leakage joules per second (paid for the whole run).
    pub epsilon_e: Real,
}

/// A set of heterogeneous processors.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroMachine {
    procs: Vec<HeteroProc>,
}

/// A work assignment: flops per processor, with its runtime and energy.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Flops assigned to each processor.
    pub flops: Vec<Real>,
    /// Makespan `max_i γt_i·f_i`, seconds.
    pub time: Real,
    /// Total energy `Σ γe_i·f_i + Σ εe_i·T`, joules.
    pub energy: Real,
}

impl HeteroMachine {
    /// Build a machine; every processor must have positive `γt` and
    /// non-negative energy prices.
    pub fn new(procs: Vec<HeteroProc>) -> Result<Self, CoreError> {
        if procs.is_empty() {
            return Err(CoreError::InvalidConfiguration(
                "heterogeneous machine needs at least one processor".into(),
            ));
        }
        for p in &procs {
            if !(p.gamma_t > 0.0) || !p.gamma_t.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "gamma_t",
                    value: p.gamma_t,
                });
            }
            if p.gamma_e < 0.0 || p.gamma_e.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "gamma_e",
                    value: p.gamma_e,
                });
            }
            if p.epsilon_e < 0.0 || p.epsilon_e.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "epsilon_e",
                    value: p.epsilon_e,
                });
            }
        }
        Ok(HeteroMachine { procs })
    }

    /// The processors.
    pub fn procs(&self) -> &[HeteroProc] {
        &self.procs
    }

    /// Aggregate speed `Σ 1/γt_i` (flops per second at full load).
    pub fn total_speed(&self) -> Real {
        self.procs.iter().map(|p| 1.0 / p.gamma_t).sum()
    }

    fn price(&self, flops: &[Real], time: Real) -> Real {
        self.procs
            .iter()
            .zip(flops)
            .map(|(p, f)| p.gamma_e * f + p.epsilon_e * time)
            .sum()
    }

    /// Minimum-runtime assignment: `f_i ∝ 1/γt_i`, all processors finish
    /// simultaneously at `T* = F / Σ(1/γt_i)`.
    pub fn min_time_split(&self, total_flops: Real) -> Assignment {
        let t = total_flops / self.total_speed();
        let flops: Vec<Real> = self.procs.iter().map(|p| t / p.gamma_t).collect();
        let energy = self.price(&flops, t);
        Assignment {
            flops,
            time: t,
            energy,
        }
    }

    /// Minimum-energy assignment under a deadline: fill processors in
    /// ascending `γe` order, each up to its capacity `Tmax/γt_i`.
    /// Returns [`CoreError::Infeasible`] when the machine cannot absorb
    /// `F` flops within `Tmax`.
    pub fn min_energy_split_given_tmax(
        &self,
        total_flops: Real,
        tmax: Real,
    ) -> Result<Assignment, CoreError> {
        if !(tmax > 0.0) {
            return Err(CoreError::Infeasible(format!(
                "deadline Tmax = {tmax} must be positive"
            )));
        }
        let capacity: Real = self.procs.iter().map(|p| tmax / p.gamma_t).sum();
        if capacity < total_flops {
            return Err(CoreError::Infeasible(format!(
                "machine absorbs at most {capacity} flops in {tmax} s, \
                 need {total_flops}"
            )));
        }
        let mut order: Vec<usize> = (0..self.procs.len()).collect();
        order.sort_by(|&a, &b| {
            self.procs[a]
                .gamma_e
                .partial_cmp(&self.procs[b].gamma_e)
                .unwrap()
        });
        let mut flops = vec![0.0; self.procs.len()];
        let mut remaining = total_flops;
        for &i in &order {
            if remaining <= 0.0 {
                break;
            }
            let cap = tmax / self.procs[i].gamma_t;
            let take = cap.min(remaining);
            flops[i] = take;
            remaining -= take;
        }
        let time = self
            .procs
            .iter()
            .zip(&flops)
            .map(|(p, f)| p.gamma_t * f)
            .fold(0.0_f64, Real::max);
        // Leakage accrues until the deadline (processors cannot be
        // powered down early in this model).
        let energy = self.price(&flops, tmax);
        Ok(Assignment {
            flops,
            time,
            energy,
        })
    }

    /// The energy/time Pareto frontier: sweep deadlines from the minimum
    /// feasible (`min_time_split`) up to `slack_max` times it.
    pub fn pareto(
        &self,
        total_flops: Real,
        points: usize,
        slack_max: Real,
    ) -> Result<Vec<Assignment>, CoreError> {
        if points < 2 || !(slack_max > 1.0) {
            return Err(CoreError::InvalidConfiguration(
                "need points >= 2 and slack_max > 1".into(),
            ));
        }
        let t_min = self.min_time_split(total_flops).time;
        (0..points)
            .map(|i| {
                let s = 1.0 + (slack_max - 1.0) * i as Real / (points - 1) as Real;
                self.min_energy_split_given_tmax(total_flops, t_min * s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> HeteroProc {
        HeteroProc {
            gamma_t: 1e-9,
            gamma_e: 5e-9,
            epsilon_e: 1.0,
        }
    }

    fn gpu() -> HeteroProc {
        HeteroProc {
            gamma_t: 1e-10, // 10x faster
            gamma_e: 2e-10, // 25x cheaper per flop
            epsilon_e: 10.0,
        }
    }

    #[test]
    fn homogeneous_machine_splits_evenly() {
        let m = HeteroMachine::new(vec![cpu(); 4]).unwrap();
        let a = m.min_time_split(4e9);
        for f in &a.flops {
            assert!((f - 1e9).abs() < 1.0);
        }
        assert!((a.time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_time_split_finishes_simultaneously() {
        let m = HeteroMachine::new(vec![cpu(), gpu()]).unwrap();
        let a = m.min_time_split(1e10);
        let t0 = m.procs()[0].gamma_t * a.flops[0];
        let t1 = m.procs()[1].gamma_t * a.flops[1];
        assert!((t0 - t1).abs() / t0 < 1e-12);
        // The GPU takes 10x the flops.
        assert!((a.flops[1] / a.flops[0] - 10.0).abs() < 1e-9);
        // Total is conserved.
        assert!((a.flops.iter().sum::<Real>() - 1e10).abs() < 1.0);
    }

    #[test]
    fn deadline_greedy_prefers_cheap_flops() {
        let m = HeteroMachine::new(vec![cpu(), gpu()]).unwrap();
        // Loose deadline: the GPU (cheap γe) takes everything it can;
        // with enough slack the CPU does nothing.
        let f = 1e9;
        let tmax = 1.0; // GPU alone absorbs 1e10 flops in 1 s
        let a = m.min_energy_split_given_tmax(f, tmax).unwrap();
        assert_eq!(a.flops[0], 0.0);
        assert!((a.flops[1] - f).abs() < 1.0);
    }

    #[test]
    fn tight_deadline_spills_to_expensive_processors() {
        let m = HeteroMachine::new(vec![cpu(), gpu()]).unwrap();
        // Deadline 0.9 s: GPU capacity 9e9 flops, CPU capacity 9e8.
        // Ask for 9.5e9: the GPU fills, the CPU takes the 5e8 spill.
        let f = 9.5e9;
        let a = m.min_energy_split_given_tmax(f, 0.9).unwrap();
        assert!((a.flops[1] - 9e9).abs() < 1.0);
        assert!((a.flops[0] - 5e8).abs() < 1.0);
        assert!(a.time <= 0.9 + 1e-12);
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let m = HeteroMachine::new(vec![cpu(), gpu()]).unwrap();
        assert!(matches!(
            m.min_energy_split_given_tmax(1e12, 0.01),
            Err(CoreError::Infeasible(_))
        ));
        assert!(matches!(
            m.min_energy_split_given_tmax(1.0, -1.0),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn greedy_matches_brute_force_on_two_procs() {
        // Exhaustive check of optimality over a fine split grid.
        let m = HeteroMachine::new(vec![cpu(), gpu()]).unwrap();
        let f = 5e9;
        let tmax = 0.6;
        let greedy = m.min_energy_split_given_tmax(f, tmax).unwrap();
        let cap0 = tmax / m.procs()[0].gamma_t;
        let cap1 = tmax / m.procs()[1].gamma_t;
        let mut best = Real::MAX;
        for i in 0..=1000 {
            let f0 = cap0 * i as Real / 1000.0;
            let f1 = f - f0;
            if f1 < 0.0 || f1 > cap1 {
                continue;
            }
            let e = m.procs()[0].gamma_e * f0
                + m.procs()[1].gamma_e * f1
                + (m.procs()[0].epsilon_e + m.procs()[1].epsilon_e) * tmax;
            best = best.min(e);
        }
        assert!(
            greedy.energy <= best * (1.0 + 1e-9),
            "greedy {} vs brute {}",
            greedy.energy,
            best
        );
    }

    #[test]
    fn pareto_is_monotone() {
        let m = HeteroMachine::new(vec![
            cpu(),
            gpu(),
            HeteroProc {
                gamma_t: 5e-10,
                gamma_e: 1e-9,
                epsilon_e: 2.0,
            },
        ])
        .unwrap();
        let frontier = m.pareto(1e10, 12, 10.0).unwrap();
        // Looser deadlines never need more "active" energy... total
        // energy can rise again because idle leakage accrues until the
        // deadline; check the active part is non-increasing.
        let active = |a: &Assignment| -> Real {
            m.procs()
                .iter()
                .zip(&a.flops)
                .map(|(p, f)| p.gamma_e * f)
                .sum()
        };
        for w in frontier.windows(2) {
            assert!(active(&w[1]) <= active(&w[0]) * (1.0 + 1e-9));
        }
    }

    #[test]
    fn validation_rejects_bad_processors() {
        assert!(HeteroMachine::new(vec![]).is_err());
        assert!(HeteroMachine::new(vec![HeteroProc {
            gamma_t: 0.0,
            gamma_e: 0.0,
            epsilon_e: 0.0
        }])
        .is_err());
        assert!(HeteroMachine::new(vec![HeteroProc {
            gamma_t: 1e-9,
            gamma_e: -1.0,
            epsilon_e: 0.0
        }])
        .is_err());
    }
}
