//! Closed-form energy expressions (paper Eqs. 2, 10, 11, 13, 14, 16 and
//! the FFT energy of §IV).
//!
//! All are instances of Eq. 2,
//! `E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)`, with per-algorithm costs
//! substituted; unit tests verify each against the generic evaluation.
//! The headline structure is visible directly in the formulas: for the
//! data-replicating algorithms **no term depends on `p`** once `n` and
//! `M` are fixed — that is the "no additional energy" theorem.

use crate::params::MachineParams;
use crate::time::{t_fft, t_lu_25d, t_matmul_25d, t_matmul_fast, t_nbody};
use crate::Real;

/// Energy of 2.5D classical matrix multiplication, paper **Eq. 10**:
///
/// ```text
/// E = (γe + γt·εe)·n³
///   + ((βe + βt·εe) + (αe + αt·εe)/m)·n³/√M
///   + δe·γt·M·n³
///   + (δe·βt + δe·αt/m)·√M·n³
/// ```
///
/// Independent of `p` — perfect strong scaling in energy for
/// `n²/M ≤ p ≤ n³/M^(3/2)`.
pub fn e_matmul_25d(params: &MachineParams, n: u64, mem: Real) -> Real {
    let nf = n as Real;
    let n3 = nf * nf * nf;
    let m = params.max_message_words;
    params.gamma_e_leak() * n3
        + params.beta_e_leak() * n3 / mem.sqrt()
        + params.delta_e * params.gamma_t * mem * n3
        + (params.delta_e * params.beta_t + params.delta_e * params.alpha_t / m) * mem.sqrt() * n3
}

/// Energy of 3D matrix multiplication (the `M = n²/p^(2/3)` limit of the
/// 2.5D algorithm), paper **Eq. 11**:
///
/// ```text
/// E = (γe + γt·εe)·n³
///   + ((βe + βt·εe) + (αe + αt·εe)/m)·n²·p^(1/3)
///   + δe·γt·n⁵/p^(2/3)
///   + (δe·βt + δe·αt/m)·n⁴/p^(1/3)
/// ```
///
/// Past the perfect-scaling limit, increasing `p` *reduces* memory energy
/// but *increases* communication energy.
pub fn e_matmul_3d(params: &MachineParams, n: u64, p: u64) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let n3 = nf * nf * nf;
    let m = params.max_message_words;
    params.gamma_e_leak() * n3
        + params.beta_e_leak() * nf * nf * pf.powf(1.0 / 3.0)
        + params.delta_e * params.gamma_t * nf.powi(5) / pf.powf(2.0 / 3.0)
        + (params.delta_e * params.beta_t + params.delta_e * params.alpha_t / m) * nf.powi(4)
            / pf.powf(1.0 / 3.0)
}

/// Energy of CAPS fast matrix multiplication with limited memory, paper
/// **Eq. 13** ("FLM"):
///
/// ```text
/// E = (γe + γt·εe)·n^ω
///   + ((βe + βt·εe) + (αe + αt·εe)/m)·n^ω/M^(ω/2−1)
///   + δe·γt·M·n^ω
///   + (δe·βt + δe·αt/m)·M^(2−ω/2)·n^ω
/// ```
///
/// valid for `n²/p ≤ M ≤ n²/p^(2/ω)`; independent of `p`.
pub fn e_matmul_fast_lm(params: &MachineParams, n: u64, mem: Real, omega: Real) -> Real {
    let nw = (n as Real).powf(omega);
    let m = params.max_message_words;
    params.gamma_e_leak() * nw
        + params.beta_e_leak() * nw / mem.powf(omega / 2.0 - 1.0)
        + params.delta_e * params.gamma_t * mem * nw
        + (params.delta_e * params.beta_t + params.delta_e * params.alpha_t / m)
            * mem.powf(2.0 - omega / 2.0)
            * nw
}

/// Energy of CAPS fast matmul with unlimited memory (`M = n²/p^(2/ω)`),
/// paper **Eq. 14** ("FUM"):
///
/// ```text
/// E = (γe + γt·εe)·n^ω
///   + ((βe + βt·εe) + (αe + αt·εe)/m)·n²·p^(1−2/ω)
///   + δe·γt·n^(2+ω)·p^(−2/ω)
///   + (δe·βt + δe·αt/m)·n⁴·p^(1−4/ω)
/// ```
///
/// Note: the paper prints the memory term as `δe·γt·n⁵·p^(−2/ω)`; the
/// exponent 5 is only consistent with Eq. 13 at `ω = 3`. Substituting
/// `M = n²/p^(2/ω)` into Eq. 13's `δe·γt·M·n^ω` gives `n^(2+ω)`, which is
/// what we implement (the unit test checks Eq. 14 ≡ Eq. 13 at maximum
/// memory for Strassen's `ω = log2 7`).
pub fn e_matmul_fast_um(params: &MachineParams, n: u64, p: u64, omega: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let nw = nf.powf(omega);
    let m = params.max_message_words;
    params.gamma_e_leak() * nw
        + params.beta_e_leak() * nf * nf * pf.powf(1.0 - 2.0 / omega)
        + params.delta_e * params.gamma_t * nf.powf(2.0 + omega) * pf.powf(-2.0 / omega)
        + (params.delta_e * params.beta_t + params.delta_e * params.alpha_t / m)
            * nf.powi(4)
            * pf.powf(1.0 - 4.0 / omega)
}

/// Energy of the data-replicating direct n-body algorithm, paper
/// **Eq. 16**:
///
/// ```text
/// E = (f·(γe + γt·εe) + δe·(βt + αt/m))·n²
///   + ((βe + βt·εe) + (αe + αt·εe)/m)·n²/M
///   + δe·γt·f·M·n²
/// ```
///
/// Independent of `p` for `n/p ≤ M ≤ n/√p`.
pub fn e_nbody(params: &MachineParams, n: u64, mem: Real, f: Real) -> Real {
    let nf = n as Real;
    let n2 = nf * nf;
    let m = params.max_message_words;
    (f * params.gamma_e_leak() + params.delta_e * (params.beta_t + params.alpha_t / m)) * n2
        + params.beta_e_leak() * n2 / mem
        + params.delta_e * params.gamma_t * f * mem * n2
}

/// Energy of the parallel FFT with the tree all-to-all (paper §IV):
///
/// ```text
/// E = (γe + εe·γt)·n·log n + (αe + εe·αt)·p·log p
///   + (βe + εe·βt + δe·αt)·n·log p
///   + δe·γt·n²·log n / p + δe·βt·n²·log p / p
/// ```
///
/// The `p·log p` and `log p` factors preclude perfect strong scaling.
pub fn e_fft(params: &MachineParams, n: u64, p: u64) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let ln = nf.log2();
    let lp = pf.log2();
    (params.gamma_e + params.epsilon_e * params.gamma_t) * nf * ln
        + (params.alpha_e + params.epsilon_e * params.alpha_t) * pf * lp
        + (params.beta_e + params.epsilon_e * params.beta_t + params.delta_e * params.alpha_t)
            * nf
            * lp
        + params.delta_e * params.gamma_t * nf * nf * ln / pf
        + params.delta_e * params.beta_t * nf * nf * lp / pf
}

/// Energy of 2.5D LU via the generic model (Eq. 2 applied to the LU costs
/// with `M` fixed): bandwidth/memory terms independent of `p`, but the
/// latency energy `p·αe·S = αe·p²·√M/n` **grows quadratically** with `p`.
pub fn e_lu_25d(params: &MachineParams, n: u64, p: u64, mem: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let n3 = nf * nf * nf;
    let t = t_lu_25d(params, n, p, mem);
    let f = n3 / pf;
    let w = n3 / (mem.sqrt() * pf);
    let s = pf * mem.sqrt() / nf;
    pf * (params.gamma_e * f
        + params.beta_e * w
        + params.alpha_e * s
        + params.delta_e * mem * t
        + params.epsilon_e * t)
}

/// GFLOPS-per-watt efficiency of a run: `(total_flops / E) / 1e9`.
/// This is the paper's figure of merit in §VI (Figs. 6–7, Table II).
pub fn gflops_per_watt(total_flops: Real, energy_joules: Real) -> Real {
    if energy_joules <= 0.0 {
        return Real::INFINITY;
    }
    total_flops / energy_joules / 1e9
}

/// Convenience bundle: evaluate `(T, E, P)` for 2.5D matmul at one point.
pub fn matmul_25d_point(params: &MachineParams, n: u64, p: u64, mem: Real) -> (Real, Real, Real) {
    let t = t_matmul_25d(params, n, p, mem);
    let e = e_matmul_25d(params, n, mem);
    (t, e, e / t)
}

/// Convenience bundle: evaluate `(T, E, P)` for the n-body algorithm.
pub fn nbody_point(
    params: &MachineParams,
    n: u64,
    p: u64,
    mem: Real,
    f: Real,
) -> (Real, Real, Real) {
    let t = t_nbody(params, n, p, mem, f);
    let e = e_nbody(params, n, mem, f);
    (t, e, e / t)
}

/// Convenience bundle: `(T, E, P)` for fast matmul with limited memory.
pub fn matmul_fast_point(
    params: &MachineParams,
    n: u64,
    p: u64,
    mem: Real,
    omega: Real,
) -> (Real, Real, Real) {
    let t = t_matmul_fast(params, n, p, mem, omega);
    let e = e_matmul_fast_lm(params, n, mem, omega);
    (t, e, e / t)
}

/// Convenience bundle: `(T, E, P)` for the FFT.
pub fn fft_point(params: &MachineParams, n: u64, p: u64) -> (Real, Real, Real) {
    let t = t_fft(params, n, p);
    let e = e_fft(params, n, p);
    (t, e, e / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{Algorithm, ClassicalMatMul, DirectNBody, FftTree, StrassenMatMul};
    use crate::STRASSEN_OMEGA;

    /// A machine with every price non-zero so no term vanishes.
    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(2.5e-12)
            .beta_t(1.6e-10)
            .alpha_t(6e-8)
            .gamma_e(3.8e-10)
            .beta_e(3.8e-10)
            .alpha_e(1e-7)
            .delta_e(5.8e-9)
            .epsilon_e(0.3)
            .max_message_words(4096.0)
            .build()
            .unwrap()
    }

    #[test]
    fn eq10_matches_generic_eq2() {
        let mp = params();
        let n = 8192u64;
        for p in [16u64, 64, 256] {
            for frac in [0.0, 0.5, 1.0] {
                let lo = ClassicalMatMul.min_memory(n, p);
                let hi = ClassicalMatMul.max_useful_memory(n, p);
                let m = lo + frac * (hi - lo);
                let c = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
                let t = mp.time(&c);
                let generic = mp.energy(p, &c, m, t);
                let closed = e_matmul_25d(&mp, n, m);
                assert!(
                    (closed - generic).abs() / generic < 1e-12,
                    "p={p} frac={frac}: closed={closed} generic={generic}"
                );
            }
        }
    }

    #[test]
    fn eq11_is_eq10_at_3d_memory() {
        let mp = params();
        let n = 8192u64;
        for p in [8u64, 64, 512] {
            let m3d = ClassicalMatMul.max_useful_memory(n, p);
            let via_eq10 = e_matmul_25d(&mp, n, m3d);
            let via_eq11 = e_matmul_3d(&mp, n, p);
            assert!((via_eq10 - via_eq11).abs() / via_eq10 < 1e-12, "p={p}");
        }
    }

    #[test]
    fn eq13_matches_generic_eq2() {
        let mp = params();
        let alg = StrassenMatMul::default();
        let n = 8192u64;
        let p = 49u64;
        for frac in [0.0, 0.3, 1.0] {
            let lo = alg.min_memory(n, p);
            let hi = alg.max_useful_memory(n, p);
            let m = lo + frac * (hi - lo);
            let c = alg.costs(n, p, m, &mp).unwrap();
            let t = mp.time(&c);
            let generic = mp.energy(p, &c, m, t);
            let closed = e_matmul_fast_lm(&mp, n, m, STRASSEN_OMEGA);
            assert!((closed - generic).abs() / generic < 1e-12, "frac={frac}");
        }
    }

    #[test]
    fn eq14_is_eq13_at_max_memory() {
        let mp = params();
        let alg = StrassenMatMul::default();
        let n = 8192u64;
        for p in [7u64, 49, 343] {
            let m = alg.max_useful_memory(n, p);
            let lm = e_matmul_fast_lm(&mp, n, m, alg.omega);
            let um = e_matmul_fast_um(&mp, n, p, alg.omega);
            assert!((lm - um).abs() / lm < 1e-12, "p={p}");
        }
    }

    #[test]
    fn eq16_matches_generic_eq2() {
        let mp = params();
        let f = 23.0;
        let nb = DirectNBody {
            flops_per_interaction: f,
        };
        let n = 1u64 << 22;
        let p = 1024u64;
        for frac in [0.0, 0.5, 1.0] {
            let lo = nb.min_memory(n, p);
            let hi = nb.max_useful_memory(n, p);
            let m = lo + frac * (hi - lo);
            let c = nb.costs(n, p, m, &mp).unwrap();
            let t = mp.time(&c);
            let generic = mp.energy(p, &c, m, t);
            let closed = e_nbody(&mp, n, m, f);
            assert!((closed - generic).abs() / generic < 1e-12, "frac={frac}");
        }
    }

    #[test]
    fn fft_energy_matches_generic_eq2() {
        let mp = params();
        let n = 1u64 << 24;
        let p = 512u64;
        let m = FftTree.min_memory(n, p);
        let c = FftTree.costs(n, p, m, &mp).unwrap();
        let t = mp.time(&c);
        let generic = mp.energy(p, &c, m, t);
        let closed = e_fft(&mp, n, p);
        assert!((closed - generic).abs() / generic < 1e-12);
    }

    #[test]
    fn headline_energy_is_independent_of_p_matmul() {
        // The theorem: E(n, M) does not mention p. Evaluate the generic
        // model at many p in the range and check constancy.
        let mp = params();
        let n = 8192u64;
        let p0 = 16u64;
        let m = ClassicalMatMul.min_memory(n, p0);
        let e0 = {
            let c = ClassicalMatMul.costs(n, p0, m, &mp).unwrap();
            mp.energy(p0, &c, m, mp.time(&c))
        };
        // The scaling range ends at p_max = n³/M^(3/2) = 64 here.
        for c_factor in [2u64, 4] {
            let p = p0 * c_factor;
            let c = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
            let e = mp.energy(p, &c, m, mp.time(&c));
            assert!((e - e0).abs() / e0 < 1e-12, "p={p}");
        }
    }

    #[test]
    fn headline_energy_is_independent_of_p_nbody() {
        let mp = params();
        let nb = DirectNBody::default();
        let n = 1u64 << 22;
        let p0 = 64u64;
        let m = nb.min_memory(n, p0);
        let e0 = {
            let c = nb.costs(n, p0, m, &mp).unwrap();
            mp.energy(p0, &c, m, mp.time(&c))
        };
        for c_factor in [2u64, 4, 8] {
            let p = p0 * c_factor * c_factor; // stays within n²/M² range
            let c = nb.costs(n, p, m, &mp).unwrap();
            let e = mp.energy(p, &c, m, mp.time(&c));
            assert!((e - e0).abs() / e0 < 1e-12, "p={p}");
        }
    }

    #[test]
    fn fft_energy_grows_with_p() {
        // The p·log p message-energy term: no free scaling for the FFT.
        let mp = params();
        let n = 1u64 << 20;
        let e1 = e_fft(&mp, n, 1 << 8);
        let e2 = e_fft(&mp, n, 1 << 16);
        assert!(e2 > e1);
    }

    #[test]
    fn lu_latency_energy_grows_quadratically() {
        let mp = params();
        let n = 8192u64;
        let m = 1e6;
        // Isolate the latency term by zeroing other energy prices.
        let mp_lat = MachineParams {
            gamma_e: 0.0,
            beta_e: 0.0,
            delta_e: 0.0,
            epsilon_e: 0.0,
            ..mp
        };
        let e1 = e_lu_25d(&mp_lat, n, 64, m);
        let e2 = e_lu_25d(&mp_lat, n, 128, m);
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_has_interior_minimum_in_memory() {
        // E(M) = const + B/M + D·M for n-body: decreasing then increasing.
        let mp = params();
        let n = 1u64 << 22;
        let f = 20.0;
        let samples: Vec<Real> = (0..60)
            .map(|i| {
                let m = 10.0_f64.powf(1.0 + i as Real * 0.1);
                e_nbody(&mp, n, m, f)
            })
            .collect();
        let min_idx = samples
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < samples.len() - 1,
            "expected interior minimum, got index {min_idx}"
        );
    }

    #[test]
    fn gflops_per_watt_sane() {
        assert!((gflops_per_watt(1e12, 100.0) - 10.0).abs() < 1e-12);
        assert!(gflops_per_watt(1.0, 0.0).is_infinite());
    }

    #[test]
    fn point_bundles_are_consistent() {
        let mp = params();
        let (t, e, p) = matmul_25d_point(&mp, 4096, 64, ClassicalMatMul.min_memory(4096, 64));
        assert!((p - e / t).abs() / p < 1e-12);
        let (t, e, pw) = nbody_point(&mp, 1 << 20, 64, 1024.0 * 16.0, 20.0);
        assert!((pw - e / t).abs() / pw < 1e-12);
        let (t, e, pw) = fft_point(&mp, 1 << 20, 64);
        assert!((pw - e / t).abs() / pw < 1e-12);
        let alg = StrassenMatMul::default();
        let m = alg.min_memory(4096, 49);
        let (t, e, pw) = matmul_fast_point(&mp, 4096, 49, m, alg.omega);
        assert!(t > 0.0 && e > 0.0 && pw > 0.0);
    }
}
