//! The sequential two-level-memory machine model (paper Fig. 1(a)) and
//! its energy analysis.
//!
//! The paper's lower bounds (Eqs. 3–4) are stated for a sequential
//! machine with a fast memory of `M` words backed by a slow memory:
//! a computation executing `F` flops moves `W = Ω(max(I+O, F/√M))` words
//! across the fast/slow boundary. Pricing that traffic with the same
//! linear models gives a sequential analogue of everything in the
//! parallel story — including an **energy-optimal fast-memory size**:
//! a bigger cache reduces traffic energy but costs `δe·M·T` to keep
//! powered.
//!
//! The executable counterpart lives in `psse-sim::seqmem` (an LRU cache
//! simulator) and `psse-algos::seq_matmul` (instrumented naive/blocked
//! matmul), which verify the `Θ(n³/√M)` traffic law that this module
//! prices.

use crate::bounds::sequential_word_lower_bound;
use crate::error::CoreError;
use crate::params::MachineParams;
use crate::Real;

/// Per-run counts on the sequential machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialCosts {
    /// Flops executed.
    pub flops: Real,
    /// Words moved between slow and fast memory.
    pub words: Real,
    /// Messages (cache lines / DMA transfers) moved.
    pub messages: Real,
}

/// Model traffic of blocked (tiled) classical matmul with tile edge
/// `b = sqrt(M/3)`: each of the `(n/b)³` tile-multiplications touches
/// `3b²` words, of which `2b²` must cross the boundary (A and B tiles;
/// C stays resident per output tile), plus reading/writing C once.
///
/// `W ≈ 2·n³/b + 2n² = 2·√3·n³/√M + 2n²`.
pub fn blocked_matmul_costs(n: u64, fast_words: Real, line_words: Real) -> SequentialCosts {
    let nf = n as Real;
    let b = (fast_words / 3.0).sqrt().max(1.0).min(nf);
    let words = 2.0 * nf * nf * nf / b + 2.0 * nf * nf;
    SequentialCosts {
        flops: 2.0 * nf * nf * nf,
        words,
        messages: words / line_words.max(1.0),
    }
}

/// Model traffic of the naive (untiled) triple loop with LRU when the
/// problem spills: every inner-product step re-reads a column of `B`
/// (`W ≈ n³` for `M ≪ n²`), the classic cache-oblivious failure mode.
pub fn naive_matmul_costs(n: u64, fast_words: Real, line_words: Real) -> SequentialCosts {
    let nf = n as Real;
    let words = if fast_words >= 3.0 * nf * nf {
        3.0 * nf * nf // everything fits: compulsory traffic only
    } else {
        nf * nf * nf + 2.0 * nf * nf
    };
    SequentialCosts {
        flops: 2.0 * nf * nf * nf,
        words,
        messages: words / line_words.max(1.0),
    }
}

/// Runtime of a sequential run (Eq. 1 with `p = 1`).
pub fn sequential_time(params: &MachineParams, c: &SequentialCosts) -> Real {
    params.gamma_t * c.flops + params.beta_t * c.words + params.alpha_t * c.messages
}

/// Energy of a sequential run (Eq. 2 with `p = 1`): `mem` is the fast
/// memory kept powered for the duration.
pub fn sequential_energy(params: &MachineParams, c: &SequentialCosts, mem: Real) -> Real {
    let t = sequential_time(params, c);
    params.gamma_e * c.flops
        + params.beta_e * c.words
        + params.alpha_e * c.messages
        + params.delta_e * mem * t
        + params.epsilon_e * t
}

/// The energy-optimal fast-memory size for blocked matmul on this
/// machine, found by golden-section over `M ∈ [m_lo, 3n²]` (the
/// sequential analogue of the paper's `M0`).
pub fn optimal_fast_memory(
    params: &MachineParams,
    n: u64,
    m_lo: Real,
) -> Result<(Real, Real), CoreError> {
    params.validate()?;
    if n < 2 || !(m_lo >= 3.0) {
        return Err(CoreError::InvalidConfiguration(
            "need n >= 2 and m_lo >= 3".into(),
        ));
    }
    let nf = n as Real;
    let hi = 3.0 * nf * nf;
    if m_lo >= hi {
        return Err(CoreError::InvalidConfiguration(format!(
            "m_lo = {m_lo} must be below 3n² = {hi}"
        )));
    }
    let eval = |m: Real| {
        let c = blocked_matmul_costs(n, m, params.max_message_words);
        sequential_energy(params, &c, m)
    };
    Ok(crate::optimize::numeric::golden_section_min(
        eval, m_lo, hi, 1e-12,
    ))
}

/// How far a measured traffic count sits above the sequential lower
/// bound (Eq. 3): returns `measured / bound`. Values ≥ 1 certify the
/// measurement respects the bound; small constants certify near-
/// optimality of the algorithm.
pub fn traffic_vs_lower_bound(n: u64, fast_words: Real, measured_words: Real) -> Real {
    let nf = n as Real;
    let bound = sequential_word_lower_bound(
        2.0 * nf * nf * nf,
        fast_words,
        2.0 * nf * nf, // inputs A, B
        nf * nf,       // output C
    );
    measured_words / bound
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-7)
            .gamma_e(1e-9)
            .beta_e(1e-7)
            .alpha_e(0.0)
            .delta_e(1e-6)
            .epsilon_e(0.0)
            .max_message_words(8.0)
            .build()
            .unwrap()
    }

    #[test]
    fn blocked_traffic_scales_as_inverse_sqrt_m() {
        let w1 = blocked_matmul_costs(1 << 10, 3.0 * 1024.0, 8.0).words;
        let w4 = blocked_matmul_costs(1 << 10, 12.0 * 1024.0, 8.0).words;
        // 4x the memory → ~2x less dominant traffic.
        let ratio = w1 / w4;
        assert!((1.7..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn naive_traffic_is_cubic_when_spilling() {
        let n = 1u64 << 10;
        let naive = naive_matmul_costs(n, 1e4, 8.0);
        let blocked = blocked_matmul_costs(n, 1e4, 8.0);
        assert!(naive.words > 10.0 * blocked.words);
        // And both algorithms do the same flops.
        assert_eq!(naive.flops, blocked.flops);
    }

    #[test]
    fn naive_traffic_is_compulsory_when_fitting() {
        let n = 64u64;
        let c = naive_matmul_costs(n, 1e9, 8.0);
        assert_eq!(c.words, 3.0 * (n * n) as Real);
    }

    #[test]
    fn blocked_traffic_respects_lower_bound_with_small_constant() {
        for log_m in [12u32, 14, 16] {
            let n = 1u64 << 10;
            let m = (1u64 << log_m) as Real;
            let c = blocked_matmul_costs(n, m, 8.0);
            let ratio = traffic_vs_lower_bound(n, m, c.words);
            assert!(ratio >= 1.0, "model must respect the bound: {ratio}");
            assert!(ratio < 4.0, "and sit within a small constant: {ratio}");
        }
    }

    #[test]
    fn sequential_energy_has_optimal_cache_size() {
        let mp = params();
        let n = 1u64 << 10;
        let (m_star, e_star) = optimal_fast_memory(&mp, n, 48.0).unwrap();
        assert!(m_star > 48.0 && m_star < 3.0 * ((n * n) as Real));
        // Perturbing M raises energy.
        for f in [0.3, 0.7, 1.5, 3.0] {
            let m = m_star * f;
            let c = blocked_matmul_costs(n, m, mp.max_message_words);
            assert!(
                sequential_energy(&mp, &c, m) >= e_star * (1.0 - 1e-9),
                "f={f}"
            );
        }
    }

    #[test]
    fn bigger_cache_never_slows_the_blocked_algorithm() {
        let mp = params();
        let n = 1u64 << 10;
        let mut last = Real::MAX;
        for log_m in 8..20 {
            let m = (1u64 << log_m) as Real;
            let c = blocked_matmul_costs(n, m, mp.max_message_words);
            let t = sequential_time(&mp, &c);
            assert!(t <= last * (1.0 + 1e-12));
            last = t;
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let mp = params();
        assert!(optimal_fast_memory(&mp, 1, 48.0).is_err());
        assert!(optimal_fast_memory(&mp, 1024, 1.0).is_err());
        assert!(optimal_fast_memory(&mp, 4, 1e12).is_err());
    }
}
