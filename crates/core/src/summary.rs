//! Bridging measured executions (from `psse-sim`) to the analytical
//! models.
//!
//! `psse-core` deliberately does not depend on the simulator; instead the
//! simulator's per-rank counter profile is condensed into an
//! [`ExecutionSummary`], which this module prices with Eqs. 1 and 2.

use crate::costs::AlgorithmCosts;
use crate::params::MachineParams;
use crate::Real;

/// Condensed per-run counters from an execution on `p` processors.
///
/// `flops`/`words`/`messages` are **critical-path** (max over ranks)
/// per-processor counts — the quantities priced by Eq. 1 — while the
/// `total_*` fields are sums over ranks, used for aggregate energy
/// accounting and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionSummary {
    /// Number of processors.
    pub p: u64,
    /// Max over ranks of flops executed.
    pub flops: Real,
    /// Max over ranks of words sent.
    pub words: Real,
    /// Max over ranks of messages sent.
    pub messages: Real,
    /// Max over ranks of the memory high-water mark, in words.
    pub mem_peak_words: Real,
    /// Sum over ranks of flops.
    pub total_flops: Real,
    /// Sum over ranks of words sent.
    pub total_words: Real,
    /// Sum over ranks of messages sent.
    pub total_messages: Real,
    /// Virtual makespan reported by the simulator, if any (seconds).
    /// When present it is used as `T` instead of re-deriving from the
    /// critical-path counts (the simulator's message-DAG makespan is at
    /// least as accurate as the no-overlap sum of Eq. 1).
    pub makespan: Option<Real>,
}

/// The priced outcome of a run: runtime, energy and average power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// Runtime `T` in seconds.
    pub time: Real,
    /// Energy `E` in joules.
    pub energy: Real,
    /// Average power `P = E/T` in watts.
    pub power: Real,
}

impl ExecutionSummary {
    /// The critical-path per-processor costs as an [`AlgorithmCosts`].
    pub fn critical_path_costs(&self) -> AlgorithmCosts {
        AlgorithmCosts {
            flops: self.flops,
            words: self.words,
            messages: self.messages,
        }
    }

    /// Average per-processor costs (totals divided by `p`).
    pub fn average_costs(&self) -> AlgorithmCosts {
        let pf = self.p as Real;
        AlgorithmCosts {
            flops: self.total_flops / pf,
            words: self.total_words / pf,
            messages: self.total_messages / pf,
        }
    }

    /// Price this execution on a machine.
    ///
    /// * `T` is the simulator makespan when available, otherwise Eq. 1 on
    ///   the critical-path counts.
    /// * `E` follows Eq. 2, with the flop/word/message energies paid on
    ///   **totals** (each op costs energy wherever it ran) and the
    ///   `δe·M·T + εe·T` terms paid by all `p` processors for the full
    ///   runtime, using the peak memory footprint.
    pub fn price(&self, params: &MachineParams) -> Measured {
        let t = self
            .makespan
            .unwrap_or_else(|| params.time(&self.critical_path_costs()));
        let energy = params.gamma_e * self.total_flops
            + params.beta_e * self.total_words
            + params.alpha_e * self.total_messages
            + (self.p as Real) * (params.delta_e * self.mem_peak_words + params.epsilon_e) * t;
        Measured {
            time: t,
            energy,
            power: if t > 0.0 { energy / t } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-6)
            .gamma_e(2e-9)
            .beta_e(3e-8)
            .alpha_e(4e-6)
            .delta_e(1e-10)
            .epsilon_e(0.5)
            .max_message_words(1024.0)
            .build()
            .unwrap()
    }

    fn summary() -> ExecutionSummary {
        ExecutionSummary {
            p: 4,
            flops: 1000.0,
            words: 100.0,
            messages: 10.0,
            mem_peak_words: 5000.0,
            total_flops: 3800.0,
            total_words: 380.0,
            total_messages: 38.0,
            makespan: None,
        }
    }

    #[test]
    fn time_uses_critical_path_when_no_makespan() {
        let s = summary();
        let mp = params();
        let m = s.price(&mp);
        let expected_t = 1e-9 * 1000.0 + 1e-8 * 100.0 + 1e-6 * 10.0;
        assert!((m.time - expected_t).abs() < 1e-18);
    }

    #[test]
    fn time_prefers_makespan() {
        let mut s = summary();
        s.makespan = Some(42.0);
        let m = s.price(&params());
        assert_eq!(m.time, 42.0);
    }

    #[test]
    fn energy_matches_hand_computation() {
        let s = summary();
        let mp = params();
        let m = s.price(&mp);
        let t = m.time;
        let expected =
            2e-9 * 3800.0 + 3e-8 * 380.0 + 4e-6 * 38.0 + 4.0 * (1e-10 * 5000.0 + 0.5) * t;
        assert!((m.energy - expected).abs() / expected < 1e-12);
        assert!((m.power - expected / t).abs() / m.power < 1e-12);
    }

    #[test]
    fn uniform_ranks_make_totals_p_times_max() {
        // When every rank does identical work, pricing via totals equals
        // the closed-form p·(per-processor) structure of Eq. 2.
        let mp = params();
        let per = AlgorithmCosts {
            flops: 1000.0,
            words: 100.0,
            messages: 10.0,
        };
        let p = 8u64;
        let s = ExecutionSummary {
            p,
            flops: per.flops,
            words: per.words,
            messages: per.messages,
            mem_peak_words: 5000.0,
            total_flops: per.flops * p as Real,
            total_words: per.words * p as Real,
            total_messages: per.messages * p as Real,
            makespan: None,
        };
        let measured = s.price(&mp);
        let t = mp.time(&per);
        let closed = mp.energy(p, &per, 5000.0, t);
        assert!((measured.energy - closed).abs() / closed < 1e-12);
    }

    #[test]
    fn average_costs_divide_totals() {
        let s = summary();
        let avg = s.average_costs();
        assert!((avg.flops - 950.0).abs() < 1e-12);
        assert!((avg.words - 95.0).abs() < 1e-12);
        assert!((avg.messages - 9.5).abs() < 1e-12);
    }

    #[test]
    fn zero_runtime_yields_zero_power() {
        let mp = params();
        let s = ExecutionSummary {
            p: 1,
            flops: 0.0,
            words: 0.0,
            messages: 0.0,
            mem_peak_words: 0.0,
            total_flops: 0.0,
            total_words: 0.0,
            total_messages: 0.0,
            makespan: None,
        };
        let m = s.price(&mp);
        assert_eq!(m.power, 0.0);
        assert_eq!(m.energy, 0.0);
    }
}
