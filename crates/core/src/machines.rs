//! Machine database: the §VI case-study machine (paper Table I) and the
//! processor comparison set (paper Table II).

use crate::params::MachineParams;
use crate::Real;

/// The dual-socket Intel Sandy Bridge ("Jaketown") server of paper §VI,
/// with the exact Table I parameter values. In the case study each
/// *socket* is one "processor" of the model (`p = 2`).
///
/// Derivation notes from the paper, §VI:
/// * `γe` = peak single-precision flops ÷ die TDP (worst case);
/// * `γt` = 1 / peak single-precision flops;
/// * `εe = 0` and `αe = 0` are acknowledged simplifications;
/// * `βe` = (time per word) × link active power;
/// * `m = M` (whole memory may be one message).
pub fn jaketown() -> MachineParams {
    MachineParams::builder()
        .gamma_t(2.5202e-12)
        .beta_t(1.56e-10)
        .alpha_t(6.00e-8)
        .gamma_e(3.78024e-10)
        .beta_e(3.78024e-10)
        .alpha_e(0.0)
        .delta_e(5.7742e-9)
        .epsilon_e(0.0)
        .max_message_words(17_179_869_184.0)
        .mem_words(17_179_869_184.0)
        .build()
        .expect("Table I parameters are valid")
}

/// Raw specification of one processor row of paper Table II, from which
/// `γt`, `γe` and GFLOPS/W are derived.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Marketing name, as printed in Table II.
    pub name: &'static str,
    /// Core clock, GHz.
    pub freq_ghz: Real,
    /// Physical core count.
    pub cores: u32,
    /// Single-precision SIMD lane count per core.
    pub simd_width: u32,
    /// Single-precision flops per SIMD lane per cycle (2 where a fused or
    /// dual-issue multiply-add exists, 1 otherwise).
    pub flops_per_lane_cycle: Real,
    /// Thermal design power of the package, watts.
    pub tdp_w: Real,
    /// Optional on-package GPU contribution `(freq GHz, execution units,
    /// lanes, flops/lane/cycle)` — the parenthesized figures of the Ivy
    /// Bridge rows in Table II.
    pub gpu: Option<(Real, u32, u32, Real)>,
}

impl MachineSpec {
    /// Peak single-precision GFLOP/s (CPU + integrated GPU if present).
    pub fn peak_gflops(&self) -> Real {
        let cpu = self.freq_ghz
            * self.cores as Real
            * self.simd_width as Real
            * self.flops_per_lane_cycle;
        let gpu = self
            .gpu
            .map(|(f, eu, lanes, fpc)| f * eu as Real * lanes as Real * fpc)
            .unwrap_or(0.0);
        cpu + gpu
    }

    /// `γt` in seconds per flop: the reciprocal of peak throughput.
    pub fn gamma_t(&self) -> Real {
        1.0 / (self.peak_gflops() * 1e9)
    }

    /// `γe` in joules per flop: TDP divided by peak throughput (the
    /// paper's deliberately pessimistic choice).
    pub fn gamma_e(&self) -> Real {
        self.tdp_w / (self.peak_gflops() * 1e9)
    }

    /// Peak efficiency in GFLOPS per watt.
    pub fn gflops_per_watt(&self) -> Real {
        self.peak_gflops() / self.tdp_w
    }
}

/// Interconnect description for deriving link prices the way §VI does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: Real,
    /// Link latency in seconds per message.
    pub latency_s: Real,
    /// Active link power in watts (energy per word = `βt · P_active`).
    pub active_power_w: Real,
    /// Word size in bytes (4 for the paper's single-precision words).
    pub word_bytes: Real,
}

/// Memory description for deriving `δe` the way §VI does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSpec {
    /// Total DRAM power kept on during the run, watts.
    pub power_w: Real,
    /// Capacity in words.
    pub capacity_words: Real,
}

impl MachineSpec {
    /// Build full machine-model parameters from this processor plus an
    /// interconnect and memory description, following the §VI
    /// derivations: `γt = 1/peak`, `γe = TDP/peak`,
    /// `βt = word_bytes/bandwidth`, `βe = βt·P_link`, `αt = latency`,
    /// `δe = P_dram/capacity`.
    pub fn to_machine_params(&self, link: LinkSpec, dram: DramSpec) -> MachineParams {
        let beta_t = link.word_bytes / link.bandwidth_bytes_per_s;
        MachineParams::builder()
            .gamma_t(self.gamma_t())
            .beta_t(beta_t)
            .alpha_t(link.latency_s)
            .gamma_e(self.gamma_e())
            .beta_e(beta_t * link.active_power_w)
            .alpha_e(0.0)
            .delta_e(dram.power_w / dram.capacity_words)
            .epsilon_e(0.0)
            .max_message_words(dram.capacity_words)
            .mem_words(dram.capacity_words)
            .build()
            .expect("spec-derived parameters are valid")
    }
}

/// An embedded SoC environment (§VII: "embedded"): slow cores, tiny
/// memory, on-chip network — low latency, modest bandwidth. Parameters
/// follow the ARM Cortex A9 row of Table II with a NoC-class link.
pub fn embedded_soc() -> MachineParams {
    let arm = &table2()[10]; // Cortex A9 @ 0.8 GHz
    arm.to_machine_params(
        LinkSpec {
            bandwidth_bytes_per_s: 4e9,
            latency_s: 1e-7,
            active_power_w: 0.1,
            word_bytes: 4.0,
        },
        DramSpec {
            power_w: 0.2,
            capacity_words: 128e6,
        },
    )
}

/// A cluster node environment (§VII: "cluster"): the Table I server with
/// an InfiniBand-class network.
pub fn cluster_node() -> MachineParams {
    let sb = &table2()[0];
    sb.to_machine_params(
        LinkSpec {
            bandwidth_bytes_per_s: 25.6e9,
            latency_s: 6e-8,
            active_power_w: 2.15,
            word_bytes: 4.0,
        },
        DramSpec {
            power_w: 99.2,
            capacity_words: 17_179_869_184.0,
        },
    )
}

/// A cloud environment (§VII: "cloud"): same silicon as the cluster but
/// behind a virtualized Ethernet fabric — an order of magnitude less
/// bandwidth and three orders more latency, which is exactly what makes
/// 2.5D LU's non-scaling latency term bite.
pub fn cloud_instance() -> MachineParams {
    let sb = &table2()[0];
    sb.to_machine_params(
        LinkSpec {
            bandwidth_bytes_per_s: 1.25e9, // 10 GbE
            latency_s: 5e-5,               // virtualized stack
            active_power_w: 5.0,
            word_bytes: 4.0,
        },
        DramSpec {
            power_w: 99.2,
            capacity_words: 17_179_869_184.0,
        },
    )
}

/// The eleven processors of paper Table II, with their published
/// specification inputs. Derived columns (`γt`, `γe`, GFLOPS/W) are
/// computed by [`MachineSpec`] methods and verified against the paper's
/// printed values in this module's tests.
pub fn table2() -> Vec<MachineSpec> {
    vec![
        MachineSpec {
            name: "Intel Sandy Bridge 2687W",
            freq_ghz: 3.1,
            cores: 8,
            simd_width: 8,
            flops_per_lane_cycle: 2.0,
            tdp_w: 150.0,
            gpu: None,
        },
        MachineSpec {
            name: "Intel Ivy Bridge 3770K",
            freq_ghz: 3.5,
            cores: 4,
            simd_width: 8,
            flops_per_lane_cycle: 2.0,
            tdp_w: 77.0,
            gpu: Some((0.65, 16, 8, 1.0)),
        },
        MachineSpec {
            name: "Intel Ivy Bridge 3770T",
            freq_ghz: 2.5,
            cores: 4,
            simd_width: 8,
            flops_per_lane_cycle: 2.0,
            tdp_w: 45.0,
            gpu: Some((0.65, 16, 8, 1.0)),
        },
        MachineSpec {
            name: "Intel Westmere-EX E7-8870",
            freq_ghz: 2.4,
            cores: 10,
            simd_width: 4,
            flops_per_lane_cycle: 2.0,
            tdp_w: 130.0,
            gpu: None,
        },
        MachineSpec {
            name: "Intel Beckton X7560",
            freq_ghz: 2.26,
            cores: 8,
            simd_width: 4,
            flops_per_lane_cycle: 2.0,
            tdp_w: 130.0,
            gpu: None,
        },
        MachineSpec {
            name: "Intel Atom D2500",
            freq_ghz: 1.86,
            cores: 2,
            simd_width: 4,
            flops_per_lane_cycle: 2.0,
            tdp_w: 10.0,
            gpu: None,
        },
        MachineSpec {
            name: "Intel Atom N2800",
            freq_ghz: 1.86,
            cores: 2,
            simd_width: 4,
            flops_per_lane_cycle: 2.0,
            tdp_w: 6.5,
            gpu: None,
        },
        MachineSpec {
            name: "Nvidia GTX480",
            freq_ghz: 1.401,
            cores: 480,
            simd_width: 1,
            flops_per_lane_cycle: 2.0,
            tdp_w: 250.0,
            gpu: None,
        },
        MachineSpec {
            name: "Nvidia GTX590",
            freq_ghz: 1.215,
            cores: 1024,
            simd_width: 1,
            flops_per_lane_cycle: 2.0,
            tdp_w: 365.0,
            gpu: None,
        },
        MachineSpec {
            name: "ARM Cortex A9 (2 GHz)",
            freq_ghz: 2.0,
            cores: 2,
            simd_width: 2,
            flops_per_lane_cycle: 1.0,
            tdp_w: 1.9,
            gpu: None,
        },
        MachineSpec {
            name: "ARM Cortex A9 (0.8 GHz)",
            freq_ghz: 0.8,
            cores: 2,
            simd_width: 2,
            flops_per_lane_cycle: 1.0,
            tdp_w: 0.5,
            gpu: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table II, printed derived columns:
    /// (name, peak GFLOP/s, γt, γe, GFLOPS/W).
    const PAPER_ROWS: [(&str, Real, Real, Real, Real); 11] = [
        (
            "Intel Sandy Bridge 2687W",
            396.80,
            2.52e-12,
            3.78e-10,
            2.645,
        ),
        ("Intel Ivy Bridge 3770K", 307.20, 3.26e-12, 2.51e-10, 3.990),
        ("Intel Ivy Bridge 3770T", 243.20, 4.11e-12, 1.85e-10, 5.404),
        (
            "Intel Westmere-EX E7-8870",
            192.00,
            5.21e-12,
            6.77e-10,
            1.477,
        ),
        ("Intel Beckton X7560", 144.64, 6.91e-12, 8.99e-10, 1.113),
        ("Intel Atom D2500", 29.76, 3.36e-11, 3.36e-10, 2.976),
        ("Intel Atom N2800", 29.76, 3.36e-11, 2.18e-10, 4.578),
        ("Nvidia GTX480", 1344.96, 7.44e-13, 1.86e-10, 5.380),
        ("Nvidia GTX590", 2488.32, 4.02e-13, 1.47e-10, 6.817),
        ("ARM Cortex A9 (2 GHz)", 8.00, 1.25e-10, 2.38e-10, 4.211),
        ("ARM Cortex A9 (0.8 GHz)", 3.20, 3.13e-10, 1.56e-10, 6.400),
    ];

    fn close(a: Real, b: Real, rel: Real) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn table2_has_eleven_rows() {
        assert_eq!(table2().len(), 11);
    }

    #[test]
    fn derived_columns_match_paper_within_rounding() {
        let specs = table2();
        for (spec, row) in specs.iter().zip(PAPER_ROWS.iter()) {
            assert_eq!(spec.name, row.0);
            assert!(
                close(spec.peak_gflops(), row.1, 1e-3),
                "{}: peak {} vs paper {}",
                spec.name,
                spec.peak_gflops(),
                row.1
            );
            assert!(
                close(spec.gamma_t(), row.2, 5e-3),
                "{}: gamma_t {} vs paper {}",
                spec.name,
                spec.gamma_t(),
                row.2
            );
            assert!(
                close(spec.gamma_e(), row.3, 5e-3),
                "{}: gamma_e {} vs paper {}",
                spec.name,
                spec.gamma_e(),
                row.3
            );
            assert!(
                close(spec.gflops_per_watt(), row.4, 1e-3),
                "{}: eff {} vs paper {}",
                spec.name,
                spec.gflops_per_watt(),
                row.4
            );
        }
    }

    #[test]
    fn no_table2_machine_reaches_10_gflops_per_watt() {
        // Paper §VII: "none are able to approach even 10 GFLOPS/W."
        for spec in table2() {
            assert!(spec.gflops_per_watt() < 10.0, "{}", spec.name);
        }
    }

    #[test]
    fn efficiency_poles_are_gpus_and_low_power_parts() {
        // Paper §VII: the two poles are high-power GPUs and low-power
        // slow processors. The top-3 by efficiency should contain the
        // GTX590 and the 0.8 GHz Cortex A9.
        let mut specs = table2();
        specs.sort_by(|a, b| {
            b.gflops_per_watt()
                .partial_cmp(&a.gflops_per_watt())
                .unwrap()
        });
        let top: Vec<&str> = specs.iter().take(3).map(|s| s.name).collect();
        assert!(top.contains(&"Nvidia GTX590"));
        assert!(top.contains(&"ARM Cortex A9 (0.8 GHz)"));
    }

    #[test]
    fn jaketown_matches_table1() {
        let j = jaketown();
        assert_eq!(j.gamma_t, 2.5202e-12);
        assert_eq!(j.beta_t, 1.56e-10);
        assert_eq!(j.alpha_t, 6.00e-8);
        assert_eq!(j.gamma_e, 3.78024e-10);
        assert_eq!(j.beta_e, 3.78024e-10);
        assert_eq!(j.alpha_e, 0.0);
        assert_eq!(j.delta_e, 5.7742e-9);
        assert_eq!(j.epsilon_e, 0.0);
        assert_eq!(j.max_message_words, 17_179_869_184.0);
        assert_eq!(j.mem_words, 17_179_869_184.0);
    }

    #[test]
    fn jaketown_gamma_matches_sandy_bridge_spec() {
        // Table I's γt/γe are the Table II Sandy Bridge derivations.
        let j = jaketown();
        let sb = &table2()[0];
        assert!(close(j.gamma_t, sb.gamma_t(), 1e-4));
        assert!(close(j.gamma_e, sb.gamma_e(), 1e-4));
    }

    #[test]
    fn spec_derivation_reproduces_table1() {
        // Building the Sandy Bridge + QPI + DRAM machine from specs must
        // land on the Table I values (up to the paper's rounding).
        let derived = cluster_node();
        let printed = jaketown();
        assert!(close(derived.gamma_t, printed.gamma_t, 1e-3));
        assert!(close(derived.gamma_e, printed.gamma_e, 1e-3));
        assert!(close(derived.beta_t, printed.beta_t, 5e-3));
        assert!(close(derived.delta_e, printed.delta_e, 5e-3));
        assert!(close(derived.alpha_t, printed.alpha_t, 1e-9));
    }

    #[test]
    fn environment_presets_are_ordered_sensibly() {
        let emb = embedded_soc();
        let clu = cluster_node();
        let clo = cloud_instance();
        // Embedded: slowest compute; cloud: worst latency and bandwidth.
        assert!(emb.gamma_t > clu.gamma_t);
        assert!(clo.alpha_t > 100.0 * clu.alpha_t);
        assert!(clo.beta_t > clu.beta_t);
        // All validate.
        for m in [emb, clu, clo] {
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn cloud_latency_hurts_lu_more_than_matmul() {
        // §VII open problem, quantified: moving from cluster to cloud at
        // the same (n, p, M) inflates LU's runtime by a larger factor
        // than matmul's, because LU's S = p·√M/n term is latency-bound.
        use crate::costs::{Algorithm, ClassicalMatMul, Lu25d};
        let n = 1u64 << 14;
        let p = 1u64 << 10;
        let m = ClassicalMatMul.min_memory(n, p) * 2.0;
        let t = |mp: &MachineParams, alg: &dyn Algorithm| {
            let c = alg.costs(n, p, m, mp).unwrap();
            mp.time(&c)
        };
        let clu = cluster_node();
        let clo = cloud_instance();
        let mm_slowdown = t(&clo, &ClassicalMatMul) / t(&clu, &ClassicalMatMul);
        let lu_slowdown = t(&clo, &Lu25d) / t(&clu, &Lu25d);
        assert!(
            lu_slowdown > mm_slowdown,
            "LU should suffer more from cloud latency: lu {lu_slowdown} vs mm {mm_slowdown}"
        );
    }

    #[test]
    fn jaketown_beta_t_matches_qpi_bandwidth() {
        // βt = 4 bytes/word ÷ 25.6 GB/s = 1.5625e-10 s (Table I rounds to
        // 1.56e-10).
        let derived = 4.0 / 25.6e9;
        assert!(close(jaketown().beta_t, derived, 2e-3));
    }
}
