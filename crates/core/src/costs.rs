//! Per-processor computation/communication cost models (paper §IV).
//!
//! Each algorithm is summarized by its per-processor counts along the
//! critical path:
//!
//! * `F` — floating-point operations,
//! * `W` — words sent,
//! * `S` — messages sent,
//!
//! as functions of the problem size `n`, processor count `p` and memory
//! used per processor `M`. These are the quantities priced by the time
//! model (Eq. 1) and the energy model (Eq. 2).
//!
//! The central phenomenon of the paper lives in these formulas: for the
//! **data-replicating algorithms** (2.5D classical matmul, CAPS Strassen,
//! the replicating direct n-body algorithm) the communication terms `W`
//! and `S` depend on `p` and `M` jointly such that, holding `M` fixed,
//! *every* term of `T` decays like `1/p` over a whole range of `p` — while
//! every term of `E = p·(...)` is independent of `p`.

use crate::bounds::ScalingRange;
use crate::error::CoreError;
use crate::params::MachineParams;
use crate::Real;

/// Per-processor critical-path costs of one algorithm execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmCosts {
    /// Floating-point operations per processor, `F`.
    pub flops: Real,
    /// Words sent per processor, `W`.
    pub words: Real,
    /// Messages sent per processor, `S`.
    pub messages: Real,
}

impl AlgorithmCosts {
    /// Component-wise sum (useful when composing phases of an algorithm).
    pub fn plus(&self, other: &AlgorithmCosts) -> AlgorithmCosts {
        AlgorithmCosts {
            flops: self.flops + other.flops,
            words: self.words + other.words,
            messages: self.messages + other.messages,
        }
    }
}

/// Relative tolerance applied when checking `M` against the validity
/// range, so that callers computing the boundary themselves (e.g.
/// `max_useful_memory`) are not rejected by floating-point noise.
const M_RANGE_TOL: Real = 1e-9;

/// A cost-modelled algorithm from paper §IV.
///
/// Implementations provide the `(F, W, S)` model, its `M`-validity range
/// and the perfect-strong-scaling range (if one exists).
pub trait Algorithm {
    /// Human-readable name, e.g. `"2.5D classical matrix multiplication"`.
    fn name(&self) -> &'static str;

    /// Total flops across all processors, `p·F`.
    fn total_flops(&self, n: u64) -> Real;

    /// Smallest memory per processor that holds one copy of the data
    /// spread over `p` processors (`n²/p` for matmul, `n/p` for n-body,
    /// `n/p` for FFT).
    fn min_memory(&self, n: u64, p: u64) -> Real;

    /// Largest memory per processor the algorithm can exploit to reduce
    /// communication (`n²/p^(2/3)` for classical matmul, `n²/p^(2/ω)` for
    /// Strassen-like, `n/√p` for n-body). For the FFT this equals
    /// [`Algorithm::min_memory`]: extra memory is useless.
    fn max_useful_memory(&self, n: u64, p: u64) -> Real;

    /// The per-processor cost model `(F, W, S)` at memory `M = m_words`.
    ///
    /// Returns [`CoreError::MemoryOutOfRange`] when `m_words` lies outside
    /// `[min_memory, max_useful_memory]` (the formulas are only attained
    /// by real algorithms in that range) and
    /// [`CoreError::InvalidConfiguration`] for degenerate `n`/`p`.
    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError>;

    /// Like [`Algorithm::costs`] but clamps `m_words` into the valid
    /// range first. Convenient for parameter sweeps.
    fn costs_clamped(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let lo = self.min_memory(n, p);
        let hi = self.max_useful_memory(n, p);
        self.costs(n, p, m_words.clamp(lo, hi), params)
    }

    /// The perfect strong scaling range `[pmin, pmax]` for fixed problem
    /// size `n` and fixed memory per processor `mem`: within it,
    /// increasing `p` divides every term of `T` by the same factor and
    /// leaves `E` unchanged. `None` when the algorithm has no such range
    /// (FFT: the latency term `S` does not scale).
    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange>;

    /// Check the configuration and return the validated memory range.
    fn memory_range(&self, n: u64, p: u64) -> Result<(Real, Real), CoreError> {
        if n < 2 || p == 0 {
            return Err(CoreError::InvalidConfiguration(format!(
                "{}: need n >= 2 and p >= 1, got n = {n}, p = {p}",
                self.name()
            )));
        }
        Ok((self.min_memory(n, p), self.max_useful_memory(n, p)))
    }
}

fn check_memory(m: Real, lo: Real, hi: Real) -> Result<(), CoreError> {
    if !(m.is_finite() && m > 0.0) || m < lo * (1.0 - M_RANGE_TOL) || m > hi * (1.0 + M_RANGE_TOL) {
        return Err(CoreError::MemoryOutOfRange {
            m,
            min: lo,
            max: hi,
        });
    }
    Ok(())
}

/// Classical `O(n³)` matrix multiplication executed with the 2.5D
/// algorithm of Solomonik & Demmel (paper Eq. 8):
///
/// `F = n³/p`, `W = n³/(p·√M)`, `S = W/m`, valid for
/// `n²/p ≤ M ≤ n²/p^(2/3)`.
///
/// At `M = n²/p` this is the classical 2D algorithm (Cannon / SUMMA); at
/// `M = n²/p^(2/3)` it is 3D matmul (Agarwal et al.).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassicalMatMul;

impl Algorithm for ClassicalMatMul {
    fn name(&self) -> &'static str {
        "2.5D classical matrix multiplication"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf * nf
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / (p as Real).powf(2.0 / 3.0)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let f = self.total_flops(n) / p as Real;
        let w = self.total_flops(n) / (p as Real * m_words.sqrt());
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange> {
        let nf = n as Real;
        Some(ScalingRange {
            p_min: nf * nf / mem,
            p_max: nf * nf * nf / mem.powf(1.5),
        })
    }
}

/// Strassen-like fast matrix multiplication with exponent `ω0`, executed
/// with the CAPS algorithm (paper §IV "Strassen's matrix multiplication"):
///
/// `F = n^ω0/p`, `W = n^ω0/(p·M^(ω0/2 − 1))`, `S = W/m`, valid for
/// `n²/p ≤ M ≤ n²/p^(2/ω0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrassenMatMul {
    /// The exponent `ω0` (`2 < ω0 ≤ 3`); `log2(7)` for Strassen proper.
    pub omega: Real,
}

impl Default for StrassenMatMul {
    fn default() -> Self {
        StrassenMatMul {
            omega: crate::STRASSEN_OMEGA,
        }
    }
}

impl Algorithm for StrassenMatMul {
    fn name(&self) -> &'static str {
        "CAPS fast matrix multiplication"
    }

    fn total_flops(&self, n: u64) -> Real {
        (n as Real).powf(self.omega)
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / (p as Real).powf(2.0 / self.omega)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        if !(self.omega > 2.0 && self.omega <= 3.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "fast matmul exponent omega = {} outside (2, 3]",
                self.omega
            )));
        }
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let f = self.total_flops(n) / p as Real;
        let w = self.total_flops(n) / (p as Real * m_words.powf(self.omega / 2.0 - 1.0));
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange> {
        let nf = n as Real;
        Some(ScalingRange {
            p_min: nf * nf / mem,
            p_max: nf.powf(self.omega) / mem.powf(self.omega / 2.0),
        })
    }
}

/// Dense LU decomposition with the 2.5D algorithm (paper §IV "LU
/// factorization"):
///
/// `F = n³/p`, `W = n³/(p·√M)`, `S = n²/W = p·√M/n`.
///
/// The bandwidth term strong-scales exactly like 2.5D matmul, but the
/// latency term **grows** with `p` because of the critical path — LU has
/// no perfect strong scaling range in this model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lu25d;

impl Algorithm for Lu25d {
    fn name(&self) -> &'static str {
        "2.5D LU factorization"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf * nf
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / (p as Real).powf(2.0 / 3.0)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        _params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let f = self.total_flops(n) / p as Real;
        let w = self.total_flops(n) / (p as Real * m_words.sqrt());
        // S = n²/W — the LU latency lower bound (attained by 2.5D LU),
        // larger than W/m and growing with p.
        let s = nf * nf / w;
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: s,
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        // The latency term S = p√M/n grows with p: no perfect range.
        None
    }
}

/// Dense Cholesky factorization (`A = L·Lᵀ`, SPD inputs) — one of the
/// "direct linear algebra" factorizations the paper's bounds cover
/// (§III). Cost shape mirrors LU at half the arithmetic:
/// `F = n³/(3p)`, `W = n³/(3·p·√M)`, `S = p·√M/n` (the same non-scaling
/// critical-path latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cholesky25d;

impl Algorithm for Cholesky25d {
    fn name(&self) -> &'static str {
        "2.5D Cholesky factorization"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf * nf / 3.0
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        let nf = n as Real;
        nf * nf / (p as Real).powf(2.0 / 3.0)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        _params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let f = self.total_flops(n) / p as Real;
        let w = self.total_flops(n) / (p as Real * m_words.sqrt());
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: p as Real * m_words.sqrt() / nf,
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        None // same critical-path latency obstruction as LU
    }
}

/// The direct `O(n²)` n-body problem with the data-replicating algorithm
/// of Driscoll et al. (paper §IV "Direct n-body problem"):
///
/// `F = f·n²/p`, `W = n²/(p·M)`, `S = W/m`, valid for `n/p ≤ M ≤ n/√p`,
/// where `f` is the flop count of one pairwise interaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectNBody {
    /// Flops per pairwise interaction (`f` in the paper).
    pub flops_per_interaction: Real,
}

impl Default for DirectNBody {
    fn default() -> Self {
        // A softened gravitational interaction in 3D costs on the order
        // of 20 flops (3 subs, 3 mults + 2 adds for r², rsqrt ≈ 5,
        // 3 mults, 3 fused accumulates).
        DirectNBody {
            flops_per_interaction: 20.0,
        }
    }
}

impl Algorithm for DirectNBody {
    fn name(&self) -> &'static str {
        "data-replicating direct n-body"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        self.flops_per_interaction * nf * nf
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        n as Real / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        n as Real / (p as Real).sqrt()
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        if !(self.flops_per_interaction > 0.0) {
            return Err(CoreError::InvalidConfiguration(format!(
                "flops_per_interaction = {} must be positive",
                self.flops_per_interaction
            )));
        }
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let f = self.total_flops(n) / p as Real;
        let w = nf * nf / (p as Real * m_words);
        Ok(AlgorithmCosts {
            flops: f,
            words: w,
            messages: w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange> {
        let nf = n as Real;
        Some(ScalingRange {
            p_min: nf / mem,
            p_max: nf * nf / (mem * mem),
        })
    }
}

/// Dense matrix–vector multiplication (BLAS2), the paper's §III example
/// of an **I/O-dominated** kernel: `F = 2n²/p` but `I + O = Θ(n²/p)` as
/// well, so the `max(I+O, F/√M)` lower bound is dominated by the data
/// itself — extra memory buys nothing, and the `Θ(n)` per-rank vector
/// exchange (allgather of `x`) means no perfect strong scaling range.
///
/// Costs for the 1D row-blocked algorithm: `F = 2n²/p`,
/// `W = n·(p−1)/p ≈ n` (gathering the input vector), `S = W/m` with a
/// `log p`-round allgather tree floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatVec;

impl Algorithm for MatVec {
    fn name(&self) -> &'static str {
        "1D row-blocked matrix-vector multiplication"
    }

    fn total_flops(&self, n: u64) -> Real {
        2.0 * (n as Real) * (n as Real)
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        // Matrix block + full vector.
        let nf = n as Real;
        nf * nf / p as Real + nf
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        self.min_memory(n, p) // extra memory is useless
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let pf = p as Real;
        let w = nf * (pf - 1.0) / pf;
        Ok(AlgorithmCosts {
            flops: 2.0 * nf * nf / pf,
            words: w,
            messages: (w / params.max_message_words).max(pf.log2().max(0.0)),
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        None
    }
}

/// Parallel FFT with a **tree-based all-to-all** (paper §IV "Fast Fourier
/// transform"):
///
/// `F = n·log₂n/p`, `W = n·log₂p/p`, `S = log₂p`, with `M = n/p` always
/// (extra memory is useless). The message count does not scale with `p`:
/// no perfect strong scaling range exists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FftTree;

impl Algorithm for FftTree {
    fn name(&self) -> &'static str {
        "parallel FFT (tree all-to-all)"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf.log2()
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        n as Real / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        self.min_memory(n, p)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        _params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let pf = p as Real;
        Ok(AlgorithmCosts {
            flops: nf * nf.log2() / pf,
            words: nf * pf.log2() / pf,
            messages: pf.log2().max(0.0),
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        None
    }
}

/// Parallel FFT with a **naive all-to-all**: `F = n·log₂n/p`, `W = n/p`,
/// `S = p` (paper §IV). Fewer words than [`FftTree`] but a message count
/// that *grows* with `p`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FftAllToAll;

impl Algorithm for FftAllToAll {
    fn name(&self) -> &'static str {
        "parallel FFT (naive all-to-all)"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf.log2()
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        n as Real / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        self.min_memory(n, p)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        _params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let pf = p as Real;
        Ok(AlgorithmCosts {
            flops: nf * nf.log2() / pf,
            words: nf / pf,
            messages: pf,
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        None
    }
}

/// Distributed sample sort by regular sampling (Scquizzato–Silvestri
/// bound family, arXiv:1307.1805):
///
/// `F = (n/p)·log₂n` comparisons, `W = (n/p)·(p−1)/p + (p−1)²` (the
/// bucket all-to-all — every key crosses the network once, attaining
/// the `Ω(n/p)` sorting bandwidth bound — plus the splitter-sample
/// exchange), `S = 2(p−1)`.
///
/// **No perfect strong scaling range**: `S` *grows* linearly with `p`,
/// so the latency term `αt·S` of Eq. 1 rises instead of falling — the
/// same obstruction as the naive-all-to-all FFT, quantified here for
/// sorting. Extra memory does not help (`max_useful_memory =
/// min_memory`): the all-to-all volume is fixed by the data, and no
/// replication scheme amortizes the `Θ(p)` peer fan-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleSortModel;

impl Algorithm for SampleSortModel {
    fn name(&self) -> &'static str {
        "distributed sample sort (regular sampling)"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        nf * nf.log2()
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        // Local block plus the received bucket.
        2.0 * n as Real / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        self.min_memory(n, p)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let pf = p as Real;
        let s = pf - 1.0;
        let w = (nf / pf) * s / pf + s * s;
        Ok(AlgorithmCosts {
            flops: (nf / pf) * nf.log2(),
            words: w,
            // 2(p−1) peer transfers, each split at m words.
            messages: 2.0 * s + w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, _n: u64, _mem: Real) -> Option<ScalingRange> {
        None
    }
}

/// Iterated halo-exchange stencil: `iters` sweeps of a
/// `(2h+1) × (2h+1)` box stencil over a periodic `n × n` grid on a
/// `√p × √p` tile decomposition (`b = n/√p`):
///
/// `F = iters·(2h+1)²·n²/p` (volume), `W = iters·(2hb + 2h(b+2h))`
/// (surface — two row halos, two corner-carrying column halos),
/// `S = 4·iters` plus message splitting.
///
/// **Perfect strong scaling band**: `S` is *constant* in `p` and the
/// `F` term shrinks like `1/p`, so `T ∝ 1/p` holds while the volume
/// term dominates the surface term — from `pmin = n²/M` (the tile must
/// fit in memory) up to `pmax = (n/2h)²`, the surface-to-volume limit
/// where the tile side shrinks to `2h` and halo cells outnumber
/// interior cells (communication per updated cell stops falling). Past
/// `pmax` the `1/√p` surface term takes over and `T·p` diverges —
/// unlike matmul there is no replication scheme in this model to push
/// the band further (time-tiling would; it trades the band's upper
/// edge against `δe·M` energy exactly like 2.5D replication).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloStencilModel {
    /// Halo width `h ≥ 1` (stencil radius).
    pub halo: u64,
    /// Number of sweeps.
    pub iters: u64,
}

impl Default for HaloStencilModel {
    fn default() -> Self {
        HaloStencilModel { halo: 1, iters: 1 }
    }
}

impl Algorithm for HaloStencilModel {
    fn name(&self) -> &'static str {
        "iterated halo-exchange stencil"
    }

    fn total_flops(&self, n: u64) -> Real {
        let nf = n as Real;
        let k = (2 * self.halo + 1) as Real;
        self.iters as Real * k * k * nf * nf
    }

    fn min_memory(&self, n: u64, p: u64) -> Real {
        // The rank's tile (the halo-extended buffer is lower order
        // inside the scaling band and ignored like matmul's constants).
        let nf = n as Real;
        nf * nf / p as Real
    }

    fn max_useful_memory(&self, n: u64, p: u64) -> Real {
        // The plain halo algorithm cannot exploit extra memory.
        self.min_memory(n, p)
    }

    fn costs(
        &self,
        n: u64,
        p: u64,
        m_words: Real,
        params: &MachineParams,
    ) -> Result<AlgorithmCosts, CoreError> {
        if self.halo == 0 || self.iters == 0 {
            return Err(CoreError::InvalidConfiguration(format!(
                "stencil: halo ({}) and iters ({}) must be >= 1",
                self.halo, self.iters
            )));
        }
        let (lo, hi) = self.memory_range(n, p)?;
        check_memory(m_words, lo, hi)?;
        let nf = n as Real;
        let pf = p as Real;
        let h = self.halo as Real;
        let t = self.iters as Real;
        let b = nf / pf.sqrt();
        if b < 2.0 * h {
            return Err(CoreError::InvalidConfiguration(format!(
                "stencil: tile side n/√p = {b:.1} below 2h = {} — halo \
                 exceeds the neighbour tile",
                2.0 * h
            )));
        }
        let w = t * (2.0 * h * b + 2.0 * h * (b + 2.0 * h));
        Ok(AlgorithmCosts {
            flops: self.total_flops(n) / pf,
            words: w,
            messages: 4.0 * t + w / params.max_message_words,
        })
    }

    fn strong_scaling_range(&self, n: u64, mem: Real) -> Option<ScalingRange> {
        let nf = n as Real;
        let h = self.halo as Real;
        Some(ScalingRange {
            p_min: nf * nf / mem,
            p_max: (nf / (2.0 * h)) * (nf / (2.0 * h)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-6)
            .max_message_words(100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn classical_mm_2d_limit_matches_cannon_costs() {
        // At M = n²/p the 2.5D model reduces to the 2D model:
        // W = n³/(p·n/√p) = n²/√p.
        let mp = params();
        let n = 1024u64;
        let p = 16u64;
        let m = ClassicalMatMul.min_memory(n, p);
        let c = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
        let nf = n as Real;
        assert!((c.flops - nf.powi(3) / 16.0).abs() < 1.0);
        let expected_w = nf * nf / (p as Real).sqrt();
        assert!((c.words - expected_w).abs() / expected_w < 1e-12);
        assert!((c.messages - c.words / 100.0).abs() < 1e-9);
    }

    #[test]
    fn classical_mm_3d_limit_reduces_words_by_p_sixth() {
        // W(3D)/W(2D) = p^(-1/6) (paper §III).
        let mp = params();
        let n = 4096u64;
        let p = 64u64;
        let w2d = ClassicalMatMul
            .costs(n, p, ClassicalMatMul.min_memory(n, p), &mp)
            .unwrap()
            .words;
        let w3d = ClassicalMatMul
            .costs(n, p, ClassicalMatMul.max_useful_memory(n, p), &mp)
            .unwrap()
            .words;
        let ratio = w3d / w2d;
        let expected = (p as Real).powf(-1.0 / 6.0);
        assert!((ratio - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn classical_mm_rejects_memory_outside_range() {
        let mp = params();
        let n = 1024u64;
        let p = 16u64;
        let lo = ClassicalMatMul.min_memory(n, p);
        let hi = ClassicalMatMul.max_useful_memory(n, p);
        assert!(matches!(
            ClassicalMatMul.costs(n, p, lo * 0.5, &mp),
            Err(CoreError::MemoryOutOfRange { .. })
        ));
        assert!(matches!(
            ClassicalMatMul.costs(n, p, hi * 2.0, &mp),
            Err(CoreError::MemoryOutOfRange { .. })
        ));
        // Boundaries themselves are accepted.
        assert!(ClassicalMatMul.costs(n, p, lo, &mp).is_ok());
        assert!(ClassicalMatMul.costs(n, p, hi, &mp).is_ok());
    }

    #[test]
    fn costs_clamped_accepts_anything() {
        let mp = params();
        let c = ClassicalMatMul.costs_clamped(1024, 16, 1.0, &mp).unwrap();
        let at_min = ClassicalMatMul
            .costs(1024, 16, ClassicalMatMul.min_memory(1024, 16), &mp)
            .unwrap();
        assert_eq!(c, at_min);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mp = params();
        assert!(matches!(
            ClassicalMatMul.costs(1, 4, 100.0, &mp),
            Err(CoreError::InvalidConfiguration(_))
        ));
        assert!(matches!(
            DirectNBody::default().costs(100, 0, 10.0, &mp),
            Err(CoreError::InvalidConfiguration(_))
        ));
    }

    #[test]
    fn strassen_with_omega_3_matches_classical_words() {
        let mp = params();
        let s = StrassenMatMul { omega: 3.0 };
        let n = 2048u64;
        let p = 8u64;
        let m = ClassicalMatMul.min_memory(n, p);
        let cs = s.costs(n, p, m, &mp).unwrap();
        let cc = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
        assert!((cs.flops - cc.flops).abs() / cc.flops < 1e-12);
        assert!((cs.words - cc.words).abs() / cc.words < 1e-12);
    }

    #[test]
    fn strassen_needs_fewer_flops_than_classical() {
        let mp = params();
        let s = StrassenMatMul::default();
        let n = 4096u64;
        let p = 4u64;
        let m = s.min_memory(n, p);
        let cs = s.costs(n, p, m, &mp).unwrap();
        let cc = ClassicalMatMul.costs(n, p, m, &mp).unwrap();
        assert!(cs.flops < cc.flops);
    }

    #[test]
    fn strassen_rejects_bad_omega() {
        let mp = params();
        for omega in [1.5, 2.0, 3.5] {
            let s = StrassenMatMul { omega };
            assert!(matches!(
                s.costs(1024, 4, s.min_memory(1024, 4), &mp),
                Err(CoreError::InvalidConfiguration(_))
            ));
        }
    }

    #[test]
    fn lu_latency_grows_with_p() {
        // S_LU = p√M/n: doubling p at fixed M doubles the message count.
        let mp = params();
        let n = 4096u64;
        let m = 1024.0 * 1024.0;
        let s1 = Lu25d.costs(n, 16, m, &mp).unwrap().messages;
        let s2 = Lu25d.costs(n, 32, m, &mp).unwrap().messages;
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
        assert!(Lu25d.strong_scaling_range(n, m).is_none());
    }

    #[test]
    fn lu_messages_match_formula() {
        let mp = params();
        let n = 4096u64;
        let p = 16u64;
        let m = Lu25d.min_memory(n, p) * 2.0; // c = 2 replication
        let c = Lu25d.costs(n, p, m, &mp).unwrap();
        let expected = p as Real * m.sqrt() / n as Real;
        assert!((c.messages - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn nbody_words_shrink_linearly_with_memory() {
        let mp = params();
        let nb = DirectNBody::default();
        let n = 1u64 << 20;
        let p = 64u64;
        let m1 = nb.min_memory(n, p);
        let m2 = 2.0 * m1;
        let w1 = nb.costs(n, p, m1, &mp).unwrap().words;
        let w2 = nb.costs(n, p, m2, &mp).unwrap().words;
        assert!((w1 / w2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nbody_scaling_range_endpoints() {
        let nb = DirectNBody::default();
        let n = 1u64 << 20;
        let mem = 4096.0;
        let r = nb.strong_scaling_range(n, mem).unwrap();
        let nf = n as Real;
        assert!((r.p_min - nf / mem).abs() < 1e-6);
        assert!((r.p_max - nf * nf / (mem * mem)).abs() < 1.0);
        assert!(r.p_max / r.p_min > 1.0);
    }

    #[test]
    fn fft_has_no_use_for_extra_memory() {
        let f = FftTree;
        assert_eq!(f.min_memory(1 << 20, 64), f.max_useful_memory(1 << 20, 64));
        assert!(f.strong_scaling_range(1 << 20, 1024.0).is_none());
    }

    #[test]
    fn fft_tree_vs_naive_tradeoff() {
        // Tree: more words, exponentially fewer messages.
        let mp = params();
        let n = 1u64 << 20;
        let p = 256u64;
        let m = FftTree.min_memory(n, p);
        let tree = FftTree.costs(n, p, m, &mp).unwrap();
        let naive = FftAllToAll.costs(n, p, m, &mp).unwrap();
        assert!(tree.words > naive.words);
        assert!(tree.messages < naive.messages);
        assert!((tree.messages - 8.0).abs() < 1e-12); // log2(256)
        assert!((naive.messages - 256.0).abs() < 1e-12);
        assert_eq!(tree.flops, naive.flops);
    }

    #[test]
    fn cholesky_is_half_an_lu() {
        let mp = params();
        let n = 4096u64;
        let p = 64u64;
        let m = Cholesky25d.min_memory(n, p) * 2.0;
        let chol = Cholesky25d.costs(n, p, m, &mp).unwrap();
        let lu = Lu25d.costs(n, p, m, &mp).unwrap();
        assert!((chol.flops * 3.0 - lu.flops).abs() / lu.flops < 1e-12);
        assert!((chol.words * 3.0 - lu.words).abs() / lu.words < 1e-12);
        // Same critical-path message count (the panel chain).
        assert_eq!(chol.messages, lu.messages);
        assert!(Cholesky25d.strong_scaling_range(n, m).is_none());
    }

    #[test]
    fn matvec_is_io_dominated() {
        // The Eq. 3 data term I+O matches or beats F/√M for BLAS2: no
        // memory/communication trade.
        let mp = params();
        let n = 1u64 << 12;
        let p = 64u64;
        let m = MatVec.min_memory(n, p);
        let c = MatVec.costs(n, p, m, &mp).unwrap();
        let nf = n as Real;
        let io = nf * nf / p as Real;
        assert!(
            c.flops / m.sqrt() <= io * 2.0 + nf,
            "F/sqrt(M) never dominates"
        );
        assert!(MatVec.strong_scaling_range(n, m).is_none());
        assert_eq!(MatVec.min_memory(n, p), MatVec.max_useful_memory(n, p));
        // Vector exchange stays Θ(n) per rank however large p gets.
        let c2 = MatVec
            .costs(n, 4 * p, MatVec.min_memory(n, 4 * p), &mp)
            .unwrap();
        assert!(c2.words > 0.9 * c.words, "W does not shrink with p");
    }

    #[test]
    fn matvec_energy_grows_with_p() {
        // p·βe·W ≈ p·βe·n: scale-out costs energy for BLAS2.
        let mp = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_e(1e-8)
            .max_message_words(1e6)
            .build()
            .unwrap();
        let n = 1u64 << 12;
        let e_at = |p: u64| {
            let m = MatVec.min_memory(n, p);
            let c = MatVec.costs(n, p, m, &mp).unwrap();
            mp.energy(p, &c, m, mp.time(&c))
        };
        assert!(e_at(256) > e_at(16));
    }

    #[test]
    fn matmul_scaling_range_matches_section_iii() {
        // pmin = n²/M, pmax = n³/M^(3/2); at p = pmin the 2D algorithm is
        // forced, at p = pmax replication saturates (3D).
        let n = 8192u64;
        let p_min_procs = 16u64;
        let mem = ClassicalMatMul.min_memory(n, p_min_procs);
        let r = ClassicalMatMul.strong_scaling_range(n, mem).unwrap();
        assert!((r.p_min - p_min_procs as Real).abs() < 1e-6);
        // pmax/pmin = (n³/M^1.5)/(n²/M) = n/√M = √pmin ratio check:
        let expected_ratio = n as Real / mem.sqrt();
        assert!((r.p_max / r.p_min - expected_ratio).abs() / expected_ratio < 1e-12);
    }

    #[test]
    fn total_flops_are_consistent_with_per_processor() {
        let mp = params();
        for p in [1u64, 4, 16, 64] {
            let m = ClassicalMatMul.min_memory(2048, p);
            let c = ClassicalMatMul.costs(2048, p, m, &mp).unwrap();
            let total = c.flops * p as Real;
            assert!((total - ClassicalMatMul.total_flops(2048)).abs() / total < 1e-12);
        }
    }

    #[test]
    fn costs_plus_adds_componentwise() {
        let a = AlgorithmCosts {
            flops: 1.0,
            words: 2.0,
            messages: 3.0,
        };
        let b = AlgorithmCosts {
            flops: 10.0,
            words: 20.0,
            messages: 30.0,
        };
        let c = a.plus(&b);
        assert_eq!(c.flops, 11.0);
        assert_eq!(c.words, 22.0);
        assert_eq!(c.messages, 33.0);
    }

    #[test]
    fn sample_sort_latency_breaks_strong_scaling() {
        let alg = SampleSortModel;
        assert!(alg.strong_scaling_range(1 << 20, 1e9).is_none());
        let pr = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-6)
            .max_message_words(1e4)
            .build()
            .unwrap();
        let n = 1u64 << 20;
        let t = |p: u64| {
            let m = alg.min_memory(n, p);
            pr.time(&alg.costs(n, p, m, &pr).unwrap())
        };
        // Small p: sorting still strong-scales (compute dominates).
        assert!(t(32) < t(16));
        // Large p: the αt·2(p−1) latency term reverses the scaling.
        assert!(t(1024) > t(512), "all-to-all latency must bite");
        // Quantified departure from 1/p: perfect scaling would keep
        // T·p constant; at p = 1024 it has blown up by over an order
        // of magnitude.
        let departure = (t(1024) * 1024.0) / (t(16) * 16.0);
        assert!(departure > 10.0, "departure {departure}");
    }

    #[test]
    fn sample_sort_words_track_the_sorting_bound() {
        // W ≈ n/p per rank while p³ ≪ n: every key crosses the network
        // once — the Scquizzato–Silvestri Ω(n/p) bandwidth bound. The
        // splitter exchange adds a (p−1)² sample term that is lower-order
        // only at small p; at larger p the upper check must include it.
        let alg = SampleSortModel;
        let pr = params();
        let n = 1u64 << 20;
        for p in [16u64, 64, 256] {
            let c = alg.costs(n, p, alg.min_memory(n, p), &pr).unwrap();
            let bound = n as Real / p as Real;
            let samples = ((p - 1) * (p - 1)) as Real;
            assert!(
                c.words <= 1.1 * (bound + samples),
                "p={p}: {} vs {bound}+{samples}",
                c.words
            );
            assert!(c.words >= 0.5 * bound, "p={p}: {} vs {bound}", c.words);
        }
        // At p = 16 the sample term is < 2% of n/p: W genuinely attains
        // the bound, not just its order.
        let c16 = alg.costs(n, 16, alg.min_memory(n, 16), &pr).unwrap();
        assert!(c16.words <= 1.1 * n as Real / 16.0);
    }

    #[test]
    fn stencil_band_is_set_by_surface_to_volume() {
        let alg = HaloStencilModel { halo: 2, iters: 8 };
        let n = 1u64 << 12;
        let mem = 1e6;
        let range = alg.strong_scaling_range(n, mem).unwrap();
        // pmin: the tile must fit; pmax: tile side shrinks to 2h.
        assert!((range.p_min - (n * n) as Real / mem).abs() < 1e-6);
        assert!((range.p_max - ((n as Real / 4.0).powi(2))).abs() < 1e-6);
        assert!(range.contains(2.0 * range.p_min));
        assert!(!range.contains(2.0 * range.p_max));
        // Beyond the band the model rejects: the halo would exceed the
        // neighbouring tile.
        let small = HaloStencilModel { halo: 8, iters: 1 };
        let err = small.costs(64, 64, small.min_memory(64, 64), &params());
        assert!(err.is_err(), "b = 8 < 2h = 16 must be rejected");
    }

    #[test]
    fn stencil_scales_nearly_perfectly_inside_the_band() {
        // Inside [pmin, pmax], S is constant per sweep and the volume
        // term dominates: T·p and E stay within a few percent across a
        // 256× increase in p. The residual drift has two quantified
        // sources: the 1/√p surface term (≈7% of the γ-term at p = 4096
        // on this machine) and the constant-per-rank latency floor
        // α·4·iters, whose T·p contribution grows ∝ p (≈1% here with
        // α = 1e-7; ten times that with α = 1e-6, which would break the
        // 10% window — "ε-perfect", machine-dependent, not uncon-
        // ditional like matmul).
        let alg = HaloStencilModel { halo: 1, iters: 4 };
        let pr = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-7)
            .gamma_e(1e-9)
            .beta_e(1e-8)
            .alpha_e(1e-7)
            .max_message_words(1e4)
            .build()
            .unwrap();
        let n = 1u64 << 12;
        let tp = |p: u64| {
            let m = alg.min_memory(n, p);
            let c = alg.costs(n, p, m, &pr).unwrap();
            let t = pr.time(&c);
            (t * p as Real, pr.energy(p, &c, m, t))
        };
        let (tp16, e16) = tp(16);
        let (tp4096, e4096) = tp(4096);
        assert!(
            (tp4096 / tp16 - 1.0).abs() < 0.10,
            "T·p drift {} must stay under 10% across the band",
            tp4096 / tp16 - 1.0
        );
        assert!(
            (e4096 / e16 - 1.0).abs() < 0.10,
            "energy drift {} must stay under 10%",
            e4096 / e16 - 1.0
        );
        // And the drift is monotone in √p — the surface term, visible
        // but bounded.
        let (tp1024, _) = tp(1024);
        assert!(tp16 <= tp1024 && tp1024 <= tp4096);
    }

    #[test]
    fn stencil_flops_and_memory_shapes() {
        let alg = HaloStencilModel { halo: 1, iters: 2 };
        let n = 256u64;
        assert_eq!(alg.total_flops(n), 2.0 * 9.0 * (n * n) as Real);
        assert_eq!(alg.min_memory(n, 4), (n * n) as Real / 4.0);
        assert_eq!(alg.max_useful_memory(n, 4), alg.min_memory(n, 4));
        // Degenerate configs rejected.
        let bad = HaloStencilModel { halo: 0, iters: 1 };
        assert!(bad.costs(n, 4, bad.min_memory(n, 4), &params()).is_err());
    }
}
