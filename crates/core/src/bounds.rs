//! Communication lower bounds and the limits of strong scaling
//! (paper §III, Fig. 3).
//!
//! Two families of bounds interact here:
//!
//! * the **memory-dependent** bounds of Ballard–Demmel–Holtz–Schwartz
//!   (extending Hong–Kung and Irony–Toledo–Tiskin): a processor doing `F`
//!   flops with `M` words of fast memory moves
//!   `W = Ω(F/√M)` words (Eqs. 3–5);
//! * the **memory-independent** bounds of Ballard et al. (SPAA'12): for
//!   classical matmul `W = Ω(n²/p^(2/3))` and for Strassen-like matmul
//!   `W = Ω(n²/p^(2/ω0))`, no matter how much memory is available.
//!
//! Their crossover is what ends perfect strong scaling: increasing `p` at
//! fixed `M` rides the memory-dependent bound (which shrinks like `1/p`)
//! until `p = n³/M^(3/2)` (classical; `n^ω/M^(ω/2)` for Strassen-like),
//! after which the memory-independent bound takes over and
//! `W·p ∝ p^(1/3)` (resp. `p^(1−2/ω)`) grows again. Fig. 3 plots exactly
//! this, and [`fig3_series`] regenerates it.

use crate::Real;

/// The closed interval of processor counts `[p_min, p_max]` over which an
/// algorithm strong-scales perfectly at fixed memory per processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRange {
    /// Smallest `p` that fits the problem (one copy of the data).
    pub p_min: Real,
    /// Largest `p` beyond which extra memory can no longer reduce
    /// communication (the memory-independent bound binds).
    pub p_max: Real,
}

impl ScalingRange {
    /// Whether `p` lies inside the perfect-scaling range.
    pub fn contains(&self, p: Real) -> bool {
        p >= self.p_min && p <= self.p_max
    }

    /// The scaling headroom `p_max / p_min` — how large a factor of
    /// processors (and runtime reduction) is available for free energy.
    pub fn headroom(&self) -> Real {
        self.p_max / self.p_min
    }
}

/// Sequential memory-dependent word lower bound, paper **Eq. 3**:
/// `W = Ω(max(I + O, F/√M))` for a processor executing `F` flops with
/// fast memory `M`, input size `I` and output size `O`.
pub fn sequential_word_lower_bound(flops: Real, mem: Real, input: Real, output: Real) -> Real {
    (input + output).max(flops / mem.sqrt())
}

/// Sequential message lower bound, paper **Eq. 4**: Eq. 3 divided by the
/// maximum message size `m`.
pub fn sequential_message_lower_bound(
    flops: Real,
    mem: Real,
    input: Real,
    output: Real,
    max_message: Real,
) -> Real {
    ((input + output) / max_message).max(flops / (max_message * mem.sqrt()))
}

/// Parallel memory-dependent word lower bound, paper **Eq. 5**:
/// `W = Ω(max(0, F/√M − (I + O)))` — with the right data layout, a
/// processor whose inputs/outputs dominate may communicate nothing.
pub fn parallel_word_lower_bound(flops: Real, mem: Real, input: Real, output: Real) -> Real {
    (flops / mem.sqrt() - (input + output)).max(0.0)
}

/// Memory-independent word lower bound for matmul-like algorithms with
/// exponent `omega` (Ballard et al., SPAA'12): `W = Ω(n²/p^(2/ω))`.
/// `omega = 3` gives the classical bound `n²/p^(2/3)`.
pub fn memory_independent_word_bound(n: u64, p: u64, omega: Real) -> Real {
    let nf = n as Real;
    nf * nf / (p as Real).powf(2.0 / omega)
}

/// One point of the Fig. 3 curves: at processor count `p`, the attainable
/// per-processor bandwidth cost `W(p)` for a matmul-like algorithm with
/// exponent `omega` on machines with `mem` words per processor, for a
/// problem that first fits at `p_min = n²/mem` processors.
///
/// `W(p) = max( n^ω/(p·mem^(ω/2−1)), n²/p^(2/ω) )` — the first argument is
/// the memory-dependent bound (perfect scaling region: `W·p` constant),
/// the second the memory-independent bound (`W·p ∝ p^(1−2/ω)`).
pub fn attainable_bandwidth_cost(n: u64, p: u64, mem: Real, omega: Real) -> Real {
    let nf = n as Real;
    let pf = p as Real;
    let mem_dep = nf.powf(omega) / (pf * mem.powf(omega / 2.0 - 1.0));
    let mem_indep = nf * nf / pf.powf(2.0 / omega);
    mem_dep.max(mem_indep)
}

/// A sampled Fig. 3 curve.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Processor count.
    pub p: u64,
    /// Per-processor bandwidth cost `W(p)`.
    pub words: Real,
    /// `W(p) · p` — the paper's y-axis; constant in the perfect-scaling
    /// region, growing like `p^(1−2/ω)` past it.
    pub words_times_p: Real,
    /// Whether this point lies in the perfect strong scaling region.
    pub perfect: bool,
}

/// Regenerate one curve of paper **Fig. 3** ("Limits of communication
/// strong scaling for matrix multiplication"): sample `W(p)·p` at
/// logarithmically spaced processor counts from `p_min = n²/mem` to
/// `factor_past_limit` times the scaling limit `p_limit = n^ω/mem^(ω/2)`.
pub fn fig3_series(
    n: u64,
    mem: Real,
    omega: Real,
    points: usize,
    factor_past_limit: Real,
) -> Vec<Fig3Point> {
    assert!(points >= 2, "need at least two sample points");
    let nf = n as Real;
    let p_min = (nf * nf / mem).max(1.0);
    let p_limit = nf.powf(omega) / mem.powf(omega / 2.0);
    let p_end = p_limit * factor_past_limit;
    let log_start = p_min.ln();
    let log_end = p_end.ln();
    (0..points)
        .map(|i| {
            let t = i as Real / (points - 1) as Real;
            let p = (log_start + t * (log_end - log_start))
                .exp()
                .round()
                .max(1.0) as u64;
            let w = attainable_bandwidth_cost(n, p, mem, omega);
            Fig3Point {
                p,
                words: w,
                words_times_p: w * p as Real,
                perfect: (p as Real) <= p_limit * (1.0 + 1e-9),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::STRASSEN_OMEGA;

    #[test]
    fn eq3_picks_dominant_term() {
        // BLAS3-like: F = n³, I+O = n², F/√M dominates for small M.
        assert_eq!(sequential_word_lower_bound(1e9, 1e4, 1e6, 1e6), 1e9 / 1e2);
        // BLAS1-like: I+O dominates.
        assert_eq!(sequential_word_lower_bound(1e6, 1e12, 1e6, 1e6), 2e6);
    }

    #[test]
    fn eq4_divides_by_message_size() {
        let w = sequential_word_lower_bound(1e9, 1e4, 0.0, 0.0);
        let s = sequential_message_lower_bound(1e9, 1e4, 0.0, 0.0, 100.0);
        assert!((s - w / 100.0).abs() < 1e-9);
    }

    #[test]
    fn eq5_can_be_zero() {
        // If I+O exceeds F/√M there may be a communication-free layout.
        assert_eq!(parallel_word_lower_bound(1e6, 1e12, 1e6, 1e6), 0.0);
        assert!(parallel_word_lower_bound(1e12, 1e4, 1e3, 1e3) > 0.0);
    }

    #[test]
    fn memory_independent_bound_classical() {
        // n²/p^(2/3).
        let w = memory_independent_word_bound(1 << 10, 8, 3.0);
        let expected = (1u64 << 20) as Real / 4.0;
        assert!((w - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn attainable_cost_is_max_of_bounds() {
        let n = 1u64 << 12;
        let mem = (n as Real) * (n as Real) / 16.0; // p_min = 16
                                                    // Inside the perfect region the memory-dependent bound dominates.
        let p_inside = 32u64;
        let w = attainable_bandwidth_cost(n, p_inside, mem, 3.0);
        let nf = n as Real;
        let mem_dep = nf.powi(3) / (p_inside as Real * mem.sqrt());
        assert!((w - mem_dep).abs() / mem_dep < 1e-12);
        // Far outside, the memory-independent bound dominates.
        let p_outside = 1u64 << 40;
        let w = attainable_bandwidth_cost(n, p_outside, mem, 3.0);
        let mem_indep = nf * nf / (p_outside as Real).powf(2.0 / 3.0);
        assert!((w - mem_indep).abs() / mem_indep < 1e-12);
    }

    #[test]
    fn fig3_flat_then_rising() {
        let n = 1u64 << 12;
        let mem = (n as Real) * (n as Real) / 64.0;
        let series = fig3_series(n, mem, 3.0, 40, 64.0);
        assert_eq!(series.len(), 40);
        // In the perfect region W·p is constant.
        let flat: Vec<_> = series.iter().filter(|pt| pt.perfect).collect();
        assert!(flat.len() >= 2, "expected a non-trivial flat region");
        let w0 = flat[0].words_times_p;
        for pt in &flat {
            assert!(
                (pt.words_times_p - w0).abs() / w0 < 1e-9,
                "perfect region should be flat"
            );
        }
        // Past the limit W·p strictly increases.
        let rising: Vec<_> = series.iter().filter(|pt| !pt.perfect).collect();
        assert!(rising.len() >= 2, "expected points past the limit");
        for w in rising.windows(2) {
            assert!(w[1].words_times_p > w[0].words_times_p * 0.999);
        }
        // And the rising region is above the flat level.
        assert!(rising.last().unwrap().words_times_p > w0);
    }

    #[test]
    fn fig3_strassen_limit_is_earlier_than_classical() {
        // Strassen-like algorithms stop scaling at p = n^ω/M^(ω/2), which
        // is smaller than the classical n³/M^(3/2) (Fig. 3: the
        // Strassen-like curve departs the flat region first).
        let n = 1u64 << 12;
        let nf = n as Real;
        let mem = nf * nf / 64.0;
        let p_limit_classical = nf.powf(3.0) / mem.powf(1.5);
        let p_limit_strassen = nf.powf(STRASSEN_OMEGA) / mem.powf(STRASSEN_OMEGA / 2.0);
        assert!(p_limit_strassen < p_limit_classical);
    }

    #[test]
    fn scaling_range_helpers() {
        let r = ScalingRange {
            p_min: 16.0,
            p_max: 1024.0,
        };
        assert!(r.contains(16.0) && r.contains(512.0) && r.contains(1024.0));
        assert!(!r.contains(8.0) && !r.contains(2048.0));
        assert_eq!(r.headroom(), 64.0);
    }

    #[test]
    fn fig3_first_point_is_p_min() {
        let n = 1u64 << 12;
        let mem = (n as Real) * (n as Real) / 64.0;
        let series = fig3_series(n, mem, 3.0, 10, 16.0);
        assert_eq!(series[0].p, 64);
        assert!(series[0].perfect);
    }
}
