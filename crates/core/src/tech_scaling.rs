//! Technology-scaling study (paper §VI, Figs. 6 and 7).
//!
//! The paper asks: holding the *time* parameters of the Table I machine
//! fixed, how does the GFLOPS/W of 2.5D matrix multiplication improve as
//! the *energy* parameters shrink with future process generations?
//!
//! * **Fig. 6** halves one of `γe`, `βe`, `δe` per generation while the
//!   others stay put. Findings reproduced here: scaling `βe` alone has
//!   almost no effect; scaling `γe` alone saturates after ~5 generations.
//! * **Fig. 7** scales all of them together by an improvement multiplier;
//!   a target of 75 GFLOPS/W is reached after ~5 generations (multiplier
//!   ≈ 32).
//!
//! The case study is evaluated at `p = 2` (two sockets) and `n = 35000`,
//! as in the paper. The paper notes this point is outside the theoretical
//! strong-scaling region; we evaluate the model at the largest memory the
//! algorithm can exploit, `M = n²/p^(2/3)` (allocating more would only
//! add `δe·M·T` energy with no communication savings).

use crate::costs::{Algorithm, ClassicalMatMul};
use crate::energy::{e_matmul_25d, gflops_per_watt};
use crate::params::MachineParams;
use crate::Real;

/// The energy parameters that §VI scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyParam {
    /// `γe`, joules per flop.
    GammaE,
    /// `βe`, joules per word.
    BetaE,
    /// `αe`, joules per message (zero on the Table I machine).
    AlphaE,
    /// `δe`, joules per stored word-second.
    DeltaE,
    /// `εe`, leakage joules per second (zero on the Table I machine).
    EpsilonE,
}

impl EnergyParam {
    /// All parameters swept by Fig. 6 (those nonzero on the Table I
    /// machine).
    pub fn fig6_set() -> [EnergyParam; 3] {
        [EnergyParam::GammaE, EnergyParam::BetaE, EnergyParam::DeltaE]
    }

    /// Display name matching the paper's notation.
    pub fn symbol(&self) -> &'static str {
        match self {
            EnergyParam::GammaE => "gamma_e",
            EnergyParam::BetaE => "beta_e",
            EnergyParam::AlphaE => "alpha_e",
            EnergyParam::DeltaE => "delta_e",
            EnergyParam::EpsilonE => "epsilon_e",
        }
    }
}

/// Return a copy of `base` with one energy parameter multiplied by
/// `factor`.
pub fn scale_param(base: &MachineParams, param: EnergyParam, factor: Real) -> MachineParams {
    let mut p = base.clone();
    match param {
        EnergyParam::GammaE => p.gamma_e *= factor,
        EnergyParam::BetaE => p.beta_e *= factor,
        EnergyParam::AlphaE => p.alpha_e *= factor,
        EnergyParam::DeltaE => p.delta_e *= factor,
        EnergyParam::EpsilonE => p.epsilon_e *= factor,
    }
    p
}

/// Return a copy of `base` with **all** energy parameters multiplied by
/// `factor` (the Fig. 7 sweep).
pub fn scale_all_energy(base: &MachineParams, factor: Real) -> MachineParams {
    let mut p = base.clone();
    p.gamma_e *= factor;
    p.beta_e *= factor;
    p.alpha_e *= factor;
    p.delta_e *= factor;
    p.epsilon_e *= factor;
    p
}

/// The §VI case-study workload: 2.5D classical matmul at fixed `(n, p)`.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudy {
    /// Matrix dimension (35000 in the paper).
    pub n: u64,
    /// Processor count (2 sockets in the paper).
    pub p: u64,
}

impl Default for CaseStudy {
    fn default() -> Self {
        CaseStudy { n: 35_000, p: 2 }
    }
}

impl CaseStudy {
    /// The memory per processor used for the evaluation: the largest the
    /// algorithm can exploit, capped by the machine's physical memory.
    pub fn memory(&self, params: &MachineParams) -> Real {
        ClassicalMatMul
            .max_useful_memory(self.n, self.p)
            .min(params.mem_words)
    }

    /// GFLOPS/W of the case-study run on `params`.
    pub fn gflops_per_watt(&self, params: &MachineParams) -> Real {
        let mem = self.memory(params);
        let e = e_matmul_25d(params, self.n, mem);
        gflops_per_watt(ClassicalMatMul.total_flops(self.n), e)
    }
}

/// One row of the Fig. 6 output: efficiency after `generation` halvings
/// of each parameter independently.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Process generation (0 = today; each generation halves the swept
    /// parameter).
    pub generation: u32,
    /// `(parameter, GFLOPS/W when only that parameter is scaled)`.
    pub per_param: Vec<(EnergyParam, Real)>,
    /// GFLOPS/W when all Fig. 6 parameters are scaled together (the
    /// paper's "all three" reference line).
    pub together: Real,
}

/// Regenerate paper **Fig. 6** (and the "together" line that motivates
/// Fig. 7): GFLOPS/W over `generations` process generations, halving
/// `γe`, `βe`, `δe` independently and jointly.
pub fn fig6_series(base: &MachineParams, study: CaseStudy, generations: u32) -> Vec<Fig6Row> {
    (0..=generations)
        .map(|g| {
            let factor = 0.5_f64.powi(g as i32);
            let per_param = EnergyParam::fig6_set()
                .into_iter()
                .map(|param| {
                    let scaled = scale_param(base, param, factor);
                    (param, study.gflops_per_watt(&scaled))
                })
                .collect();
            let mut all = base.clone();
            for param in EnergyParam::fig6_set() {
                all = scale_param(&all, param, factor);
            }
            Fig6Row {
                generation: g,
                per_param,
                together: study.gflops_per_watt(&all),
            }
        })
        .collect()
}

/// Regenerate paper **Fig. 7**: GFLOPS/W as a function of the joint
/// improvement multiplier `k` (all energy parameters divided by `k`).
pub fn fig7_series(
    base: &MachineParams,
    study: CaseStudy,
    multipliers: &[Real],
) -> Vec<(Real, Real)> {
    multipliers
        .iter()
        .map(|&k| {
            let scaled = scale_all_energy(base, 1.0 / k);
            (k, study.gflops_per_watt(&scaled))
        })
        .collect()
}

/// The multiplier needed to reach `target` GFLOPS/W when all energy
/// parameters scale together (bisection; the efficiency is monotone in
/// the multiplier).
pub fn multiplier_for_target(base: &MachineParams, study: CaseStudy, target: Real) -> Option<Real> {
    let f = |k: Real| {
        let scaled = scale_all_energy(base, 1.0 / k);
        study.gflops_per_watt(&scaled)
    };
    let (mut lo, mut hi) = (1.0, 1.0);
    if f(lo) >= target {
        return Some(1.0);
    }
    // Energy → 0 as k → ∞, so efficiency is unbounded; still cap the
    // search to avoid infinite loops on degenerate inputs.
    for _ in 0..60 {
        hi *= 2.0;
        if f(hi) >= target {
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                if f(mid) >= target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            return Some(hi);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::jaketown;

    #[test]
    fn baseline_efficiency_is_near_table2_value() {
        // The Sandy Bridge peak efficiency is 2.645 GFLOPS/W; the modelled
        // case-study run pays communication and memory energy on top of
        // flops, so it lands a bit below that.
        let eff = CaseStudy::default().gflops_per_watt(&jaketown());
        assert!(eff > 1.5 && eff < 2.645, "eff = {eff}");
    }

    #[test]
    fn fig6_beta_e_has_almost_no_effect() {
        // Paper: "scaling βe has almost no effect."
        let rows = fig6_series(&jaketown(), CaseStudy::default(), 8);
        let first = &rows[0];
        let last = &rows[8];
        let eff_of = |row: &Fig6Row, p: EnergyParam| {
            row.per_param
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, e)| *e)
                .unwrap()
        };
        let beta_gain = eff_of(last, EnergyParam::BetaE) / eff_of(first, EnergyParam::BetaE);
        assert!(
            beta_gain < 1.10,
            "beta_e scaling should improve efficiency < 10%, got ×{beta_gain}"
        );
    }

    #[test]
    fn fig6_gamma_e_saturates() {
        // Paper: "the benefits of scaling γe saturate after about 5
        // generations" — by generation 5 the flop energy has dropped to
        // the level of the unscaled memory-energy term, and gains flatten
        // out from there.
        let rows = fig6_series(&jaketown(), CaseStudy::default(), 15);
        let eff_of = |g: usize| {
            rows[g]
                .per_param
                .iter()
                .find(|(q, _)| *q == EnergyParam::GammaE)
                .map(|(_, e)| *e)
                .unwrap()
        };
        let early_gain = eff_of(5) / eff_of(0); // generations 0→5
        let late_gain = eff_of(15) / eff_of(10); // generations 10→15
        assert!(early_gain > 5.0, "early gain {early_gain}");
        assert!(
            late_gain < 1.1,
            "gamma_e gains should saturate, got late gain ×{late_gain}"
        );
        // Saturation level: bounded by the unscaled βe + δe terms.
        assert!(eff_of(15) < 200.0);
    }

    #[test]
    fn fig6_together_dominates_each_individual() {
        let rows = fig6_series(&jaketown(), CaseStudy::default(), 6);
        for row in &rows {
            for (_, eff) in &row.per_param {
                assert!(row.together >= *eff * (1.0 - 1e-12));
            }
        }
    }

    #[test]
    fn paper_target_75_gflops_per_watt_after_about_5_generations() {
        // Paper: "we obtain a desired efficiency of 75 GFLOPS/W after 5
        // generations if we are able to improve all three parameters
        // together." Five generations is a ×32 multiplier.
        let k = multiplier_for_target(&jaketown(), CaseStudy::default(), 75.0).unwrap();
        let generations = k.log2();
        assert!(
            (4.0..=6.5).contains(&generations),
            "target reached after {generations} generations (k = {k})"
        );
    }

    #[test]
    fn fig7_is_monotone_in_multiplier() {
        let ks: Vec<Real> = (0..12).map(|i| 2f64.powi(i)).collect();
        let series = fig7_series(&jaketown(), CaseStudy::default(), &ks);
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn fig7_efficiency_scales_linearly_when_all_params_scale() {
        // With εe = αe = 0 on this machine, every energy term scales by
        // 1/k, so efficiency is exactly k × baseline.
        let base_eff = CaseStudy::default().gflops_per_watt(&jaketown());
        let series = fig7_series(&jaketown(), CaseStudy::default(), &[8.0]);
        assert!((series[0].1 - 8.0 * base_eff).abs() / (8.0 * base_eff) < 1e-9);
    }

    #[test]
    fn scale_param_touches_only_its_target() {
        let base = jaketown();
        let scaled = scale_param(&base, EnergyParam::DeltaE, 0.25);
        assert_eq!(scaled.delta_e, base.delta_e * 0.25);
        assert_eq!(scaled.gamma_e, base.gamma_e);
        assert_eq!(scaled.beta_e, base.beta_e);
        assert_eq!(scaled.gamma_t, base.gamma_t);
    }

    #[test]
    fn multiplier_for_target_already_met_returns_one() {
        let k = multiplier_for_target(&jaketown(), CaseStudy::default(), 0.1).unwrap();
        assert_eq!(k, 1.0);
    }

    #[test]
    fn memory_respects_physical_limit() {
        let mut mp = jaketown();
        mp.mem_words = 1e6;
        let study = CaseStudy::default();
        assert_eq!(study.memory(&mp), 1e6);
    }
}
