//! Error type for model construction and evaluation.

use std::fmt;

/// Errors produced when constructing or evaluating the analytical models.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm,
/// so adding variants is not a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A machine parameter was negative, NaN, or otherwise out of its
    /// physical domain. Carries the parameter name and offending value.
    InvalidParameter {
        /// Name of the parameter (e.g. `"gamma_t"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested memory per processor `M` lies outside the validity
    /// range of the algorithm's cost model (e.g. below one copy of the
    /// data, `M < n²/p`, or above the replication limit, `M > n²/p^(2/3)`
    /// for classical matmul).
    MemoryOutOfRange {
        /// Requested memory per processor, in words.
        m: f64,
        /// Smallest valid memory for this (n, p).
        min: f64,
        /// Largest memory the algorithm can exploit for this (n, p).
        max: f64,
    },
    /// The problem/processor configuration is invalid for the algorithm
    /// (e.g. `p = 0`, or an FFT size that is not a power of two).
    InvalidConfiguration(String),
    /// A constrained optimization problem has no feasible point (e.g. an
    /// energy budget below the minimum attainable energy).
    Infeasible(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, value } => {
                write!(f, "invalid machine parameter {name} = {value}")
            }
            CoreError::MemoryOutOfRange { m, min, max } => write!(
                f,
                "memory per processor M = {m} words outside valid range [{min}, {max}]"
            ),
            CoreError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Infeasible(msg) => write!(f, "infeasible constraint: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CoreError::InvalidParameter {
            name: "gamma_t",
            value: -1.0,
        };
        assert!(e.to_string().contains("gamma_t"));

        let e = CoreError::MemoryOutOfRange {
            m: 1.0,
            min: 2.0,
            max: 3.0,
        };
        let s = e.to_string();
        assert!(s.contains('1') && s.contains('2') && s.contains('3'));

        let e = CoreError::InvalidConfiguration("p must be a square".into());
        assert!(e.to_string().contains("square"));

        let e = CoreError::Infeasible("energy budget too small".into());
        assert!(e.to_string().contains("budget"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
