//! Paper-to-code map: where every equation, section, table and figure of
//! *"Perfect Strong Scaling Using No Additional Energy"* (Demmel,
//! Gearhart, Lipshitz, Schwartz; IPDPS 2013) lives in this workspace.
//!
//! # Equations
//!
//! | paper | meaning | implementation |
//! |---|---|---|
//! | Eq. 1 | `T = γt·F + βt·W + αt·S` | [`crate::params::MachineParams::time`]; executable: `psse-sim` virtual clocks |
//! | Eq. 2 | `E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)` | [`crate::params::MachineParams::energy`]; over measured counters: [`crate::summary::ExecutionSummary::price`] |
//! | Eq. 3 | sequential word bound `Ω(max(I+O, F/√M))` | [`crate::bounds::sequential_word_lower_bound`] |
//! | Eq. 4 | sequential message bound | [`crate::bounds::sequential_message_lower_bound`] |
//! | Eq. 5 | parallel word bound `Ω(max(0, F/√M − (I+O)))` | [`crate::bounds::parallel_word_lower_bound`] |
//! | Eq. 6 | 2.5D memory range `n²/p ≤ M ≤ n²/p^(2/3)` | [`crate::costs::Algorithm::min_memory`] / [`crate::costs::Algorithm::max_useful_memory`] on [`crate::costs::ClassicalMatMul`] |
//! | Eq. 7 | 2.5D costs `W = O(n²/√(cp))`, `S = O(√(p/c³) + log c)` | [`crate::costs::Algorithm::costs`] on [`crate::costs::ClassicalMatMul`]; executable: `psse-algos::mm25d` |
//! | Eq. 8 | classical matmul `(F, W, S)` | [`crate::costs::ClassicalMatMul`] |
//! | Eq. 9 | `T` of 2.5D matmul | [`crate::time::t_matmul_25d`] |
//! | Eq. 10 | `E` of 2.5D matmul (p-independent!) | [`crate::energy::e_matmul_25d`] |
//! | Eq. 11 | `E` of 3D matmul | [`crate::energy::e_matmul_3d`] |
//! | Eq. 12 | two-level matmul `T`, `E` | [`crate::twolevel::TwoLevelParams::matmul_point`] (see module docs for the re-derivation note) |
//! | Eq. 13 | Strassen "FLM" energy | [`crate::energy::e_matmul_fast_lm`] |
//! | Eq. 14 | Strassen "FUM" energy | [`crate::energy::e_matmul_fast_um`] (with the `n⁵ → n^(2+ω)` exponent fix, documented there) |
//! | Eq. 15 | `T` of replicating n-body | [`crate::time::t_nbody`] |
//! | Eq. 16 | `E` of replicating n-body | [`crate::energy::e_nbody`] |
//! | Eq. 17 | two-level n-body `T`, `E` | [`crate::twolevel::TwoLevelParams::nbody_point`] (matches the printed equation term by term) |
//! | Eq. 18 | minimum n-body energy `E*` | [`crate::optimize::nbody::NBodyOptimizer::e_star`] |
//! | Eq. 19 | total-power cap on `p` | [`crate::optimize::nbody::NBodyOptimizer::max_p_given_total_power`] |
//! | Eq. 20 | per-proc-power cap on `M` | [`crate::optimize::nbody::NBodyOptimizer::max_memory_given_proc_power`] (sign-corrected; see its docs) |
//!
//! # Sections
//!
//! | paper | implementation |
//! |---|---|
//! | §II machine model | [`crate::params`] (distributed), [`crate::sequential`] (Fig. 1a), [`crate::twolevel`] (Fig. 2), executable: `psse-sim` |
//! | §III communication avoidance | [`crate::bounds`]; executable 2D/2.5D/3D: `psse-algos::{cannon, summa, mm25d}` |
//! | §III's wider factorization family | Cholesky: [`crate::costs::Cholesky25d`] + `psse-algos::cholesky2d`; QR: `psse-kernels::qr` + `psse-algos::tsqr` (TSQR, incl. least squares); BLAS2: [`crate::costs::MatVec`] + `psse-algos::matvec` |
//! | §IV LU | [`crate::costs::Lu25d`]; executable 2D factor+solve: `psse-algos::lu2d` |
//! | §IV FFT | [`crate::costs::FftTree`] / [`crate::costs::FftAllToAll`]; executable: `psse-algos::fft` |
//! | §V A–F optimization | [`crate::optimize::nbody`] (closed form), [`crate::optimize::matmul`], [`crate::optimize::numeric`] |
//! | §VI case study | [`crate::machines::jaketown`], [`crate::tech_scaling`] |
//! | §VII observations & open problems | [`crate::machines::table2`] + `table2_machines` bench; "minimize average power" solved at [`crate::optimize::nbody::NBodyOptimizer::min_average_power`]; heterogeneity at [`crate::hetero`] |
//!
//! # Tables and figures
//!
//! Every table and figure has a regeneration bench in `psse-bench`
//! (`cargo bench -p psse-bench`): `fig3_strong_scaling`,
//! `fig4_nbody_regions`, `fig6_scaling_individual`,
//! `fig7_scaling_together`, `table1_case_study`, `table2_machines`, plus
//! the end-to-end `validate_strong_scaling` and the extensions
//! `ablation_collectives`, `sequential_cache`, `twolevel_model`.
//! Outcomes are recorded in the repository's `EXPERIMENTS.md`.
