//! Machine parameters for the distributed machine model (paper §II).
//!
//! A machine is described by a small set of per-operation prices:
//!
//! | symbol | field      | unit          | meaning                          |
//! |--------|------------|---------------|----------------------------------|
//! | `γt`   | `gamma_t`  | s / flop      | time per floating-point op       |
//! | `βt`   | `beta_t`   | s / word      | inverse link bandwidth           |
//! | `αt`   | `alpha_t`  | s / message   | link latency                     |
//! | `γe`   | `gamma_e`  | J / flop      | energy per floating-point op     |
//! | `βe`   | `beta_e`   | J / word      | energy per word transferred      |
//! | `αe`   | `alpha_e`  | J / message   | energy per message               |
//! | `δe`   | `delta_e`  | J / word / s  | energy to keep one word resident |
//! | `εe`   | `epsilon_e`| J / s         | per-processor leakage power      |
//! | `m`    | `max_message_words` | words | largest single message        |
//! | `M`    | `mem_words`| words         | physical memory per processor    |
//!
//! The paper assumes these remain constant as the machine scales out
//! (justified there by the 3D-torus construction of [Solomonik, Bhatele,
//! Demmel, SC'11]).

use crate::costs::AlgorithmCosts;
use crate::error::CoreError;
use crate::Real;

/// Parameters of the homogeneous distributed machine model.
///
/// Construct with [`MachineParams::builder`] (validated) or use a preset
/// such as [`crate::machines::jaketown`]. All fields are public for use
/// in the closed-form expressions; invariants (non-negativity, positive
/// `γt`, `m ≥ 1`) are enforced at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// `γt` — seconds per flop (must be > 0).
    pub gamma_t: Real,
    /// `βt` — seconds per word moved across a link.
    pub beta_t: Real,
    /// `αt` — seconds per message (latency).
    pub alpha_t: Real,
    /// `γe` — joules per flop.
    pub gamma_e: Real,
    /// `βe` — joules per word moved across a link.
    pub beta_e: Real,
    /// `αe` — joules per message.
    pub alpha_e: Real,
    /// `δe` — joules per stored word per second (memory occupancy cost).
    pub delta_e: Real,
    /// `εe` — joules per second of leakage per processor (everything that
    /// is neither compute, link, nor memory: static circuit leakage,
    /// fans, disks, ...).
    pub epsilon_e: Real,
    /// `m` — maximum words per message. The message lower bound is
    /// `S ≥ W/m`; algorithms on the simulator split longer transfers.
    pub max_message_words: Real,
    /// `M` — physical memory per processor, in words. Cost models may use
    /// any `M' ≤ M`.
    pub mem_words: Real,
}

impl MachineParams {
    /// Start building a machine description. All prices default to zero
    /// except `γt` (which has no sensible default and must be set),
    /// `m = 1` and `M = +∞`.
    pub fn builder() -> MachineParamsBuilder {
        MachineParamsBuilder::default()
    }

    /// Evaluate the runtime model, paper **Eq. 1**:
    /// `T = γt·F + βt·W + αt·S`, for per-processor costs along the
    /// critical path.
    pub fn time(&self, costs: &AlgorithmCosts) -> Real {
        self.gamma_t * costs.flops + self.beta_t * costs.words + self.alpha_t * costs.messages
    }

    /// Evaluate the energy model, paper **Eq. 2**:
    /// `E = p·(γe·F + βe·W + αe·S + δe·M·T + εe·T)`
    /// where `costs` are per-processor, `m_used` is the memory used per
    /// processor, and `t` is the runtime (typically `self.time(costs)`).
    pub fn energy(&self, p: u64, costs: &AlgorithmCosts, m_used: Real, t: Real) -> Real {
        (p as Real)
            * (self.gamma_e * costs.flops
                + self.beta_e * costs.words
                + self.alpha_e * costs.messages
                + self.delta_e * m_used * t
                + self.epsilon_e * t)
    }

    /// Average power `P = E/T` for a run with the given per-processor
    /// costs and memory.
    pub fn average_power(&self, p: u64, costs: &AlgorithmCosts, m_used: Real) -> Real {
        let t = self.time(costs);
        if t == 0.0 {
            return 0.0;
        }
        self.energy(p, costs, m_used, t) / t
    }

    /// Effective per-word time including amortized latency,
    /// `βt + αt/m` — the paper's repeated `β = β·m + α` substitution,
    /// normalized per word.
    pub fn beta_t_eff(&self) -> Real {
        self.beta_t + self.alpha_t / self.max_message_words
    }

    /// Effective per-word energy including amortized message energy,
    /// `βe + αe/m`.
    pub fn beta_e_eff(&self) -> Real {
        self.beta_e + self.alpha_e / self.max_message_words
    }

    /// `γe + γt·εe` — the "energy per flop" including leakage accrued
    /// during that flop. Appears as the flop coefficient of every energy
    /// closed form in the paper (Eqs. 10–16).
    pub fn gamma_e_leak(&self) -> Real {
        self.gamma_e + self.gamma_t * self.epsilon_e
    }

    /// `(βe + βt·εe) + (αe + αt·εe)/m` — the effective per-word energy
    /// including leakage accrued while the word (and its share of the
    /// message) is in flight.
    pub fn beta_e_leak(&self) -> Real {
        (self.beta_e + self.beta_t * self.epsilon_e)
            + (self.alpha_e + self.alpha_t * self.epsilon_e) / self.max_message_words
    }

    /// Validate every field; returns the first violated invariant.
    pub fn validate(&self) -> Result<(), CoreError> {
        let nonneg: [(&'static str, Real); 9] = [
            ("beta_t", self.beta_t),
            ("alpha_t", self.alpha_t),
            ("gamma_e", self.gamma_e),
            ("beta_e", self.beta_e),
            ("alpha_e", self.alpha_e),
            ("delta_e", self.delta_e),
            ("epsilon_e", self.epsilon_e),
            ("max_message_words", self.max_message_words),
            ("mem_words", self.mem_words),
        ];
        if !(self.gamma_t > 0.0) || !self.gamma_t.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "gamma_t",
                value: self.gamma_t,
            });
        }
        for (name, v) in nonneg {
            if v.is_nan() || v < 0.0 {
                return Err(CoreError::InvalidParameter { name, value: v });
            }
        }
        if self.max_message_words < 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "max_message_words",
                value: self.max_message_words,
            });
        }
        Ok(())
    }
}

/// Builder for [`MachineParams`]; `build()` validates all invariants.
#[derive(Debug, Clone)]
pub struct MachineParamsBuilder {
    p: MachineParams,
}

impl Default for MachineParamsBuilder {
    fn default() -> Self {
        MachineParamsBuilder {
            p: MachineParams {
                gamma_t: 0.0, // must be set; validated in build()
                beta_t: 0.0,
                alpha_t: 0.0,
                gamma_e: 0.0,
                beta_e: 0.0,
                alpha_e: 0.0,
                delta_e: 0.0,
                epsilon_e: 0.0,
                max_message_words: 1.0,
                mem_words: Real::INFINITY,
            },
        }
    }
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name(mut self, v: Real) -> Self {
            self.p.$name = v;
            self
        }
    };
}

impl MachineParamsBuilder {
    setter!(
        /// Set `γt` (s/flop). Required.
        gamma_t
    );
    setter!(
        /// Set `βt` (s/word).
        beta_t
    );
    setter!(
        /// Set `αt` (s/message).
        alpha_t
    );
    setter!(
        /// Set `γe` (J/flop).
        gamma_e
    );
    setter!(
        /// Set `βe` (J/word).
        beta_e
    );
    setter!(
        /// Set `αe` (J/message).
        alpha_e
    );
    setter!(
        /// Set `δe` (J/word/s).
        delta_e
    );
    setter!(
        /// Set `εe` (J/s).
        epsilon_e
    );
    setter!(
        /// Set `m`, the maximum message size in words.
        max_message_words
    );
    setter!(
        /// Set `M`, the physical memory per processor in words.
        mem_words
    );

    /// Validate and produce the machine description.
    pub fn build(self) -> Result<MachineParams, CoreError> {
        self.p.validate()?;
        Ok(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::AlgorithmCosts;

    fn simple() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(1e-8)
            .alpha_t(1e-6)
            .gamma_e(1e-9)
            .beta_e(1e-8)
            .alpha_e(1e-6)
            .delta_e(1e-10)
            .epsilon_e(1e-3)
            .max_message_words(1024.0)
            .mem_words(1e9)
            .build()
            .unwrap()
    }

    #[test]
    fn eq1_runtime_is_linear_in_costs() {
        let mp = simple();
        let c = AlgorithmCosts {
            flops: 1e6,
            words: 1e4,
            messages: 10.0,
        };
        let t = mp.time(&c);
        let expected = 1e-9 * 1e6 + 1e-8 * 1e4 + 1e-6 * 10.0;
        assert!((t - expected).abs() < 1e-15);

        // Linearity: doubling all costs doubles T.
        let c2 = AlgorithmCosts {
            flops: 2e6,
            words: 2e4,
            messages: 20.0,
        };
        assert!((mp.time(&c2) - 2.0 * t).abs() < 1e-12);
    }

    #[test]
    fn eq2_energy_matches_hand_expansion() {
        let mp = simple();
        let c = AlgorithmCosts {
            flops: 1e6,
            words: 1e4,
            messages: 10.0,
        };
        let t = mp.time(&c);
        let m_used = 1e6;
        let p = 4u64;
        let e = mp.energy(p, &c, m_used, t);
        let per_proc = 1e-9 * 1e6 + 1e-8 * 1e4 + 1e-6 * 10.0 + 1e-10 * m_used * t + 1e-3 * t;
        assert!((e - 4.0 * per_proc).abs() / e < 1e-12);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let mp = simple();
        let c = AlgorithmCosts {
            flops: 1e9,
            words: 1e6,
            messages: 100.0,
        };
        let t = mp.time(&c);
        let e = mp.energy(8, &c, 1e6, t);
        assert!((mp.average_power(8, &c, 1e6) - e / t).abs() / (e / t) < 1e-12);
    }

    #[test]
    fn zero_time_power_is_zero() {
        let mp = simple();
        let c = AlgorithmCosts {
            flops: 0.0,
            words: 0.0,
            messages: 0.0,
        };
        assert_eq!(mp.average_power(8, &c, 0.0), 0.0);
    }

    #[test]
    fn effective_betas_amortize_latency() {
        let mp = simple();
        assert!((mp.beta_t_eff() - (1e-8 + 1e-6 / 1024.0)).abs() < 1e-18);
        assert!((mp.beta_e_eff() - (1e-8 + 1e-6 / 1024.0)).abs() < 1e-18);
        // With leakage folded in.
        let expected = (1e-8 + 1e-8 * 1e-3) + (1e-6 + 1e-6 * 1e-3) / 1024.0;
        assert!((mp.beta_e_leak() - expected).abs() < 1e-18);
        assert!((mp.gamma_e_leak() - (1e-9 + 1e-9 * 1e-3)).abs() < 1e-20);
    }

    #[test]
    fn builder_rejects_missing_gamma_t() {
        let r = MachineParams::builder().build();
        assert!(matches!(
            r,
            Err(CoreError::InvalidParameter {
                name: "gamma_t",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_negative_prices() {
        let r = MachineParams::builder().gamma_t(1e-9).beta_e(-1.0).build();
        assert!(matches!(
            r,
            Err(CoreError::InvalidParameter { name: "beta_e", .. })
        ));
    }

    #[test]
    fn builder_rejects_nan() {
        let r = MachineParams::builder()
            .gamma_t(1e-9)
            .delta_e(Real::NAN)
            .build();
        assert!(matches!(
            r,
            Err(CoreError::InvalidParameter {
                name: "delta_e",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_submessage_word_limit() {
        let r = MachineParams::builder()
            .gamma_t(1e-9)
            .max_message_words(0.5)
            .build();
        assert!(matches!(
            r,
            Err(CoreError::InvalidParameter {
                name: "max_message_words",
                ..
            })
        ));
    }

    #[test]
    fn default_memory_is_unbounded() {
        let mp = MachineParams::builder().gamma_t(1.0).build().unwrap();
        assert!(mp.mem_words.is_infinite());
        assert_eq!(mp.max_message_words, 1.0);
    }
}
