//! Trace-engine error type.

use std::fmt;

/// Errors surfaced by trace construction, replay and (de)serialisation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The run was executed without `SimConfig::record_trace`, so there
    /// is no event log to build a trace from.
    NotRecorded,
    /// Replay parameters rejected (negative price, zero message size).
    InvalidParams(String),
    /// A `Recv` event has no matching `Send` in the sender's log.
    UnmatchedRecv {
        /// Receiving rank.
        rank: usize,
        /// Index of the receive in that rank's event log.
        index: usize,
        /// Expected source rank.
        src: usize,
        /// Message tag.
        tag: u64,
    },
    /// A matched send/receive pair disagrees on the transfer size.
    WordsMismatch {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dest: usize,
        /// Message tag.
        tag: u64,
        /// Words according to the send event.
        sent: usize,
        /// Words according to the receive event.
        recvd: usize,
    },
    /// The event DAG contains a dependency cycle — replay cannot make
    /// progress. Impossible for traces recorded from a completed run.
    Stuck,
    /// The event log is internally inconsistent (e.g. a `Free` larger
    /// than the tracked allocation).
    Corrupt(String),
    /// Replaying the trace under its own recorded parameters did not
    /// reproduce the live profile.
    Inconsistent(String),
    /// A serialised trace failed to parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Filesystem error while saving or loading.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NotRecorded => write!(
                f,
                "run was not recorded: set SimConfig::record_trace before running"
            ),
            TraceError::InvalidParams(m) => write!(f, "invalid replay parameters: {m}"),
            TraceError::UnmatchedRecv {
                rank,
                index,
                src,
                tag,
            } => write!(
                f,
                "recv event {index} on rank {rank} has no matching send from rank {src} with tag {tag}"
            ),
            TraceError::WordsMismatch {
                src,
                dest,
                tag,
                sent,
                recvd,
            } => write!(
                f,
                "transfer {src}->{dest} tag {tag}: send says {sent} words but recv says {recvd}"
            ),
            TraceError::Stuck => write!(f, "replay made no progress (cyclic event DAG)"),
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
            TraceError::Inconsistent(m) => write!(f, "replay does not reproduce the live run: {m}"),
            TraceError::Parse { line, msg } => write!(f, "trace parse error at line {line}: {msg}"),
            TraceError::Io(m) => write!(f, "trace i/o error: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Convenience alias used throughout the crate.
pub type TraceResult<T> = Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(TraceError, &str)> = vec![
            (TraceError::NotRecorded, "record_trace"),
            (TraceError::InvalidParams("bad m".into()), "bad m"),
            (
                TraceError::UnmatchedRecv {
                    rank: 1,
                    index: 4,
                    src: 0,
                    tag: 7,
                },
                "tag 7",
            ),
            (
                TraceError::WordsMismatch {
                    src: 0,
                    dest: 1,
                    tag: 2,
                    sent: 10,
                    recvd: 9,
                },
                "10 words",
            ),
            (TraceError::Stuck, "no progress"),
            (TraceError::Corrupt("neg".into()), "neg"),
            (TraceError::Inconsistent("rank 0".into()), "rank 0"),
            (
                TraceError::Parse {
                    line: 3,
                    msg: "bad float".into(),
                },
                "line 3",
            ),
            (TraceError::Io("denied".into()), "denied"),
        ];
        for (e, frag) in cases {
            assert!(e.to_string().contains(frag), "{e}");
        }
    }
}
