//! # psse-trace — event-trace recording, DAG replay and re-pricing
//!
//! The simulator (`psse-sim`) prices a run as it executes: every
//! compute, send and receive advances a virtual clock by the paper's
//! Eq. 1 costs. This crate closes the loop the other way: record the
//! run **once** (set `SimConfig::record_trace`), capture the per-rank
//! typed event logs as a [`Trace`], and then
//!
//! * [`Trace::replay`] re-executes the event DAG under **any**
//!   [`ReplayParams`] — flat or two-level, different `γt`/`βt`/`αt`,
//!   different maximum message size — producing the profile the
//!   simulator would have produced on that machine, without re-running
//!   the algorithm. Under the recorded parameters replay is
//!   bit-identical to the live run ([`Trace::check_consistency`]).
//! * [`Trace::reprice`] prices the replayed run with a machine's
//!   energy parameters (Eq. 2): the paper's what-if question — same
//!   algorithm, same communication DAG, different hardware — answered
//!   from one recording.
//! * [`Trace::critical_path`] finds the chain of computes and sends
//!   that determines the makespan and splits every rank's time into
//!   compute / communication / idle.
//! * [`Trace::to_chrome_json`] exports the recording as Chrome
//!   trace-event JSON (one process per rank, loadable in Perfetto),
//!   and [`Trace::save`]/[`Trace::load`] give an exact plain-text
//!   round-trip for archiving and diffing runs.
//!
//! ## Example
//!
//! ```
//! use psse_sim::prelude::*;
//! use psse_trace::prelude::*;
//!
//! let cfg = SimConfig { record_trace: true, ..SimConfig::default() };
//! let out = Machine::run(4, cfg.clone(), |rank| {
//!     rank.compute(10_000);
//!     let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64])?;
//!     Ok(v[0])
//! })
//! .unwrap();
//!
//! let trace = Trace::from_run(&cfg, &out.profile).unwrap();
//! trace.check_consistency(&out.profile).unwrap(); // replay == live
//!
//! // What if the network were 10x slower?
//! let mut slow = trace.params.clone();
//! slow.beta_t *= 10.0;
//! slow.alpha_t *= 10.0;
//! let profile = trace.replay(&slow).unwrap();
//! assert!(profile.makespan > out.profile.makespan);
//! ```

#![forbid(unsafe_code)]
// `!(x >= 0.0)` deliberately rejects NaN alongside negative values,
// matching psse-sim's validation idiom.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod chrome;
pub mod critical;
pub mod error;
pub mod flame;
mod replay;
pub mod textio;
pub mod trace;

pub use critical::{CriticalPathReport, PathSegment, RankBreakdown};
pub use error::{TraceError, TraceResult};
pub use trace::{ReplayHierarchy, ReplayParams, Trace};

/// One-stop imports.
pub mod prelude {
    pub use crate::critical::{CriticalPathReport, PathSegment, RankBreakdown};
    pub use crate::error::{TraceError, TraceResult};
    pub use crate::trace::{ReplayHierarchy, ReplayParams, Trace};
}
