//! Plain-text trace serialisation: exact, line-based, dependency-free.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so a
//! save/load cycle reproduces every timestamp bit-for-bit — byte
//! identity of two serialised traces implies identity of the runs.
//!
//! ```text
//! psse-trace v1
//! p 2
//! makespan 0.002
//! params 1e-9 1e-8 1e-6 65536
//! hier 2 1e-9 1e-7        (only on two-level machines)
//! rank 0 2
//! C 0.0 1e-6 1000         (compute: t0 t1 flops)
//! S 1e-6 2e-6 1 7 100     (send:    t0 t1 dest tag words)
//! rank 1 1
//! R 0.0 2e-6 0 7 100 1    (recv:    t0 t1 src tag words msgs)
//! ```
//!
//! The remaining kinds are `A t0 t1 words` (alloc), `F t0 t1 words`
//! (free), `B t op` / `E t op` (collective begin/end; the op name,
//! which contains no spaces, ends the line), and the fault-layer
//! events: `Y t0 t1 dest tag attempt words backoff` (retry /
//! duplicate), `D t0 t1 seconds` (link delay), `K t0 t1 words`
//! (checkpoint write), `X t0 t1 lost restart` (crash recovery).

use crate::error::{TraceError, TraceResult};
use crate::trace::{ReplayHierarchy, ReplayParams, Trace};
use psse_sim::record::{EventKind, TimedEvent};
use std::fmt::Write as _;
use std::path::Path;

impl Trace {
    /// Serialise to the line-based text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("psse-trace v1\n");
        let _ = writeln!(s, "p {}", self.p);
        let _ = writeln!(s, "makespan {:?}", self.makespan);
        let _ = writeln!(
            s,
            "params {:?} {:?} {:?} {}",
            self.params.gamma_t,
            self.params.beta_t,
            self.params.alpha_t,
            self.params.max_message_words
        );
        if let Some(h) = &self.params.hierarchy {
            let _ = writeln!(
                s,
                "hier {} {:?} {:?}",
                h.cores_per_node, h.intra_beta_t, h.intra_alpha_t
            );
        }
        for (r, evs) in self.events.iter().enumerate() {
            let _ = writeln!(s, "rank {r} {}", evs.len());
            for e in evs {
                let (t0, t1) = (e.t_start, e.t_end);
                match &e.kind {
                    EventKind::Compute { flops } => {
                        let _ = writeln!(s, "C {t0:?} {t1:?} {flops}");
                    }
                    EventKind::Send { dest, tag, words } => {
                        let _ = writeln!(s, "S {t0:?} {t1:?} {dest} {tag} {words}");
                    }
                    EventKind::Recv {
                        src,
                        tag,
                        words,
                        msgs,
                    } => {
                        let _ = writeln!(s, "R {t0:?} {t1:?} {src} {tag} {words} {msgs}");
                    }
                    EventKind::Alloc { words } => {
                        let _ = writeln!(s, "A {t0:?} {t1:?} {words}");
                    }
                    EventKind::Free { words } => {
                        let _ = writeln!(s, "F {t0:?} {t1:?} {words}");
                    }
                    EventKind::CollBegin { op } => {
                        let _ = writeln!(s, "B {t0:?} {op}");
                    }
                    EventKind::CollEnd { op } => {
                        let _ = writeln!(s, "E {t0:?} {op}");
                    }
                    EventKind::Retry {
                        dest,
                        tag,
                        attempt,
                        words,
                        backoff,
                    } => {
                        let _ = writeln!(
                            s,
                            "Y {t0:?} {t1:?} {dest} {tag} {attempt} {words} {backoff:?}"
                        );
                    }
                    EventKind::LinkDelay { seconds } => {
                        let _ = writeln!(s, "D {t0:?} {t1:?} {seconds:?}");
                    }
                    EventKind::Checkpoint { words } => {
                        let _ = writeln!(s, "K {t0:?} {t1:?} {words}");
                    }
                    EventKind::CrashRecovery { lost, restart } => {
                        let _ = writeln!(s, "X {t0:?} {t1:?} {lost:?} {restart:?}");
                    }
                }
            }
        }
        s
    }

    /// Parse the text format produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> TraceResult<Trace> {
        let mut lines = text.lines().enumerate();
        let mut next = |expect: &str| -> TraceResult<(usize, &str)> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| TraceError::Parse {
                    line: 0,
                    msg: format!("unexpected end of input, expected {expect}"),
                })
        };

        let (ln, header) = next("header")?;
        if header.trim() != "psse-trace v1" {
            return Err(TraceError::Parse {
                line: ln,
                msg: format!("bad header {header:?}, expected \"psse-trace v1\""),
            });
        }
        let (ln, l) = next("p")?;
        let p: usize = parse_field(ln, l, "p")?;
        let (ln, l) = next("makespan")?;
        let makespan: f64 = parse_field(ln, l, "makespan")?;
        let (ln, l) = next("params")?;
        let toks = keyword_fields(ln, l, "params", 4)?;
        let mut params = ReplayParams {
            gamma_t: parse_tok(ln, toks[0])?,
            beta_t: parse_tok(ln, toks[1])?,
            alpha_t: parse_tok(ln, toks[2])?,
            max_message_words: parse_tok(ln, toks[3])?,
            hierarchy: None,
        };

        let mut events: Vec<Vec<TimedEvent>> = Vec::with_capacity(p);
        let mut pending_rank: Option<(usize, usize)> = None; // (line, remaining)
        for (i0, raw) in lines {
            let ln = i0 + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let kw = it.next().expect("non-empty line");
            let rest: Vec<&str> = it.collect();
            if let Some((_, remaining)) = pending_rank {
                if remaining > 0 {
                    // Must be an event line.
                    let ev = parse_event(ln, kw, &rest)?;
                    events.last_mut().expect("rank open").push(ev);
                    pending_rank = Some((ln, remaining - 1));
                    continue;
                }
            }
            match kw {
                "hier" => {
                    if rest.len() != 3 {
                        return Err(TraceError::Parse {
                            line: ln,
                            msg: "hier takes 3 fields".into(),
                        });
                    }
                    params.hierarchy = Some(ReplayHierarchy {
                        cores_per_node: parse_tok(ln, rest[0])?,
                        intra_beta_t: parse_tok(ln, rest[1])?,
                        intra_alpha_t: parse_tok(ln, rest[2])?,
                    });
                }
                "rank" => {
                    if rest.len() != 2 {
                        return Err(TraceError::Parse {
                            line: ln,
                            msg: "rank takes 2 fields".into(),
                        });
                    }
                    let id: usize = parse_tok(ln, rest[0])?;
                    if id != events.len() {
                        return Err(TraceError::Parse {
                            line: ln,
                            msg: format!("rank {id} out of order, expected {}", events.len()),
                        });
                    }
                    let n: usize = parse_tok(ln, rest[1])?;
                    events.push(Vec::with_capacity(n));
                    pending_rank = Some((ln, n));
                }
                _ => {
                    return Err(TraceError::Parse {
                        line: ln,
                        msg: format!("unexpected keyword {kw:?}"),
                    });
                }
            }
        }
        if let Some((ln, remaining)) = pending_rank {
            if remaining > 0 {
                return Err(TraceError::Parse {
                    line: ln,
                    msg: format!("{remaining} event lines missing"),
                });
            }
        }
        if events.len() != p {
            return Err(TraceError::Parse {
                line: 2,
                msg: format!("{} rank sections for p = {p}", events.len()),
            });
        }
        Ok(Trace {
            p,
            params,
            makespan,
            events,
        })
    }

    /// Write the text serialisation to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> TraceResult<()> {
        std::fs::write(path.as_ref(), self.to_text()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Read a trace saved with [`Trace::save`].
    pub fn load(path: impl AsRef<Path>) -> TraceResult<Trace> {
        let text =
            std::fs::read_to_string(path.as_ref()).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_text(&text)
    }
}

fn parse_tok<T: std::str::FromStr>(line: usize, tok: &str) -> TraceResult<T> {
    tok.parse().map_err(|_| TraceError::Parse {
        line,
        msg: format!("cannot parse {tok:?}"),
    })
}

/// Parse a `keyword value` line, returning the value.
fn parse_field<T: std::str::FromStr>(line: usize, l: &str, kw: &str) -> TraceResult<T> {
    let toks = keyword_fields(line, l, kw, 1)?;
    parse_tok(line, toks[0])
}

/// Split a `keyword f1 f2 ...` line, checking the keyword and arity.
fn keyword_fields<'a>(line: usize, l: &'a str, kw: &str, n: usize) -> TraceResult<Vec<&'a str>> {
    let mut it = l.split_whitespace();
    if it.next() != Some(kw) {
        return Err(TraceError::Parse {
            line,
            msg: format!("expected {kw:?} line, got {l:?}"),
        });
    }
    let toks: Vec<&str> = it.collect();
    if toks.len() != n {
        return Err(TraceError::Parse {
            line,
            msg: format!("{kw} takes {n} fields, got {}", toks.len()),
        });
    }
    Ok(toks)
}

fn parse_event(ln: usize, kw: &str, rest: &[&str]) -> TraceResult<TimedEvent> {
    let need = |n: usize| -> TraceResult<()> {
        if rest.len() != n {
            return Err(TraceError::Parse {
                line: ln,
                msg: format!("event {kw:?} takes {n} fields, got {}", rest.len()),
            });
        }
        Ok(())
    };
    let ev = match kw {
        "C" => {
            need(3)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Compute {
                    flops: parse_tok(ln, rest[2])?,
                },
            }
        }
        "S" => {
            need(5)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Send {
                    dest: parse_tok(ln, rest[2])?,
                    tag: parse_tok(ln, rest[3])?,
                    words: parse_tok(ln, rest[4])?,
                },
            }
        }
        "R" => {
            need(6)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Recv {
                    src: parse_tok(ln, rest[2])?,
                    tag: parse_tok(ln, rest[3])?,
                    words: parse_tok(ln, rest[4])?,
                    msgs: parse_tok(ln, rest[5])?,
                },
            }
        }
        "A" => {
            need(3)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Alloc {
                    words: parse_tok(ln, rest[2])?,
                },
            }
        }
        "F" => {
            need(3)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Free {
                    words: parse_tok(ln, rest[2])?,
                },
            }
        }
        "B" | "E" => {
            need(2)?;
            let t: f64 = parse_tok(ln, rest[0])?;
            let op = rest[1].to_string();
            TimedEvent {
                t_start: t,
                t_end: t,
                kind: if kw == "B" {
                    EventKind::CollBegin { op }
                } else {
                    EventKind::CollEnd { op }
                },
            }
        }
        "Y" => {
            need(7)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Retry {
                    dest: parse_tok(ln, rest[2])?,
                    tag: parse_tok(ln, rest[3])?,
                    attempt: parse_tok(ln, rest[4])?,
                    words: parse_tok(ln, rest[5])?,
                    backoff: parse_tok(ln, rest[6])?,
                },
            }
        }
        "D" => {
            need(3)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::LinkDelay {
                    seconds: parse_tok(ln, rest[2])?,
                },
            }
        }
        "K" => {
            need(3)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::Checkpoint {
                    words: parse_tok(ln, rest[2])?,
                },
            }
        }
        "X" => {
            need(4)?;
            TimedEvent {
                t_start: parse_tok(ln, rest[0])?,
                t_end: parse_tok(ln, rest[1])?,
                kind: EventKind::CrashRecovery {
                    lost: parse_tok(ln, rest[2])?,
                    restart: parse_tok(ln, rest[3])?,
                },
            }
        }
        _ => {
            return Err(TraceError::Parse {
                line: ln,
                msg: format!("unknown event kind {kw:?}"),
            });
        }
    };
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_sim::machine::{Machine, SimConfig};
    use psse_sim::message::Tag;

    fn sample_trace() -> Trace {
        let cfg = SimConfig {
            record_trace: true,
            hierarchy: Some(psse_sim::machine::Hierarchy {
                cores_per_node: 2,
                intra_beta_t: 1e-9,
                intra_alpha_t: 1e-7,
            }),
            ..SimConfig::default()
        };
        let out = Machine::run(4, cfg.clone(), |rank| {
            rank.alloc(64)?;
            rank.compute(777);
            let v = rank.allreduce_sum(Tag(3), vec![1.0; 16])?;
            rank.free(64)?;
            Ok(v[0])
        })
        .unwrap();
        Trace::from_run(&cfg, &out.profile).unwrap()
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let tr = sample_trace();
        let text = tr.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(tr, back);
        // Serialising again reproduces the bytes.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn save_load_roundtrip() {
        let tr = sample_trace();
        let dir = std::env::temp_dir().join("psse-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        tr.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(tr, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(matches!(
            Trace::from_text("nonsense"),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let bad = "psse-trace v1\np 1\nmakespan 0.0\nparams 0.0 0.0 0.0 16\nrank 0 1\nZ 0 0 0\n";
        assert!(matches!(
            Trace::from_text(bad),
            Err(TraceError::Parse { line: 6, .. })
        ));
        let truncated =
            "psse-trace v1\np 1\nmakespan 0.0\nparams 0.0 0.0 0.0 16\nrank 0 2\nC 0.0 0.0 5\n";
        assert!(matches!(
            Trace::from_text(truncated),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn replay_after_roundtrip_still_consistent() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let out = Machine::run(2, cfg.clone(), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![2.0; 300])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        })
        .unwrap();
        let tr = Trace::from_run(&cfg, &out.profile).unwrap();
        let back = Trace::from_text(&tr.to_text()).unwrap();
        back.check_consistency(&out.profile).unwrap();
    }
}
