//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Each rank becomes one process (`pid = rank`, `tid = 0`); computes,
//! sends and receives become complete (`"X"`) events; alloc/free become
//! instants (`"i"`); collective markers become begin/end (`"B"`/`"E"`)
//! pairs so nested collectives render as a flame stack. Timestamps are
//! the trace's recorded virtual times, converted to microseconds as the
//! format requires. The JSON is hand-rolled (the build has no serde);
//! the emitted subset is plain ASCII with escaped strings.

use crate::trace::Trace;
use psse_sim::record::EventKind;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Seconds → microseconds (the unit of `ts`/`dur`).
fn us(t: f64) -> f64 {
    t * 1e6
}

impl Trace {
    /// Serialise the recorded events as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut ev: Vec<String> = Vec::with_capacity(self.n_events() + self.p);
        for r in 0..self.p {
            ev.push(format!(
                r#"{{"ph":"M","name":"process_name","pid":{r},"tid":0,"args":{{"name":"rank {r}"}}}}"#
            ));
        }
        for (r, evs) in self.events.iter().enumerate() {
            for e in evs {
                let (ts, dur) = (us(e.t_start), us(e.t_end - e.t_start));
                match &e.kind {
                    EventKind::Compute { flops } => ev.push(format!(
                        r#"{{"ph":"X","name":"compute","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"flops":{flops}}}}}"#
                    )),
                    EventKind::Send { dest, tag, words } => ev.push(format!(
                        r#"{{"ph":"X","name":"send->{dest}","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"dest":{dest},"tag":{tag},"words":{words}}}}}"#
                    )),
                    EventKind::Recv {
                        src,
                        tag,
                        words,
                        msgs,
                    } => ev.push(format!(
                        r#"{{"ph":"X","name":"recv<-{src}","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"src":{src},"tag":{tag},"words":{words},"msgs":{msgs}}}}}"#
                    )),
                    EventKind::Alloc { words } => ev.push(format!(
                        r#"{{"ph":"i","name":"alloc","pid":{r},"tid":0,"ts":{ts},"s":"t","args":{{"words":{words}}}}}"#
                    )),
                    EventKind::Free { words } => ev.push(format!(
                        r#"{{"ph":"i","name":"free","pid":{r},"tid":0,"ts":{ts},"s":"t","args":{{"words":{words}}}}}"#
                    )),
                    EventKind::CollBegin { op } => ev.push(format!(
                        r#"{{"ph":"B","name":"{}","pid":{r},"tid":0,"ts":{ts}}}"#,
                        escape(op)
                    )),
                    EventKind::CollEnd { op } => ev.push(format!(
                        r#"{{"ph":"E","name":"{}","pid":{r},"tid":0,"ts":{ts}}}"#,
                        escape(op)
                    )),
                    EventKind::Retry {
                        dest,
                        tag,
                        attempt,
                        words,
                        backoff,
                    } => ev.push(format!(
                        r#"{{"ph":"X","name":"retry->{dest}","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"dest":{dest},"tag":{tag},"attempt":{attempt},"words":{words},"backoff":{backoff}}}}}"#
                    )),
                    EventKind::LinkDelay { seconds } => ev.push(format!(
                        r#"{{"ph":"X","name":"link-delay","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"seconds":{seconds}}}}}"#
                    )),
                    EventKind::Checkpoint { words } => ev.push(format!(
                        r#"{{"ph":"X","name":"checkpoint","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"words":{words}}}}}"#
                    )),
                    EventKind::CrashRecovery { lost, restart } => ev.push(format!(
                        r#"{{"ph":"X","name":"crash-recovery","pid":{r},"tid":0,"ts":{ts},"dur":{dur},"args":{{"lost":{lost},"restart":{restart}}}}}"#
                    )),
                }
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            ev.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use psse_sim::machine::{Machine, SimConfig};
    use psse_sim::message::Tag;

    /// A minimal structural JSON validator: checks balanced braces and
    /// brackets outside string literals and legal escape sequences.
    fn check_json_structure(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    assert!(
                        matches!(c, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u'),
                        "bad escape \\{c}"
                    );
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth.push(c),
                '}' => assert_eq!(depth.pop(), Some('{'), "unbalanced brace"),
                ']' => assert_eq!(depth.pop(), Some('['), "unbalanced bracket"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert!(depth.is_empty(), "unbalanced nesting: {depth:?}");
    }

    #[test]
    fn export_is_structurally_valid_and_complete() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let out = Machine::run(4, cfg.clone(), |rank| {
            rank.alloc(100)?;
            rank.compute(1000);
            let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64; 8])?;
            rank.free(100)?;
            Ok(v[0])
        })
        .unwrap();
        let tr = Trace::from_run(&cfg, &out.profile).unwrap();
        let json = tr.to_chrome_json();
        check_json_structure(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"rank 3\""));
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"ph\":\"B\"")); // collective begin marker
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("allreduce_sum"));
        // One metadata record per rank plus one record per event.
        assert_eq!(json.matches("\"ph\":").count(), tr.n_events() + tr.p);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
