//! The trace container and replay parameters.

use crate::error::{TraceError, TraceResult};
use psse_core::params::MachineParams;
use psse_core::summary::{ExecutionSummary, Measured};
use psse_core::twolevel::TwoLevelParams;
use psse_sim::machine::SimConfig;
use psse_sim::profile::Profile;
use psse_sim::record::TimedEvent;

/// Intra-node link prices for replaying on a two-level machine
/// (mirrors `psse_sim::machine::Hierarchy`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayHierarchy {
    /// Ranks per node; rank `r` lives on node `r / cores_per_node`.
    pub cores_per_node: usize,
    /// `βlt` — seconds per word on intra-node links.
    pub intra_beta_t: f64,
    /// `αlt` — seconds per message on intra-node links.
    pub intra_alpha_t: f64,
}

/// The machine-time parameters a trace is replayed under: the Eq. 1
/// prices plus the maximum message size (which controls how transfers
/// split into messages, the paper's `S = W/m`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayParams {
    /// `γt` — seconds per flop.
    pub gamma_t: f64,
    /// `βt` — seconds per word (inter-node when `hierarchy` is set).
    pub beta_t: f64,
    /// `αt` — seconds per message (inter-node when `hierarchy` is set).
    pub alpha_t: f64,
    /// `m` — maximum words per message.
    pub max_message_words: usize,
    /// Optional two-level hierarchy; `None` = flat machine.
    pub hierarchy: Option<ReplayHierarchy>,
}

impl ReplayParams {
    /// Validate parameter ranges (non-negative prices, `m ≥ 1`).
    pub fn validate(&self) -> TraceResult<()> {
        if !(self.gamma_t >= 0.0) || !(self.beta_t >= 0.0) || !(self.alpha_t >= 0.0) {
            return Err(TraceError::InvalidParams(
                "time parameters must be non-negative and not NaN".into(),
            ));
        }
        if self.max_message_words == 0 {
            return Err(TraceError::InvalidParams(
                "max_message_words must be at least 1".into(),
            ));
        }
        if let Some(h) = &self.hierarchy {
            if h.cores_per_node == 0 {
                return Err(TraceError::InvalidParams(
                    "hierarchy.cores_per_node must be at least 1".into(),
                ));
            }
            if !(h.intra_beta_t >= 0.0) || !(h.intra_alpha_t >= 0.0) {
                return Err(TraceError::InvalidParams(
                    "intra-node link prices must be non-negative".into(),
                ));
            }
        }
        Ok(())
    }
}

impl From<&SimConfig> for ReplayParams {
    fn from(cfg: &SimConfig) -> Self {
        ReplayParams {
            gamma_t: cfg.gamma_t,
            beta_t: cfg.beta_t,
            alpha_t: cfg.alpha_t,
            max_message_words: cfg.max_message_words,
            hierarchy: cfg.hierarchy.as_ref().map(|h| ReplayHierarchy {
                cores_per_node: h.cores_per_node,
                intra_beta_t: h.intra_beta_t,
                intra_alpha_t: h.intra_alpha_t,
            }),
        }
    }
}

impl From<&MachineParams> for ReplayParams {
    /// Mirrors `psse_algos::bridge::sim_config_from`: same prices, same
    /// finite-to-`usize` conversion of the message-size cap.
    fn from(params: &MachineParams) -> Self {
        ReplayParams {
            gamma_t: params.gamma_t,
            beta_t: params.beta_t,
            alpha_t: params.alpha_t,
            max_message_words: if params.max_message_words.is_finite() {
                (params.max_message_words as usize).max(1)
            } else {
                usize::MAX
            },
            hierarchy: None,
        }
    }
}

impl From<&TwoLevelParams> for ReplayParams {
    /// Mirrors `psse_algos::bridge::sim_config_two_level`: inter-node
    /// words at `βnt`, intra-node at `βlt`, latency elided as in the
    /// paper's two-level equations.
    fn from(tl: &TwoLevelParams) -> Self {
        ReplayParams {
            gamma_t: tl.gamma_t,
            beta_t: tl.beta_n_t,
            alpha_t: 0.0,
            max_message_words: SimConfig::default().max_message_words,
            hierarchy: Some(ReplayHierarchy {
                cores_per_node: tl.cores_per_node as usize,
                intra_beta_t: tl.beta_l_t,
                intra_alpha_t: 0.0,
            }),
        }
    }
}

/// A recorded run: per-rank typed event logs plus the parameters and
/// makespan of the live execution.
///
/// Build one with [`Trace::from_run`] from a run executed with
/// `SimConfig::record_trace` set; replay it under any
/// [`ReplayParams`] with [`Trace::replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// World size of the recorded run.
    pub p: usize,
    /// The parameters the run was recorded under.
    pub params: ReplayParams,
    /// The live run's virtual makespan (seconds).
    pub makespan: f64,
    /// Per-rank event logs, indexed by rank id.
    pub events: Vec<Vec<TimedEvent>>,
}

impl Trace {
    /// Capture a trace from a recorded run. Errors with
    /// [`TraceError::NotRecorded`] when the configuration did not have
    /// `record_trace` set (the profile then carries empty logs).
    pub fn from_run(cfg: &SimConfig, profile: &Profile) -> TraceResult<Trace> {
        if !cfg.record_trace {
            return Err(TraceError::NotRecorded);
        }
        if profile.events.len() != profile.p() {
            return Err(TraceError::Corrupt(format!(
                "profile has {} event logs for {} ranks",
                profile.events.len(),
                profile.p()
            )));
        }
        Ok(Trace {
            p: profile.p(),
            params: ReplayParams::from(cfg),
            makespan: profile.makespan,
            events: profile.events.clone(),
        })
    }

    /// Replay the event DAG under `params`, producing the profile the
    /// simulator would have produced had the run executed on that
    /// machine. Under the trace's own recorded parameters the result is
    /// **bit-identical** to the live profile (same floating-point
    /// operations in the same order); see [`Trace::check_consistency`].
    ///
    /// Memory limits are not re-enforced during replay: the recorded
    /// run already succeeded, and replay only re-prices time.
    pub fn replay(&self, params: &ReplayParams) -> TraceResult<Profile> {
        params.validate()?;
        let sched = crate::replay::schedule(self.p, &self.events, params)?;
        Ok(Profile::from_stats(sched.into_stats()))
    }

    /// Verify that replaying under the recorded parameters reproduces
    /// `live` exactly — bitwise-equal per-rank counters, finish times
    /// and makespan.
    pub fn check_consistency(&self, live: &Profile) -> TraceResult<()> {
        let replayed = self.replay(&self.params)?;
        if replayed.per_rank.len() != live.per_rank.len() {
            return Err(TraceError::Inconsistent(format!(
                "world size {} replayed vs {} live",
                replayed.per_rank.len(),
                live.per_rank.len()
            )));
        }
        for (r, (a, b)) in replayed.per_rank.iter().zip(&live.per_rank).enumerate() {
            if a != b {
                return Err(TraceError::Inconsistent(format!(
                    "rank {r}: replayed {a:?} vs live {b:?}"
                )));
            }
        }
        if replayed.makespan.to_bits() != live.makespan.to_bits() {
            return Err(TraceError::Inconsistent(format!(
                "makespan: replayed {:?} vs live {:?}",
                replayed.makespan, live.makespan
            )));
        }
        Ok(())
    }

    /// Replay under `params` and condense into the [`ExecutionSummary`]
    /// that Eq. 2 prices (critical-path maxima plus totals, with the
    /// replayed message-DAG makespan as `T`). Resilience traffic
    /// (retransmissions, duplicates, checkpoint writes) is folded into
    /// the word/message counts, mirroring `psse_algos::bridge::summarize`.
    pub fn summarize(&self, params: &ReplayParams) -> TraceResult<ExecutionSummary> {
        let profile = self.replay(params)?;
        Ok(ExecutionSummary {
            p: profile.p() as u64,
            flops: profile.max_flops() as f64,
            words: profile.max_words_with_resilience() as f64,
            messages: profile.max_msgs_with_resilience() as f64,
            mem_peak_words: profile.max_mem_peak() as f64,
            total_flops: profile.total_flops() as f64,
            total_words: (profile.total_words_sent() + profile.resilience_words()) as f64,
            total_messages: (profile.total_msgs_sent() + profile.resilience_msgs()) as f64,
            makespan: Some(profile.makespan),
        })
    }

    /// Re-price the recorded run on a different machine: replay under
    /// the machine's time parameters (Eq. 1 per event) and price the
    /// result with its energy parameters (Eq. 2). This is the paper's
    /// what-if question — same algorithm, same schedule DAG, different
    /// hardware — answered without re-executing the algorithm.
    pub fn reprice(&self, params: &MachineParams) -> TraceResult<Measured> {
        Ok(self.summarize(&ReplayParams::from(params))?.price(params))
    }

    /// Re-price on a two-level machine: replay under the hierarchy's
    /// link prices, then pay flop energy on total flops, word energy
    /// split by link level, and `pn·δne·Mn + p·δle·Ml + p·εe` standby
    /// power over the replayed makespan (mirrors
    /// `psse_algos::bridge::measure_two_level`).
    pub fn reprice_two_level(&self, tl: &TwoLevelParams) -> TraceResult<Measured> {
        let profile = self.replay(&ReplayParams::from(tl))?;
        let t = profile.makespan;
        let p = profile.p() as f64;
        let pn = p / tl.cores_per_node as f64;
        let energy = tl.gamma_e * profile.total_flops() as f64
            + tl.beta_n_e * profile.total_words_inter() as f64
            + tl.beta_l_e * profile.total_words_intra() as f64
            + tl.beta_n_e * profile.resilience_words() as f64
            + (pn * tl.delta_n_e * tl.mem_node
                + p * tl.delta_l_e * tl.mem_local
                + p * tl.epsilon_e)
                * t;
        Ok(Measured {
            time: t,
            energy,
            power: if t > 0.0 { energy / t } else { 0.0 },
        })
    }

    /// Total number of recorded events across all ranks.
    pub fn n_events(&self) -> usize {
        self.events.iter().map(|e| e.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_sim::prelude::*;

    fn recorded_cfg() -> SimConfig {
        SimConfig {
            record_trace: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn from_run_requires_recording() {
        let out = Machine::run(2, SimConfig::default(), |rank| {
            rank.compute(10);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            Trace::from_run(&SimConfig::default(), &out.profile),
            Err(TraceError::NotRecorded)
        );
    }

    #[test]
    fn from_run_captures_events_and_makespan() {
        let cfg = recorded_cfg();
        let out = Machine::run(2, cfg.clone(), |rank| {
            rank.compute(100);
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0; 10])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        })
        .unwrap();
        let tr = Trace::from_run(&cfg, &out.profile).unwrap();
        assert_eq!(tr.p, 2);
        assert_eq!(tr.makespan, out.profile.makespan);
        assert_eq!(tr.events[0].len(), 2); // compute + send
        assert_eq!(tr.events[1].len(), 2); // compute + recv
        tr.check_consistency(&out.profile).unwrap();
    }

    #[test]
    fn params_roundtrip_from_sim_config() {
        let cfg = SimConfig {
            hierarchy: Some(psse_sim::machine::Hierarchy {
                cores_per_node: 4,
                intra_beta_t: 1e-9,
                intra_alpha_t: 1e-7,
            }),
            ..SimConfig::default()
        };
        let rp = ReplayParams::from(&cfg);
        assert_eq!(rp.gamma_t, cfg.gamma_t);
        assert_eq!(rp.hierarchy.as_ref().unwrap().cores_per_node, 4);
        rp.validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rp = ReplayParams::from(&SimConfig::default());
        rp.max_message_words = 0;
        assert!(matches!(rp.validate(), Err(TraceError::InvalidParams(_))));
        let mut rp = ReplayParams::from(&SimConfig::default());
        rp.beta_t = f64::NAN;
        assert!(rp.validate().is_err());
    }
}
