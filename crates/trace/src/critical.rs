//! Critical-path analysis over a replayed trace.
//!
//! Per-rank events tile each rank's timeline (every operation starts
//! where the previous one ended), and a waiting receive ends exactly
//! when its matched send completes, so walking backwards from the
//! makespan — jumping to the sender whenever a receive waited — yields
//! a chain of work segments (computes and sends) whose durations sum
//! to the makespan.

use crate::error::TraceResult;
use crate::replay::{schedule, Schedule};
use crate::trace::{ReplayParams, Trace};
use psse_sim::record::EventKind;

/// How one rank spent the makespan: computing, paying for sends, or
/// idle (receive waits plus the tail after the rank finished). The
/// three components sum to the makespan by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RankBreakdown {
    /// Rank id.
    pub rank: usize,
    /// Seconds spent in `compute`.
    pub compute: f64,
    /// Seconds spent paying `α + β·k` for message chunks.
    pub comm: f64,
    /// `makespan − compute − comm`: receive waits and post-finish slack.
    pub idle: f64,
}

/// One work segment on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Rank the work executed on.
    pub rank: usize,
    /// What the work was (`compute`, `send->3`).
    pub label: String,
    /// Replay start time, seconds.
    pub t_start: f64,
    /// Replay end time, seconds.
    pub t_end: f64,
}

impl PathSegment {
    /// Segment length in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// The result of [`Trace::critical_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathReport {
    /// Replayed makespan, seconds.
    pub makespan: f64,
    /// Per-rank compute/comm/idle split, indexed by rank id.
    pub breakdown: Vec<RankBreakdown>,
    /// The dependency chain from `t = 0` to the makespan, in
    /// chronological order. Segment durations sum to the makespan
    /// (each waiting receive hands off to the send that released it).
    pub path: Vec<PathSegment>,
}

impl CriticalPathReport {
    /// The `k` longest segments of the critical path, longest first.
    pub fn top_segments(&self, k: usize) -> Vec<&PathSegment> {
        let mut v: Vec<&PathSegment> = self.path.iter().collect();
        v.sort_by(|a, b| {
            b.duration()
                .partial_cmp(&a.duration())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v.truncate(k);
        v
    }

    /// Sum of path segment durations (equals the makespan up to
    /// floating-point addition order).
    pub fn path_total(&self) -> f64 {
        self.path.iter().map(|s| s.duration()).sum()
    }
}

impl Trace {
    /// Replay under `params` and analyse the critical path: which chain
    /// of computes and sends determines the makespan, and how each rank
    /// splits its time between compute, communication and idling.
    pub fn critical_path(&self, params: &ReplayParams) -> TraceResult<CriticalPathReport> {
        params.validate()?;
        let sched = schedule(self.p, &self.events, params)?;
        Ok(analyse(self, &sched))
    }
}

fn analyse(trace: &Trace, sched: &Schedule) -> CriticalPathReport {
    let p = trace.p;
    let finish: Vec<f64> = (0..p)
        .map(|r| sched.ends[r].last().copied().unwrap_or(0.0))
        .collect();
    let makespan = finish.iter().copied().fold(0.0_f64, f64::max);

    let mut breakdown = Vec::with_capacity(p);
    for r in 0..p {
        let mut compute = 0.0;
        let mut comm = 0.0;
        for (i, e) in trace.events[r].iter().enumerate() {
            let d = sched.ends[r][i] - sched.starts[r][i];
            match e.kind {
                EventKind::Compute { .. } => compute += d,
                // Resilience work (retries, checkpoint writes, link
                // delays, crash rework) is time on the wire or lost to
                // it: count it as communication, not idle.
                EventKind::Send { .. }
                | EventKind::Retry { .. }
                | EventKind::LinkDelay { .. }
                | EventKind::Checkpoint { .. }
                | EventKind::CrashRecovery { .. } => comm += d,
                _ => {}
            }
        }
        breakdown.push(RankBreakdown {
            rank: r,
            compute,
            comm,
            idle: makespan - compute - comm,
        });
    }

    // Backward walk from the rank that set the makespan.
    let mut path = Vec::new();
    if makespan > 0.0 {
        let mut r = (0..p)
            .find(|&r| finish[r] == makespan)
            .expect("some rank attains the makespan");
        let mut i = trace.events[r].len();
        while i > 0 {
            i -= 1;
            let st = sched.starts[r][i];
            let en = sched.ends[r][i];
            if en <= st {
                continue; // zero-duration event: markers, alloc/free, prompt recv
            }
            match &trace.events[r][i].kind {
                EventKind::Recv { .. } => {
                    // The clock jumped to the matched send's completion:
                    // the critical predecessor lives on the sender.
                    let (s, j) = sched.matched[r][i].expect("recv is matched");
                    r = s;
                    i = j + 1; // next iteration processes event j
                }
                EventKind::Compute { .. } => path.push(PathSegment {
                    rank: r,
                    label: "compute".into(),
                    t_start: st,
                    t_end: en,
                }),
                EventKind::Send { dest, .. } => path.push(PathSegment {
                    rank: r,
                    label: format!("send->{dest}"),
                    t_start: st,
                    t_end: en,
                }),
                EventKind::Retry { dest, .. } => path.push(PathSegment {
                    rank: r,
                    label: format!("retry->{dest}"),
                    t_start: st,
                    t_end: en,
                }),
                EventKind::LinkDelay { .. } => path.push(PathSegment {
                    rank: r,
                    label: "link-delay".into(),
                    t_start: st,
                    t_end: en,
                }),
                EventKind::Checkpoint { .. } => path.push(PathSegment {
                    rank: r,
                    label: "checkpoint".into(),
                    t_start: st,
                    t_end: en,
                }),
                EventKind::CrashRecovery { .. } => path.push(PathSegment {
                    rank: r,
                    label: "crash-recovery".into(),
                    t_start: st,
                    t_end: en,
                }),
                _ => {}
            }
        }
        path.reverse();
    }

    CriticalPathReport {
        makespan,
        breakdown,
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_sim::machine::{Machine, SimConfig};
    use psse_sim::message::Tag;

    fn record<F>(p: usize, cfg: SimConfig, f: F) -> Trace
    where
        F: Fn(&mut psse_sim::rank::Rank) -> Result<(), psse_sim::error::SimError> + Sync,
    {
        let cfg = SimConfig {
            record_trace: true,
            ..cfg
        };
        let out = Machine::run(p, cfg.clone(), f).unwrap();
        Trace::from_run(&cfg, &out.profile).unwrap()
    }

    #[test]
    fn breakdown_sums_to_makespan() {
        let tr = record(
            4,
            SimConfig {
                gamma_t: 1e-9,
                beta_t: 1e-7,
                alpha_t: 1e-5,
                ..SimConfig::default()
            },
            |rank| {
                let me = rank.rank();
                rank.compute((me as u64 + 1) * 10_000);
                let right = (me + 1) % rank.size();
                let left = (me + rank.size() - 1) % rank.size();
                rank.sendrecv(right, Tag(0), vec![me as f64; 200], left, Tag(0))?;
                Ok(())
            },
        );
        let rep = tr.critical_path(&tr.params).unwrap();
        assert!(rep.makespan > 0.0);
        for b in &rep.breakdown {
            let sum = b.compute + b.comm + b.idle;
            assert!(
                (sum - rep.makespan).abs() <= 1e-12 * rep.makespan.max(1.0),
                "rank {}: {sum} vs {}",
                b.rank,
                rep.makespan
            );
            assert!(b.idle >= -1e-12, "idle must be non-negative");
        }
    }

    #[test]
    fn path_tiles_the_makespan() {
        let tr = record(
            3,
            SimConfig {
                gamma_t: 1e-9,
                beta_t: 1e-7,
                alpha_t: 1e-5,
                ..SimConfig::default()
            },
            |rank| {
                // A pipeline: 0 computes then sends to 1, 1 computes
                // then sends to 2, 2 computes.
                match rank.rank() {
                    0 => {
                        rank.compute(50_000);
                        rank.send(1, Tag(0), vec![1.0; 100])?;
                    }
                    1 => {
                        rank.recv(0, Tag(0))?;
                        rank.compute(50_000);
                        rank.send(2, Tag(1), vec![2.0; 100])?;
                    }
                    _ => {
                        rank.recv(1, Tag(1))?;
                        rank.compute(50_000);
                    }
                }
                Ok(())
            },
        );
        let rep = tr.critical_path(&tr.params).unwrap();
        // The chain crosses all three ranks.
        let ranks: std::collections::HashSet<usize> = rep.path.iter().map(|s| s.rank).collect();
        assert_eq!(ranks.len(), 3, "{:?}", rep.path);
        // Chronological, contiguous from 0 to the makespan.
        assert_eq!(rep.path.first().unwrap().t_start, 0.0);
        assert_eq!(rep.path.last().unwrap().t_end, rep.makespan);
        for w in rep.path.windows(2) {
            assert!(w[0].t_end <= w[1].t_end);
        }
        let total = rep.path_total();
        assert!(
            (total - rep.makespan).abs() <= 1e-12 * rep.makespan,
            "{total} vs {}",
            rep.makespan
        );
    }

    #[test]
    fn top_segments_are_sorted() {
        let tr = record(2, SimConfig::default(), |rank| {
            rank.compute(1000);
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![0.0; 5000])?;
            } else {
                rank.recv(0, Tag(0))?;
                rank.compute(100);
            }
            Ok(())
        });
        let rep = tr.critical_path(&tr.params).unwrap();
        let top = rep.top_segments(2);
        assert!(top.len() <= 2);
        if top.len() == 2 {
            assert!(top[0].duration() >= top[1].duration());
        }
    }

    #[test]
    fn zero_price_trace_has_empty_path() {
        let tr = record(2, SimConfig::counters_only(), |rank| {
            rank.compute(100);
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        });
        let rep = tr.critical_path(&tr.params).unwrap();
        assert_eq!(rep.makespan, 0.0);
        assert!(rep.path.is_empty());
    }
}
