//! Fold a recorded event DAG into collapsed-stack ("folded") format.
//!
//! Collapsed stacks are the lingua franca of flamegraph tooling — one
//! line per unique stack, semicolon-separated frames, a space, and an
//! integer count — consumable unmodified by `flamegraph.pl`,
//! speedscope, inferno and friends:
//!
//! ```text
//! rank0;allreduce_sum;send 125000
//! rank0;main;compute 1000000
//! rank1;main;recv-wait 125000
//! ```
//!
//! The three frames are `rank;phase;op`: the recording rank, the
//! enclosing collective (`main` outside any), and the operation kind.
//! Counts are the operation's *replayed* virtual time in integer
//! nanoseconds, so the same recording can be folded under any
//! [`ReplayParams`] — the flamegraph of
//! "this run on a 10× slower network" is one re-fold away, no
//! re-execution. Lines are sorted lexicographically, making the output
//! canonical for a given `(trace, params)` pair.

use std::collections::BTreeMap;

use psse_metrics::saturating_nanos;
use psse_sim::record::EventKind;

use crate::error::TraceResult;
use crate::replay::schedule;
use crate::trace::{ReplayParams, Trace};

impl Trace {
    /// Replay under `params` and fold every rank's timeline into
    /// collapsed-stack lines (`rank;phase;op count`), aggregated per
    /// unique stack and sorted. Zero-duration events (markers,
    /// alloc/free) fold away; receive waits appear as `recv-wait` so
    /// the graph shows where ranks blocked, not just where they
    /// worked.
    pub fn flame_folded(&self, params: &ReplayParams) -> TraceResult<String> {
        params.validate()?;
        let sched = schedule(self.p, &self.events, params)?;
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for r in 0..self.p {
            // Innermost enclosing collective; `main` at top level.
            let mut colls: Vec<&str> = Vec::new();
            for (i, e) in self.events[r].iter().enumerate() {
                let op = match &e.kind {
                    EventKind::CollBegin { op } => {
                        colls.push(op);
                        continue;
                    }
                    EventKind::CollEnd { .. } => {
                        colls.pop();
                        continue;
                    }
                    EventKind::Compute { .. } => "compute",
                    EventKind::Send { .. } => "send",
                    EventKind::Recv { .. } => "recv-wait",
                    EventKind::Retry { .. } => "retry",
                    EventKind::LinkDelay { .. } => "link-delay",
                    EventKind::Checkpoint { .. } => "checkpoint",
                    EventKind::CrashRecovery { .. } => "crash-recovery",
                    EventKind::Alloc { .. } | EventKind::Free { .. } => continue,
                };
                let ns = saturating_nanos(sched.ends[r][i] - sched.starts[r][i]);
                if ns == 0 {
                    continue;
                }
                let phase = colls.last().copied().unwrap_or("main");
                *stacks.entry(format!("rank{r};{phase};{op}")).or_insert(0) += ns;
            }
        }
        let mut out = String::new();
        for (stack, ns) in &stacks {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_sim::machine::{Machine, SimConfig};
    use psse_sim::message::Tag;

    fn record<F>(p: usize, cfg: SimConfig, f: F) -> Trace
    where
        F: Fn(&mut psse_sim::rank::Rank) -> Result<(), psse_sim::error::SimError> + Sync,
    {
        let cfg = SimConfig {
            record_trace: true,
            ..cfg
        };
        let out = Machine::run(p, cfg.clone(), f).unwrap();
        Trace::from_run(&cfg, &out.profile).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            gamma_t: 1e-9,
            beta_t: 1e-7,
            alpha_t: 1e-5,
            ..SimConfig::default()
        }
    }

    #[test]
    fn folded_lines_are_well_formed_and_sorted() {
        let tr = record(4, cfg(), |rank| {
            rank.compute(100_000);
            let v = rank.allreduce_sum(Tag(0), vec![rank.rank() as f64; 500])?;
            std::hint::black_box(v);
            Ok(())
        });
        let folded = tr.flame_folded(&tr.params).unwrap();
        assert!(!folded.is_empty());
        let mut prev = String::new();
        for line in folded.lines() {
            // `frames count` with exactly three semicolon-separated frames.
            let (stack, count) = line.rsplit_once(' ').expect("space before count");
            assert_eq!(stack.split(';').count(), 3, "bad stack `{stack}`");
            assert!(stack.starts_with("rank"), "bad root frame `{stack}`");
            let n: u64 = count.parse().expect("integer count");
            assert!(n > 0, "zero-count line `{line}`");
            assert!(
                prev.as_str() < line,
                "lines not sorted: `{prev}` >= `{line}`"
            );
            prev = line.to_string();
        }
        // Compute happened outside the collective; the allreduce's
        // constituent collectives (reduce + broadcast) frame the comm.
        assert!(folded.contains("rank0;main;compute "), "{folded}");
        assert!(folded.contains(";reduce_sum;"), "{folded}");
        assert!(folded.contains(";broadcast;"), "{folded}");
    }

    #[test]
    fn refolding_under_slower_network_grows_comm_counts() {
        let tr = record(2, cfg(), |rank| {
            rank.compute(10_000);
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0; 1000])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        });
        let count_of = |folded: &str, needle: &str| -> u64 {
            folded
                .lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.rsplit_once(' '))
                .and_then(|(_, c)| c.parse().ok())
                .unwrap_or(0)
        };
        let base = tr.flame_folded(&tr.params).unwrap();
        let mut slow = tr.params.clone();
        slow.beta_t *= 10.0;
        let refolded = tr.flame_folded(&slow).unwrap();
        let send_base = count_of(&base, "rank0;main;send ");
        let send_slow = count_of(&refolded, "rank0;main;send ");
        assert!(send_base > 0);
        assert!(send_slow > 5 * send_base, "{send_base} -> {send_slow}");
        // Compute is untouched by the network re-pricing.
        assert_eq!(
            count_of(&base, "rank0;main;compute "),
            count_of(&refolded, "rank0;main;compute ")
        );
    }

    #[test]
    fn folding_is_deterministic() {
        let tr = record(3, cfg(), |rank| {
            rank.compute(5_000);
            let v = rank.allreduce_sum(Tag(0), vec![1.0; 64])?;
            std::hint::black_box(v);
            Ok(())
        });
        assert_eq!(
            tr.flame_folded(&tr.params).unwrap(),
            tr.flame_folded(&tr.params).unwrap()
        );
    }
}
