//! The replay scheduler: re-executes a recorded event DAG under
//! arbitrary machine parameters.
//!
//! Replay repeats, per event, exactly the floating-point operations the
//! live simulator performs — `time += γt·f` for a compute, one
//! `time += α + β·k` per message chunk for a send (chunk sizes re-derived
//! from the replay `m`), `time = max(time, sender_completion)` for a
//! receive. Under the trace's own recorded parameters this makes replay
//! **bit-identical** to the live run; under different parameters it
//! yields the profile the simulator would have produced on that machine.
//!
//! Message matching is FIFO per `(src, dst, tag)` triple: the `k`-th
//! receive on `dst` for `(src, tag)` matches the `k`-th send on `src`
//! to `(dst, tag)`. This is exactly the live simulator's semantics —
//! two simultaneously outstanding transfers with the same triple would
//! corrupt chunk reassembly there, so valid programs never produce them.

use crate::error::{TraceError, TraceResult};
use crate::trace::ReplayParams;
use psse_sim::profile::RankStats;
use psse_sim::record::{EventKind, TimedEvent};
use std::collections::{HashMap, VecDeque};

/// Per rank, per event: the `(sender_rank, event_idx)` of the `Send`
/// a `Recv` matched; `None` for every other event kind.
pub(crate) type MatchTable = Vec<Vec<Option<(usize, usize)>>>;

/// The fully-timed result of replaying a trace: per-event start/end
/// times under the replay parameters, the send each receive matched,
/// and the re-derived per-rank counters.
pub(crate) struct Schedule {
    /// Per rank, per event: replay start time.
    pub starts: Vec<Vec<f64>>,
    /// Per rank, per event: replay end time.
    pub ends: Vec<Vec<f64>>,
    /// Per rank, per event: for a `Recv`, the `(sender_rank, event_idx)`
    /// of the matched `Send`; `None` for every other kind.
    pub matched: MatchTable,
    /// Re-derived per-rank counters (without `finish_time`).
    stats: Vec<RankStats>,
    /// Final replay clock per rank.
    finish: Vec<f64>,
}

impl Schedule {
    /// Consume the schedule into per-rank counters with finish times.
    pub fn into_stats(mut self) -> Vec<RankStats> {
        for (s, t) in self.stats.iter_mut().zip(&self.finish) {
            s.finish_time = *t;
        }
        self.stats
    }
}

/// Match every `Recv` event to its `Send` (FIFO per `(src, dst, tag)`),
/// validating that the pair agrees on the transfer size.
pub(crate) fn resolve_matches(events: &[Vec<TimedEvent>]) -> TraceResult<MatchTable> {
    let mut queues: HashMap<(usize, usize, u64), VecDeque<usize>> = HashMap::new();
    for (r, evs) in events.iter().enumerate() {
        for (i, e) in evs.iter().enumerate() {
            if let EventKind::Send { dest, tag, .. } = e.kind {
                queues.entry((r, dest, tag)).or_default().push_back(i);
            }
        }
    }
    let mut matched: Vec<Vec<Option<(usize, usize)>>> =
        events.iter().map(|evs| vec![None; evs.len()]).collect();
    for (r, evs) in events.iter().enumerate() {
        for (i, e) in evs.iter().enumerate() {
            if let EventKind::Recv {
                src, tag, words, ..
            } = e.kind
            {
                let j = queues
                    .get_mut(&(src, r, tag))
                    .and_then(|q| q.pop_front())
                    .ok_or(TraceError::UnmatchedRecv {
                        rank: r,
                        index: i,
                        src,
                        tag,
                    })?;
                if let EventKind::Send { words: sent, .. } = events[src][j].kind {
                    if sent != words {
                        return Err(TraceError::WordsMismatch {
                            src,
                            dest: r,
                            tag,
                            sent,
                            recvd: words,
                        });
                    }
                }
                matched[r][i] = Some((src, j));
            }
        }
    }
    Ok(matched)
}

/// Whether ranks `a` and `b` share a node under the replay hierarchy.
fn same_node(params: &ReplayParams, a: usize, b: usize) -> bool {
    match &params.hierarchy {
        Some(h) => a / h.cores_per_node == b / h.cores_per_node,
        None => false,
    }
}

/// Replay `events` under `params`. Events execute in per-rank program
/// order; a receive becomes executable once its matched send has
/// executed. The fixpoint loop sweeps ranks, advancing each as far as
/// possible, until all events have run (or no progress is possible —
/// impossible for traces recorded from a completed run).
pub(crate) fn schedule(
    p: usize,
    events: &[Vec<TimedEvent>],
    params: &ReplayParams,
) -> TraceResult<Schedule> {
    if events.len() != p {
        return Err(TraceError::Corrupt(format!(
            "{} event logs for {p} ranks",
            events.len()
        )));
    }
    let matched = resolve_matches(events)?;
    let mut starts: Vec<Vec<f64>> = events.iter().map(|evs| vec![0.0; evs.len()]).collect();
    let mut ends: Vec<Vec<f64>> = events.iter().map(|evs| vec![0.0; evs.len()]).collect();
    let mut stats = vec![RankStats::default(); p];
    let mut time = vec![0.0_f64; p];
    let mut cursor = vec![0_usize; p];
    let total: usize = events.iter().map(|evs| evs.len()).sum();
    let mut done = 0_usize;

    while done < total {
        let mut progressed = false;
        for r in 0..p {
            while cursor[r] < events[r].len() {
                let i = cursor[r];
                // A receive blocks until its matched send has executed
                // (a self-send always precedes its receive in program
                // order, so `cursor[r] = i > j` never blocks here).
                if let EventKind::Recv { .. } = events[r][i].kind {
                    let (s, j) = matched[r][i].expect("resolved above");
                    if cursor[s] <= j {
                        break;
                    }
                }
                starts[r][i] = time[r];
                match &events[r][i].kind {
                    EventKind::Compute { flops } => {
                        stats[r].flops += flops;
                        time[r] += params.gamma_t * *flops as f64;
                    }
                    EventKind::Send { dest, words, .. } => {
                        // Self-sends cross no link: free and uncounted,
                        // exactly as in the live simulator.
                        if *dest != r {
                            let intra = same_node(params, r, *dest);
                            let (alpha, beta) = match (&params.hierarchy, intra) {
                                (Some(h), true) => (h.intra_alpha_t, h.intra_beta_t),
                                _ => (params.alpha_t, params.beta_t),
                            };
                            let m = params.max_message_words;
                            let n_chunks = if *words == 0 { 1 } else { words.div_ceil(m) };
                            for c in 0..n_chunks {
                                let k = if *words == 0 {
                                    0
                                } else if c + 1 < n_chunks {
                                    m
                                } else {
                                    words - m * (n_chunks - 1)
                                };
                                time[r] += alpha + beta * k as f64;
                                stats[r].msgs_sent += 1;
                                stats[r].words_sent += k as u64;
                                if intra {
                                    stats[r].msgs_sent_intra += 1;
                                    stats[r].words_sent_intra += k as u64;
                                }
                            }
                        }
                    }
                    EventKind::Recv { src, words, .. } => {
                        let (s, j) = matched[r][i].expect("resolved above");
                        // All chunks depart by the sender's completion
                        // of the whole transfer, so the receiver's
                        // clock is max(local, sender completion).
                        time[r] = time[r].max(ends[s][j]);
                        if *src != r {
                            stats[r].words_recvd += *words as u64;
                            let m = params.max_message_words;
                            let needed = if *words == 0 { 1 } else { words.div_ceil(m) };
                            stats[r].msgs_recvd += needed as u64;
                        }
                    }
                    EventKind::Alloc { words } => {
                        stats[r].mem_current += words;
                        stats[r].mem_peak = stats[r].mem_peak.max(stats[r].mem_current);
                    }
                    EventKind::Free { words } => {
                        if *words > stats[r].mem_current {
                            return Err(TraceError::Corrupt(format!(
                                "rank {r} frees {words} words with only {} tracked",
                                stats[r].mem_current
                            )));
                        }
                        stats[r].mem_current -= words;
                    }
                    EventKind::CollBegin { .. } | EventKind::CollEnd { .. } => {}
                    // Fault-layer events. The chunk loops mirror the
                    // live simulator's charging order exactly so replay
                    // under the recorded parameters stays bit-identical.
                    EventKind::Retry {
                        dest,
                        words,
                        backoff,
                        ..
                    } => {
                        let intra = same_node(params, r, *dest);
                        let (alpha, beta) = match (&params.hierarchy, intra) {
                            (Some(h), true) => (h.intra_alpha_t, h.intra_beta_t),
                            _ => (params.alpha_t, params.beta_t),
                        };
                        let m = params.max_message_words;
                        let mut left = *words;
                        loop {
                            let k = left.min(m);
                            time[r] += alpha + beta * k as f64;
                            stats[r].retrans_msgs += 1;
                            stats[r].retrans_words += k as u64;
                            if left <= m {
                                break;
                            }
                            left -= m;
                        }
                        // The backoff is a recovery-policy constant, not
                        // a machine price: added verbatim.
                        time[r] += backoff;
                        stats[r].retries += 1;
                    }
                    EventKind::LinkDelay { seconds } => {
                        time[r] += seconds;
                    }
                    EventKind::Checkpoint { words } => {
                        // Stable-storage writes are priced at the
                        // machine-level (inter-node) link prices.
                        let m = params.max_message_words as u64;
                        let mut left = *words;
                        loop {
                            let k = left.min(m);
                            time[r] += params.alpha_t + params.beta_t * k as f64;
                            stats[r].checkpoint_msgs += 1;
                            stats[r].checkpoint_words += k;
                            if left <= m {
                                break;
                            }
                            left -= m;
                        }
                    }
                    EventKind::CrashRecovery { lost, restart } => {
                        // Rework and restart are execution history, not
                        // re-priceable quantities: added verbatim.
                        time[r] += lost + restart;
                        stats[r].crashes_recovered += 1;
                    }
                }
                ends[r][i] = time[r];
                cursor[r] += 1;
                done += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Err(TraceError::Stuck);
        }
    }

    Ok(Schedule {
        starts,
        ends,
        matched,
        stats,
        finish: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use psse_sim::prelude::*;

    fn record<F>(p: usize, cfg: SimConfig, f: F) -> (Trace, Profile)
    where
        F: Fn(&mut Rank) -> Result<(), SimError> + Sync,
    {
        let cfg = SimConfig {
            record_trace: true,
            ..cfg
        };
        let out = Machine::run(p, cfg.clone(), f).unwrap();
        let tr = Trace::from_run(&cfg, &out.profile).unwrap();
        (tr, out.profile)
    }

    #[test]
    fn replay_reproduces_ping_pong_bit_exactly() {
        let (tr, live) = record(
            2,
            SimConfig {
                gamma_t: 1e-9,
                beta_t: 1e-6,
                alpha_t: 1e-3,
                ..SimConfig::default()
            },
            |rank| {
                if rank.rank() == 0 {
                    rank.compute(12345);
                    rank.send(1, Tag(1), vec![0.5; 1000])?;
                    rank.recv(1, Tag(2))?;
                } else {
                    let v = rank.recv(0, Tag(1))?;
                    rank.send(0, Tag(2), v)?;
                }
                Ok(())
            },
        );
        tr.check_consistency(&live).unwrap();
    }

    #[test]
    fn replay_reproduces_chunked_sends() {
        let (tr, live) = record(
            2,
            SimConfig {
                max_message_words: 7,
                ..SimConfig::default()
            },
            |rank| {
                if rank.rank() == 0 {
                    rank.send(1, Tag(0), vec![1.0; 100])?;
                    rank.send(1, Tag(9), vec![])?;
                } else {
                    rank.recv(0, Tag(0))?;
                    rank.recv(0, Tag(9))?;
                }
                Ok(())
            },
        );
        tr.check_consistency(&live).unwrap();
        assert_eq!(live.per_rank[0].msgs_sent, 16); // ceil(100/7) + 1 empty
    }

    #[test]
    fn replay_reproduces_hierarchy_and_self_sends() {
        use psse_sim::machine::Hierarchy;
        let (tr, live) = record(
            4,
            SimConfig {
                gamma_t: 0.0,
                beta_t: 1e-6,
                alpha_t: 1e-3,
                hierarchy: Some(Hierarchy {
                    cores_per_node: 2,
                    intra_beta_t: 1e-8,
                    intra_alpha_t: 1e-5,
                }),
                ..SimConfig::default()
            },
            |rank| {
                let me = rank.rank();
                rank.send(me, Tag(99), vec![me as f64])?; // self-send
                rank.recv(me, Tag(99))?;
                if me == 0 {
                    rank.send(1, Tag(0), vec![0.0; 500])?; // intra
                    rank.send(2, Tag(1), vec![0.0; 500])?; // inter
                } else if me == 1 {
                    rank.recv(0, Tag(0))?;
                } else if me == 2 {
                    rank.recv(0, Tag(1))?;
                }
                Ok(())
            },
        );
        tr.check_consistency(&live).unwrap();
        assert_eq!(live.per_rank[0].words_sent_intra, 500);
    }

    #[test]
    fn repricing_changes_makespan_consistently() {
        let (tr, _) = record(
            2,
            SimConfig {
                gamma_t: 0.0,
                beta_t: 1e-6,
                alpha_t: 1e-3,
                ..SimConfig::default()
            },
            |rank| {
                if rank.rank() == 0 {
                    rank.send(1, Tag(0), vec![0.0; 1000])?;
                } else {
                    rank.recv(0, Tag(0))?;
                }
                Ok(())
            },
        );
        // Halving both α and β halves the makespan (pure-communication run).
        let mut cheap = tr.params.clone();
        cheap.alpha_t /= 2.0;
        cheap.beta_t /= 2.0;
        let base = tr.replay(&tr.params).unwrap().makespan;
        let half = tr.replay(&cheap).unwrap().makespan;
        assert!((half - base / 2.0).abs() < 1e-15, "{half} vs {base}");
    }

    #[test]
    fn replay_message_count_follows_replay_m() {
        let (tr, live) = record(2, SimConfig::default(), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0; 100])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        });
        assert_eq!(live.per_rank[0].msgs_sent, 1);
        let mut small = tr.params.clone();
        small.max_message_words = 7;
        let re = tr.replay(&small).unwrap();
        assert_eq!(re.per_rank[0].msgs_sent, 15); // ceil(100/7)
        assert_eq!(re.per_rank[1].msgs_recvd, 15);
        assert_eq!(re.per_rank[0].words_sent, 100);
    }

    #[test]
    fn faulted_run_replays_bit_exactly_and_roundtrips() {
        // Exercise every fault-layer event kind (retries from drops,
        // link delays, checkpoint writes, duplicates) and confirm the
        // recorded trace self-replays bit-exactly, survives the text
        // round-trip, and exports complete Chrome JSON.
        let plan = FaultPlan {
            spec: FaultSpec {
                seed: 11,
                drop_rate: 0.25,
                duplicate_rate: 0.1,
                delay_rate: 0.1,
                delay_seconds: 1e-4,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy {
                max_retries: 16,
                retry_backoff: 1e-5,
                checkpoint: Some(CheckpointPolicy {
                    interval: 5e-4,
                    words: 64,
                    restart_seconds: 1e-4,
                }),
            },
        };
        let (tr, live) = record(
            4,
            SimConfig {
                gamma_t: 1e-9,
                beta_t: 1e-7,
                alpha_t: 1e-5,
                faults: Some(plan),
                ..SimConfig::default()
            },
            |rank| {
                for round in 0..6 {
                    rank.compute(10_000);
                    let right = (rank.rank() + 1) % rank.size();
                    let left = (rank.rank() + rank.size() - 1) % rank.size();
                    rank.sendrecv(right, Tag(round), vec![1.0; 200], left, Tag(round))?;
                }
                Ok(())
            },
        );
        let has = |pred: fn(&psse_sim::record::EventKind) -> bool| {
            tr.events.iter().flatten().any(|e| pred(&e.kind))
        };
        assert!(
            has(|k| matches!(k, psse_sim::record::EventKind::Retry { .. })),
            "plan should produce at least one retry/duplicate event"
        );
        assert!(
            has(|k| matches!(k, psse_sim::record::EventKind::Checkpoint { .. })),
            "plan should produce checkpoint events"
        );
        assert!(live.resilience_words() > 0);
        tr.check_consistency(&live).unwrap();

        // Text round-trip preserves the fault events exactly.
        let back = Trace::from_text(&tr.to_text()).unwrap();
        assert_eq!(back, tr);
        back.check_consistency(&live).unwrap();

        // Chrome export stays complete: one record per event + rank.
        let json = tr.to_chrome_json();
        assert_eq!(json.matches("\"ph\":").count(), tr.n_events() + tr.p);
        assert!(json.contains("\"name\":\"retry->"));
        assert!(json.contains("\"name\":\"checkpoint\""));

        // Fault-event durations count as communication, not idle.
        let rep = tr.critical_path(&tr.params).unwrap();
        for b in &rep.breakdown {
            let sum = b.compute + b.comm + b.idle;
            assert!(
                (sum - rep.makespan).abs() <= 1e-12 * rep.makespan.max(1.0),
                "rank {}: {sum} vs {}",
                b.rank,
                rep.makespan
            );
            assert!(b.idle >= -1e-12);
        }
    }

    #[test]
    fn unmatched_recv_is_reported() {
        // Hand-build a trace whose recv has no matching send.
        let (mut tr, _) = record(2, SimConfig::default(), |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(0), vec![1.0])?;
            } else {
                rank.recv(0, Tag(0))?;
            }
            Ok(())
        });
        tr.events[0].clear(); // drop the send
        assert!(matches!(
            tr.replay(&tr.params),
            Err(TraceError::UnmatchedRecv { rank: 1, .. })
        ));
    }
}
