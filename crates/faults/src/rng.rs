//! SplitMix64 — the deterministic generator behind every fault decision.
//!
//! The simulator needs fault outcomes that are a pure function of
//! `(seed, who, what, when)` and **independent of thread interleaving**:
//! rank 3's fifth transfer to rank 7 must be dropped (or not) regardless
//! of what the other ranks were doing on the wall clock. A stateful
//! shared RNG cannot provide that, so fault decisions are made by
//! *keyed hashing*: the plan seed and the decision coordinates are mixed
//! through the splitmix64 finalizer and the resulting word is mapped to
//! `[0, 1)`. The sequential [`SplitMix64`] stream is also provided for
//! callers that want a cheap deterministic sequence (e.g. perturbation
//! magnitudes).

/// The splitmix64 odd constant (the golden ratio in 0.64 fixed point).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 output mix: a bijective avalanche on 64 bits.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash word to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
#[must_use]
pub fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hash a seed and up to a handful of decision coordinates into one
/// well-mixed word. Order-sensitive: `hash_key(s, &[a, b])` differs from
/// `hash_key(s, &[b, a])`.
#[must_use]
pub fn hash_key(seed: u64, parts: &[u64]) -> u64 {
    let mut h = mix64(seed ^ GOLDEN);
    for &p in parts {
        h = mix64(h.wrapping_add(GOLDEN) ^ mix64(p.wrapping_add(GOLDEN)));
    }
    h
}

/// A sequential splitmix64 stream (Steele, Lea & Flood 2014). Passes
/// BigCrush; one add and one mix per output word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from a seed. Any seed (including 0) is fine.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// Next uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Not constant, not obviously correlated.
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn unit_f64_is_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hash_key_is_order_sensitive_and_stable() {
        let h1 = hash_key(1, &[2, 3]);
        assert_eq!(h1, hash_key(1, &[2, 3]));
        assert_ne!(h1, hash_key(1, &[3, 2]));
        assert_ne!(h1, hash_key(2, &[2, 3]));
    }

    #[test]
    fn hash_key_is_roughly_uniform() {
        // Crude balance check: the unit mapping of 4k hashed keys should
        // land ~half below 0.5.
        let n = 4096;
        let below = (0..n)
            .filter(|&i| unit_f64(hash_key(9, &[i, i * 31])) < 0.5)
            .count();
        assert!((1700..2400).contains(&below), "badly skewed: {below}/{n}");
    }
}
