//! # psse-faults — deterministic fault schedules for the virtual machine
//!
//! The paper's perfect-strong-scaling band (Eq. 1/2) assumes every rank
//! and every message survives. This crate supplies the vocabulary for
//! asking what resilience costs when they don't: a [`FaultPlan`]
//! schedules rank crashes and link faults (drop / corrupt / duplicate /
//! delay) **entirely in virtual time** from a seeded splitmix64 hash, and
//! a [`RecoveryPolicy`] describes how the machine answers them — acked
//! sends with bounded exponential backoff, and coordinated
//! checkpoint/restart whose volume is priced through the paper's own
//! cost model.
//!
//! Design rules:
//!
//! - **No `std` RNG, no global state.** Every decision is a pure
//!   function of `(seed, link, transfer index, attempt)`, so a faulted
//!   run is bit-identical across repeats and independent of OS thread
//!   scheduling — traces recorded under faults stay replayable.
//! - **Leaf crate.** `psse-sim` depends on this crate, never the other
//!   way round; the types here know nothing about ranks or channels.
//!
//! See `psse-sim`'s `SimConfig::faults` for the injection hook and
//! DESIGN.md ("Fault model") for the semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod rng;

pub use plan::{CheckpointPolicy, CrashEvent, FaultPlan, FaultSpec, LinkFaultKind, RecoveryPolicy};
pub use rng::SplitMix64;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::plan::{
        CheckpointPolicy, CrashEvent, FaultPlan, FaultSpec, LinkFaultKind, RecoveryPolicy,
    };
    pub use crate::rng::SplitMix64;
}
