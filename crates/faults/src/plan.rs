//! Fault plans and recovery policies.
//!
//! A [`FaultPlan`] is a *pure schedule*: it answers "what happens to the
//! k-th transfer on link `src → dest`?" and "when does rank `r` crash?"
//! as deterministic functions of a seed, with no mutable state. The
//! simulator consults it at well-defined points of virtual time, so the
//! same plan produces the same faulted execution bit-for-bit on every
//! run, regardless of OS thread scheduling.

use crate::rng::{hash_key, unit_f64};

/// What the link does to one transfer (one `Rank::send` call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// The transfer is lost; an acked protocol detects the missing ack
    /// and retries, an unacked one gives up ([`RecoveryPolicy::max_retries`]
    /// = 0 turns a drop into an unrecoverable failure).
    Drop,
    /// The payload is altered in flight. With retries enabled the ack
    /// checksum catches it (same cost as a drop); without, the corrupted
    /// payload is delivered silently — detecting it is ABFT's job.
    Corrupt,
    /// The transfer crosses the wire twice; the duplicate is discarded at
    /// the receiver but its bandwidth and latency are still paid.
    Duplicate,
    /// The link stalls for [`FaultSpec::delay_seconds`] of virtual time
    /// before the transfer departs.
    Delay,
}

/// A scheduled crash: rank `rank` fails the first time its virtual clock
/// reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// The rank that crashes.
    pub rank: usize,
    /// Virtual time of the crash, seconds.
    pub at: f64,
}

/// What goes wrong, and how often. Rates are per-transfer probabilities;
/// their sum must be ≤ 1 (at most one fault per transfer).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for every fault decision. Same seed ⇒ same faults.
    pub seed: u64,
    /// Probability a transfer is dropped.
    pub drop_rate: f64,
    /// Probability a transfer is corrupted.
    pub corrupt_rate: f64,
    /// Probability a transfer is duplicated.
    pub duplicate_rate: f64,
    /// Probability a transfer is delayed.
    pub delay_rate: f64,
    /// Virtual-time stall applied by a [`LinkFaultKind::Delay`] fault.
    pub delay_seconds: f64,
    /// Scheduled rank crashes (virtual time).
    pub crashes: Vec<CrashEvent>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            delay_seconds: 0.0,
            crashes: Vec::new(),
        }
    }
}

/// Coordinated checkpoint policy: every `interval` virtual seconds each
/// rank writes `words` words of state to stable storage (priced like a
/// message: `αt + βt·w` per chunk, and the words/messages advance the
/// energy model's `W`/`S`). After a crash the rank replays the work since
/// the last checkpoint boundary and pays `restart_seconds` to rejoin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint interval, virtual seconds.
    pub interval: f64,
    /// Checkpoint volume per rank, words.
    pub words: u64,
    /// Fixed restart cost after a crash, virtual seconds.
    pub restart_seconds: f64,
}

/// How the machine reacts to link faults and crashes.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries after a failed (dropped / corrupt-detected) transfer
    /// attempt. 0 disables the ack protocol: drops become
    /// `RetriesExhausted` and corruptions are delivered silently.
    pub max_retries: u32,
    /// Base backoff before retry `j` (the wait is `retry_backoff · 2^j`
    /// virtual seconds).
    pub retry_backoff: f64,
    /// Coordinated checkpoint/restart; `None` makes crashes fatal.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            retry_backoff: 0.0,
            checkpoint: None,
        }
    }
}

/// A complete, self-contained fault schedule plus the recovery policy
/// that answers it. Plug into `SimConfig::faults`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// What goes wrong.
    pub spec: FaultSpec,
    /// How the machine recovers.
    pub recovery: RecoveryPolicy,
}

/// Domain-separation constants so link-fault and corruption-index
/// decisions drawn from the same coordinates stay independent.
const DOMAIN_LINK: u64 = 1;
const DOMAIN_INDEX: u64 = 2;

impl FaultPlan {
    /// A plan that injects nothing and recovers nothing (useful as a
    /// base for struct-update syntax).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Validate rates and policy parameters. Returns a human-readable
    /// description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let s = &self.spec;
        for (name, r) in [
            ("drop_rate", s.drop_rate),
            ("corrupt_rate", s.corrupt_rate),
            ("duplicate_rate", s.duplicate_rate),
            ("delay_rate", s.delay_rate),
        ] {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(format!("fault {name} must be in [0, 1], got {r}"));
            }
        }
        let sum = s.drop_rate + s.corrupt_rate + s.duplicate_rate + s.delay_rate;
        if sum > 1.0 {
            return Err(format!("fault rates must sum to <= 1, got {sum}"));
        }
        if s.delay_seconds < 0.0 || !s.delay_seconds.is_finite() {
            return Err(format!(
                "delay_seconds must be finite and >= 0, got {}",
                s.delay_seconds
            ));
        }
        for c in &s.crashes {
            if c.at < 0.0 || !c.at.is_finite() {
                return Err(format!(
                    "crash time for rank {} must be finite and >= 0, got {}",
                    c.rank, c.at
                ));
            }
        }
        let rp = &self.recovery;
        if rp.retry_backoff < 0.0 || !rp.retry_backoff.is_finite() {
            return Err(format!(
                "retry_backoff must be finite and >= 0, got {}",
                rp.retry_backoff
            ));
        }
        if let Some(cp) = &rp.checkpoint {
            if cp.interval <= 0.0 || !cp.interval.is_finite() {
                return Err(format!(
                    "checkpoint interval must be finite and > 0, got {}",
                    cp.interval
                ));
            }
            if cp.restart_seconds < 0.0 || !cp.restart_seconds.is_finite() {
                return Err(format!(
                    "restart_seconds must be finite and >= 0, got {}",
                    cp.restart_seconds
                ));
            }
        }
        Ok(())
    }

    /// The fate of attempt `attempt` of the `transfer`-th transfer on
    /// link `src → dest`. Attempt 0 is the original send; retries ask
    /// again with increasing `attempt`. Pure function of the seed.
    #[must_use]
    pub fn attempt_fault(
        &self,
        src: usize,
        dest: usize,
        transfer: u64,
        attempt: u32,
    ) -> Option<LinkFaultKind> {
        let s = &self.spec;
        let u = unit_f64(hash_key(
            s.seed,
            &[
                DOMAIN_LINK,
                src as u64,
                dest as u64,
                transfer,
                attempt as u64,
            ],
        ));
        let mut edge = s.drop_rate;
        if u < edge {
            return Some(LinkFaultKind::Drop);
        }
        edge += s.corrupt_rate;
        if u < edge {
            return Some(LinkFaultKind::Corrupt);
        }
        edge += s.duplicate_rate;
        if u < edge {
            return Some(LinkFaultKind::Duplicate);
        }
        edge += s.delay_rate;
        if u < edge {
            return Some(LinkFaultKind::Delay);
        }
        None
    }

    /// The fate of the `transfer`-th transfer on link `src → dest`
    /// (attempt 0).
    #[must_use]
    pub fn link_fault(&self, src: usize, dest: usize, transfer: u64) -> Option<LinkFaultKind> {
        self.attempt_fault(src, dest, transfer, 0)
    }

    /// Which payload element a [`LinkFaultKind::Corrupt`] fault flips,
    /// for a payload of `len` words. Deterministic and independent of
    /// the drop/corrupt draw.
    #[must_use]
    pub fn corrupt_index(&self, src: usize, dest: usize, transfer: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let h = hash_key(
            self.spec.seed,
            &[DOMAIN_INDEX, src as u64, dest as u64, transfer],
        );
        (h % len as u64) as usize
    }

    /// The first scheduled crash time for `rank`, if any.
    #[must_use]
    pub fn crash_at(&self, rank: usize) -> Option<f64> {
        self.spec
            .crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Export the plan's configuration into a metrics registry under
    /// `prefix`, so a run report names the fault regime it was priced
    /// under. Rates are exported as parts-per-million gauges (the
    /// registry is integer-only by design), the delay as nanoseconds,
    /// plus the scheduled crash count and the recovery policy knobs.
    /// Dynamic resilience *outcomes* (retries taken, checkpoint words
    /// written) live in the simulator's per-rank counters and are
    /// exported by `Profile::export_metrics`.
    pub fn export_metrics(&self, reg: &psse_metrics::Registry, prefix: &str) -> Result<(), String> {
        let ppm = |r: f64| (r * 1e6).round() as i64;
        let s = &self.spec;
        for (name, v) in [
            ("drop_rate_ppm", ppm(s.drop_rate)),
            ("corrupt_rate_ppm", ppm(s.corrupt_rate)),
            ("duplicate_rate_ppm", ppm(s.duplicate_rate)),
            ("delay_rate_ppm", ppm(s.delay_rate)),
            (
                "delay_ns",
                psse_metrics::saturating_nanos(s.delay_seconds) as i64,
            ),
            ("crashes_scheduled", s.crashes.len() as i64),
            ("max_retries", self.recovery.max_retries as i64),
            (
                "checkpoint_words",
                self.recovery
                    .checkpoint
                    .map_or(0, |cp| cp.words.min(i64::MAX as u64) as i64),
            ),
        ] {
            reg.gauge(&format!("{prefix}.{name}"))?.set(v);
        }
        Ok(())
    }

    /// True when the plan can inject at least one fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        let s = &self.spec;
        s.drop_rate > 0.0
            || s.corrupt_rate > 0.0
            || s.duplicate_rate > 0.0
            || s.delay_rate > 0.0
            || !s.crashes.is_empty()
            || self.recovery.checkpoint.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop: f64, corrupt: f64) -> FaultPlan {
        FaultPlan {
            spec: FaultSpec {
                seed: 11,
                drop_rate: drop,
                corrupt_rate: corrupt,
                ..FaultSpec::default()
            },
            ..FaultPlan::default()
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let p = plan(0.3, 0.2);
        for t in 0..50u64 {
            assert_eq!(p.link_fault(1, 2, t), p.link_fault(1, 2, t));
            assert_eq!(p.attempt_fault(1, 2, t, 3), p.attempt_fault(1, 2, t, 3));
        }
        // A different seed gives a different schedule somewhere.
        let q = FaultPlan {
            spec: FaultSpec {
                seed: 12,
                ..p.spec.clone()
            },
            ..p.clone()
        };
        assert!((0..200u64).any(|t| p.link_fault(0, 1, t) != q.link_fault(0, 1, t)));
    }

    #[test]
    fn rates_control_frequency() {
        let p = plan(0.5, 0.0);
        let n = 2000u64;
        let drops = (0..n)
            .filter(|&t| p.link_fault(0, 1, t) == Some(LinkFaultKind::Drop))
            .count();
        let frac = drops as f64 / n as f64;
        assert!((0.42..0.58).contains(&frac), "drop fraction {frac}");
        // Zero rates never fire.
        let none = plan(0.0, 0.0);
        assert!((0..500u64).all(|t| none.link_fault(0, 1, t).is_none()));
        // Rate 1 always fires.
        let all = plan(1.0, 0.0);
        assert!((0..500u64).all(|t| all.link_fault(0, 1, t) == Some(LinkFaultKind::Drop)));
    }

    #[test]
    fn links_and_attempts_are_independent_coordinates() {
        let p = plan(0.5, 0.0);
        // Different links must not share the same fault pattern.
        let pat = |src: usize, dest: usize| -> Vec<bool> {
            (0..64u64)
                .map(|t| p.link_fault(src, dest, t).is_some())
                .collect()
        };
        assert_ne!(pat(0, 1), pat(1, 0));
        assert_ne!(pat(0, 1), pat(0, 2));
        // Retry attempts re-draw.
        assert!((0..200u64).any(|t| {
            p.attempt_fault(0, 1, t, 0).is_some() && p.attempt_fault(0, 1, t, 1).is_none()
        }));
    }

    #[test]
    fn corrupt_index_in_bounds() {
        let p = plan(0.0, 1.0);
        for t in 0..100 {
            let i = p.corrupt_index(2, 3, t, 17);
            assert!(i < 17);
        }
        assert_eq!(p.corrupt_index(2, 3, 0, 0), 0);
    }

    #[test]
    fn crash_at_picks_earliest() {
        let p = FaultPlan {
            spec: FaultSpec {
                crashes: vec![
                    CrashEvent { rank: 2, at: 5.0 },
                    CrashEvent { rank: 2, at: 3.0 },
                    CrashEvent { rank: 1, at: 1.0 },
                ],
                ..FaultSpec::default()
            },
            ..FaultPlan::default()
        };
        assert_eq!(p.crash_at(2), Some(3.0));
        assert_eq!(p.crash_at(1), Some(1.0));
        assert_eq!(p.crash_at(0), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(plan(0.5, 0.2).validate().is_ok());
        assert!(plan(-0.1, 0.0).validate().is_err());
        assert!(plan(0.7, 0.7).validate().is_err());
        let mut p = plan(0.0, 0.0);
        p.spec.delay_seconds = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = plan(0.0, 0.0);
        p.recovery.checkpoint = Some(CheckpointPolicy {
            interval: 0.0,
            words: 10,
            restart_seconds: 0.0,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn export_metrics_describes_the_regime() {
        use psse_metrics::{Registry, SnapshotValue};
        let mut p = plan(0.25, 0.0);
        p.spec.crashes.push(CrashEvent { rank: 1, at: 2.0 });
        p.recovery.max_retries = 3;
        let reg = Registry::new();
        p.export_metrics(&reg, "faults").unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("faults.drop_rate_ppm"),
            Some(&SnapshotValue::Gauge(250_000))
        );
        assert_eq!(
            snap.get("faults.crashes_scheduled"),
            Some(&SnapshotValue::Gauge(1))
        );
        assert_eq!(
            snap.get("faults.max_retries"),
            Some(&SnapshotValue::Gauge(3))
        );
        assert_eq!(
            snap.get("faults.checkpoint_words"),
            Some(&SnapshotValue::Gauge(0))
        );
    }

    #[test]
    fn is_active_detects_injection() {
        assert!(!FaultPlan::none().is_active());
        assert!(plan(0.1, 0.0).is_active());
        let mut p = FaultPlan::none();
        p.spec.crashes.push(CrashEvent { rank: 0, at: 1.0 });
        assert!(p.is_active());
    }
}
