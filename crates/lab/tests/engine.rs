//! Acceptance tests for the batch engine: a ≥200-run spec executes
//! through the worker pool with byte-identical output for any `--jobs`
//! value, and a warm persistent cache answers ≥95% of a rerun.

use psse_lab::prelude::*;

/// 15 × 15 = 225 model runs over the Fig. 4-style (p, M) plane.
const SPEC: &str = "\
kind = model
alg  = nbody
# contrived Fig. 4 machine
machine = jaketown
gamma-t = 1e-9
beta-t  = 2e-8
alpha-t = 1e-6
gamma-e = 1e-9
beta-e  = 4e-6
alpha-e = 1e-4
delta-e = 5e-4
epsilon-e = 0
max-message = 100
mem-words = 1e12
n    = 10000
p    = geom:6:100:15
mem  = geomf:2e2:1e6:15
f    = 10
";

fn lab(jobs: usize, dir: Option<std::path::PathBuf>) -> Lab {
    Lab::new(LabConfig {
        jobs,
        cache_dir: dir,
        ..LabConfig::default()
    })
}

#[test]
fn jobs_1_and_jobs_8_emit_identical_bytes() {
    let spec = SweepSpec::parse(SPEC).unwrap();
    assert!(spec.len() >= 200, "spec covers {} runs", spec.len());

    let s1 = lab(1, None).run_spec(&spec);
    let s8 = lab(8, None).run_spec(&spec);
    assert_eq!(s1.failures(), 0);
    assert_eq!(s8.failures(), 0);

    let csv1 = sweep_csv(&s1.keys, &s1.results);
    let csv8 = sweep_csv(&s8.keys, &s8.results);
    assert_eq!(csv1, csv8, "CSV must be byte-identical for any job count");
    assert_eq!(
        pareto_csv(&s1.keys, &s1.results),
        pareto_csv(&s8.keys, &s8.results)
    );
    // Sanity: the sweep actually covers feasible and infeasible cells.
    let (feasible, infeasible) = s1.feasibility();
    assert!(feasible > 0 && infeasible > 0);
}

#[test]
fn warm_cache_rerun_hits_95_percent_with_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("psse-lab-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::parse(SPEC).unwrap();

    // Cold run populates the persistent cache.
    let cold = lab(8, Some(dir.clone()));
    let s_cold = cold.run_spec(&spec);
    let csv_cold = sweep_csv(&s_cold.keys, &s_cold.results);
    assert_eq!(s_cold.failures(), 0);

    // Fresh engine, same directory: everything answers from disk.
    let warm = lab(8, Some(dir.clone()));
    let s_warm = warm.run_spec(&spec);
    let csv_warm = sweep_csv(&s_warm.keys, &s_warm.results);

    let stats = warm.cache_stats();
    assert!(
        stats.hit_rate() >= 95.0,
        "warm cache hit rate {:.1}% (hits {}, misses {})",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    assert_eq!(csv_cold, csv_warm, "warm rerun must emit identical bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sabotaged_cache_records_never_alter_csv_bytes() {
    let dir = std::env::temp_dir().join(format!("psse-lab-sab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::parse(SPEC).unwrap();

    let cold = lab(4, Some(dir.clone()));
    let s_cold = cold.run_spec(&spec);
    let csv_cold = sweep_csv(&s_cold.keys, &s_cold.results);
    assert_eq!(s_cold.failures(), 0);

    // Sabotage four records four different ways: empty file, truncated
    // line, random garbage, and a valid record copied under the wrong
    // digest filename (content/filename mismatch).
    let mut recs: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rec"))
        .collect();
    recs.sort();
    assert!(recs.len() >= 4, "expected ≥4 records, got {}", recs.len());
    std::fs::write(&recs[0], "").unwrap();
    let half = std::fs::read(&recs[1]).unwrap();
    std::fs::write(&recs[1], &half[..half.len() / 2]).unwrap();
    let stolen = std::fs::read(&recs[2]).unwrap();
    std::fs::write(&recs[2], "not a record at all\n").unwrap();
    std::fs::write(&recs[3], &stolen).unwrap(); // recs[2]'s bytes under recs[3]'s name

    // A fresh engine re-reads the directory: every sabotaged record is
    // a miss (recomputed), quarantined, and the CSV bytes are unchanged.
    let warm = lab(4, Some(dir.clone()));
    let s_warm = warm.run_spec(&spec);
    assert_eq!(
        sweep_csv(&s_warm.keys, &s_warm.results),
        csv_cold,
        "sabotaged records must never alter CSV bytes"
    );
    let stats = warm.cache_stats();
    assert_eq!(stats.corrupt, 4, "{stats:?}");
    assert_eq!(stats.quarantined, 4, "{stats:?}");
    let qdir = dir.join(QUARANTINE_SUBDIR);
    assert_eq!(std::fs::read_dir(&qdir).unwrap().count(), 4);

    // The rewrite healed the cache: a third engine hits everything.
    let healed = lab(4, Some(dir.clone()));
    let s_healed = healed.run_spec(&spec);
    assert_eq!(sweep_csv(&s_healed.keys, &s_healed.results), csv_cold);
    assert_eq!(healed.cache_stats().corrupt, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_degrades_without_changing_bytes() {
    // A cache "directory" that is actually a file: every disk write
    // fails, the engine warns once and stays memory-only, and the CSV
    // is byte-identical to the diskless run.
    let path = std::env::temp_dir().join(format!("psse-lab-notadir-{}", std::process::id()));
    std::fs::write(&path, "occupied").unwrap();
    let spec = SweepSpec::parse(SPEC).unwrap();
    let plain = lab(4, None).run_spec(&spec);
    let degraded = lab(4, Some(path.clone())).run_spec(&spec);
    assert_eq!(
        sweep_csv(&plain.keys, &plain.results),
        sweep_csv(&degraded.keys, &degraded.results),
    );
    assert_eq!(degraded.failures(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn simulator_sweep_is_order_stable_across_jobs() {
    use psse_core::machines::jaketown;
    let keys: Vec<RunKey> = (0..6)
        .map(|i| {
            let mut k = RunKey::simulate("mm25d", 24, 4, jaketown());
            k.seed = 1 + (i % 3) as u64; // duplicates → intra-sweep cache hits
            k
        })
        .collect();
    let l1 = lab(1, None);
    let r1 = l1.run_keys(&keys);
    let l8 = lab(8, None);
    let r8 = l8.run_keys(&keys);
    for (a, b) in r1.iter().zip(&r8) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
    // Serial engine sees every duplicate as a hit.
    assert_eq!(l1.cache_stats().misses, 3);
    assert_eq!(l1.cache_stats().hits, 3);
}

#[test]
fn profiled_sweep_surfaces_event_engine_health() {
    // Drive the event engine's general (scheduled) executor so the
    // process-global health counters are non-zero before the sweep.
    // (The analytic fast path schedules nothing, so force past it; in
    // recursive doubling every rank sends before its partner is
    // waiting, so wires genuinely park in the mailbox slab.)
    use psse_event::prelude::*;
    let cfg = psse_sim::SimConfig {
        backend: psse_sim::Backend::Events,
        ..psse_sim::SimConfig::default()
    };
    EventMachine::run_general(64, &cfg, RecursiveDoublingAllreduce::counted(Tag(0), 100)).unwrap();

    let spec = SweepSpec::parse(SPEC).unwrap();
    let (results, profile) = lab(2, None).run_spec_profiled(&spec);
    assert_eq!(results.failures(), 0);
    let json = profile.to_json();
    let metrics = json.get("metrics").expect("profile has metrics");
    for name in [
        "event.slab.live",
        "event.slab.recycled",
        "event.calq.overflow",
    ] {
        assert!(
            metrics.get(name).is_some(),
            "profile metrics missing `{name}`"
        );
    }
    // The scheduled binomial allreduce parked wires in the slab, so the
    // high-water gauge must have registered it.
    let live = metrics
        .get("event.slab.live")
        .and_then(|m| m.get("value"))
        .and_then(psse_metrics::Json::as_int)
        .expect("event.slab.live gauge value");
    assert!(live > 0, "slab high-water mark should be non-zero: {live}");
}
