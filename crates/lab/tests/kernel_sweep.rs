//! Acceptance test for the `kernel =` spec axis: a sweep whose cost
//! model is derived from `specs/kernels/matmul.kernel` must price every
//! point bit-for-bit identically to the hand-written `alg = matmul`
//! sweep — same feasibility flags, same time/energy/power bytes in the
//! CSV — while occupying distinct cache slots (the kernel text is part
//! of the run identity).

use psse_lab::prelude::*;

fn kernel_path() -> String {
    format!(
        "{}/../../specs/kernels/matmul.kernel",
        env!("CARGO_MANIFEST_DIR")
    )
}

const GRID: &str = "n = 1024\np = pow2:4:32\nmem = geomf:2e4:3e5:4\n";

#[test]
fn kernel_matmul_sweep_is_bit_identical_to_alg_matmul() {
    let by_kernel =
        SweepSpec::parse(&format!("kind = model\nkernel = {}\n{GRID}", kernel_path())).unwrap();
    let by_alg = SweepSpec::parse(&format!("kind = model\nalg = matmul\n{GRID}")).unwrap();
    assert_eq!(by_kernel.alg, "kernel:matmul");
    assert_eq!(by_kernel.len(), by_alg.len());

    // Distinct identities: every kernel-run digest differs from its
    // alg-run counterpart (and the kernel text is what separates them).
    let (ka, kb) = (by_kernel.expand(), by_alg.expand());
    for (a, b) in ka.iter().zip(&kb) {
        assert_ne!(a.digest(), b.digest());
        assert!(a.kernel.is_some() && b.kernel.is_none());
    }

    // Identical prices: the CSVs agree on every byte once the alg
    // label is normalized away.
    let lab = Lab::new(LabConfig::default());
    let ra = lab.run_spec(&by_kernel);
    let rb = lab.run_spec(&by_alg);
    let csv_a = sweep_csv(&ra.keys, &ra.results).replace("kernel:matmul", "matmul");
    let csv_b = sweep_csv(&rb.keys, &rb.results);
    assert_eq!(csv_a, csv_b);
    assert!(csv_a.lines().count() > by_kernel.len(), "no failed rows");
}

#[test]
fn kernel_sweep_minimal_memory_sentinel_matches_too() {
    // `mem` omitted: the 0.0 sentinel resolves to the algorithm's
    // minimal memory, which the derived model must reproduce exactly.
    let by_kernel = SweepSpec::parse(&format!(
        "kind = model\nkernel = {}\nn = 512\np = 4,9,16\n",
        kernel_path()
    ))
    .unwrap();
    let by_alg = SweepSpec::parse("kind = model\nalg = matmul\nn = 512\np = 4,9,16\n").unwrap();
    let lab = Lab::new(LabConfig::default());
    let ra = lab.run_spec(&by_kernel);
    let rb = lab.run_spec(&by_alg);
    for (a, b) in ra.results.iter().zip(&rb.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.mem_used.to_bits(), b.mem_used.to_bits());
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        assert_eq!(a.feasible, b.feasible);
    }
}
