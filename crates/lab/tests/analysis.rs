//! Acceptance tests for the analysis layer: the detected
//! perfect-strong-scaling range for n-body agrees with the `psse-core`
//! closed forms, and the (T, E) Pareto frontier for 2.5D matmul
//! respects the pmin/pmax band from `bounds.rs`.

use psse_core::costs::{Algorithm, ClassicalMatMul, DirectNBody};
use psse_core::optimize::matmul::MatMulOptimizer;
use psse_core::optimize::nbody::NBodyOptimizer;
use psse_core::params::MachineParams;
use psse_lab::prelude::*;

/// The Fig. 4 contrived machine (M0 = 1000 for n = 10⁴, f = 10).
fn contrived() -> MachineParams {
    MachineParams::builder()
        .gamma_t(1e-9)
        .beta_t(2e-8)
        .alpha_t(1e-6)
        .gamma_e(1e-9)
        .beta_e(4e-6)
        .alpha_e(1e-4)
        .delta_e(5e-4)
        .epsilon_e(0.0)
        .max_message_words(100.0)
        .mem_words(1e12)
        .build()
        .unwrap()
}

const N: u64 = 10_000;
const F: f64 = 10.0;

/// Run an n-body model p-ladder at fixed memory and return the feasible
/// `(p, T, E)` samples in ascending p.
fn nbody_ladder(mem: f64, ps: impl Iterator<Item = u64>) -> Vec<(u64, f64, f64)> {
    let lab = Lab::new(LabConfig::default());
    let keys: Vec<RunKey> = ps
        .map(|p| {
            let mut k = RunKey::model("nbody", N, p, contrived());
            k.f = F;
            k.mem = mem;
            k
        })
        .collect();
    let results = lab.run_keys(&keys);
    keys.iter()
        .zip(&results)
        .filter_map(|(k, r)| {
            let r = r.as_ref().ok()?;
            r.feasible.then_some((k.p, r.time, r.energy))
        })
        .collect()
}

#[test]
fn nbody_detected_range_matches_closed_form() {
    // Closed form (paper Eq. 16 region): p ∈ [n/M, n²/M²] at fixed M.
    let mem = 500.0;
    let range = DirectNBody {
        flops_per_interaction: F,
    }
    .strong_scaling_range(N, mem)
    .unwrap();
    assert_eq!(range.p_min, N as f64 / mem); // 20
    assert_eq!(range.p_max, (N as f64 / mem).powi(2)); // 400

    // Integer ladder straddling the band on both sides.
    let samples = nbody_ladder(mem, (1..=120).map(|i| 5 * i));
    let detected = detect_scaling_range(&samples, 1e-9).unwrap();
    // Perfect strong scaling holds across the *entire* feasible band —
    // the detector must recover exactly the closed-form endpoints.
    assert_eq!(detected.p_min as f64, range.p_min);
    assert_eq!(detected.p_max as f64, range.p_max);
    assert!(range.contains(detected.p_min as f64));
    assert!(range.contains(detected.p_max as f64));
}

#[test]
fn nbody_detected_range_at_m0_matches_optimizer() {
    // Cross-check against core::optimize: at the energy-optimal memory
    // M0, the feasible processor range is m0_processor_range.
    let mp = contrived();
    let opt = NBodyOptimizer::new(&mp, F).unwrap();
    let m0 = opt.m0().unwrap();
    let (p_lo, p_hi) = opt.m0_processor_range(N).unwrap();

    let samples = nbody_ladder(m0, 1..=200);
    let detected = detect_scaling_range(&samples, 1e-9).unwrap();
    assert_eq!(detected.p_min, p_lo.ceil() as u64);
    assert_eq!(detected.p_max, p_hi.floor() as u64);
    // And energy across the detected band equals E* (flat at minimum).
    let e_star = opt.e_star(N).unwrap();
    for &(_, _, e) in &samples {
        assert!((e / e_star - 1.0).abs() < 1e-9);
    }
}

#[test]
fn matmul_25d_frontier_respects_pmin_pmax_band() {
    let n = 8192u64;
    let machine = psse_core::machines::jaketown();
    let alg = ClassicalMatMul;

    // Grid: p over powers of two, M log-spaced over the union of all
    // per-p memory bands; infeasible (p, M) combinations are flagged by
    // the runner and excluded from the frontier.
    let ps: Vec<u64> = (0..12).map(|k| 1u64 << k).collect();
    let m_lo = alg.min_memory(n, *ps.last().unwrap());
    let m_hi = alg.max_useful_memory(n, ps[0]);
    let mems: Vec<f64> = (0..40)
        .map(|i| m_lo * (m_hi / m_lo).powf(i as f64 / 39.0))
        .collect();

    let lab = Lab::new(LabConfig {
        jobs: 4,
        ..LabConfig::default()
    });
    let mut keys = Vec::new();
    for &p in &ps {
        for &m in &mems {
            let mut k = RunKey::model("matmul", n, p, machine.clone());
            k.mem = m;
            keys.push(k);
        }
    }
    let results = lab.run_keys(&keys);

    let idx: Vec<usize> = (0..keys.len())
        .filter(|&i| matches!(&results[i], Ok(r) if r.feasible))
        .collect();
    assert!(idx.len() > 50, "grid too sparse: {} feasible", idx.len());
    let pts: Vec<(f64, f64)> = idx
        .iter()
        .map(|&i| {
            let r = results[i].as_ref().unwrap();
            (r.time, r.energy)
        })
        .collect();
    let frontier = pareto_indices(&pts);
    assert!(!frontier.is_empty());

    // Every frontier point must sit inside the strong-scaling band
    // [pmin(M), pmax(M)] from bounds.rs for its own memory.
    for &fi in &frontier {
        let key = &keys[idx[fi]];
        let r = results[idx[fi]].as_ref().unwrap();
        let band = alg
            .strong_scaling_range(n, r.mem_used)
            .expect("2.5D matmul has a strong-scaling range");
        assert!(
            band.contains(key.p as f64),
            "frontier point p = {} outside [{:.3e}, {:.3e}] at M = {:.3e}",
            key.p,
            band.p_min,
            band.p_max,
            r.mem_used
        );
    }

    // The frontier's minimum energy approaches the closed-form E*
    // (the grid brackets M0, so the best grid point is within a few %).
    let opt = MatMulOptimizer::new(&machine).unwrap();
    let e_star = opt.e_star(n).unwrap();
    let best_e = frontier
        .iter()
        .map(|&fi| pts[fi].1)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_e >= e_star * (1.0 - 1e-9) && best_e <= e_star * 1.10,
        "frontier min energy {best_e:.4e} vs closed-form E* {e_star:.4e}"
    );

    // Frontier shape sanity: sorted by time, energies strictly decrease.
    let mut ordered: Vec<(f64, f64)> = frontier.iter().map(|&fi| pts[fi]).collect();
    ordered.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for w in ordered.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}
