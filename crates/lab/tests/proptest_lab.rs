//! Property-based tests: the fast Pareto extractor against the naive
//! O(n²) dominance reference (and permutation invariance), RunKey
//! digest injectivity over generated grids, and the self-profile's
//! JSON round-trip.

use proptest::prelude::*;
use psse_core::machines::jaketown;
use psse_faults::rng::SplitMix64;
use psse_lab::pool::WorkerSpan;
use psse_lab::prelude::*;
use psse_metrics::{Json, Registry};

/// Quantized coordinates: small integer lattices force plenty of exact
/// ties and duplicates, the hard cases for dominance logic.
fn to_points(raw: &[(u64, u64)]) -> Vec<(f64, f64)> {
    raw.iter()
        .map(|&(t, e)| (t as f64 / 4.0, e as f64 / 4.0))
        .collect()
}

/// Deterministic Fisher-Yates driven by the workspace splitmix64.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = SplitMix64::new(seed);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Multiset of surviving points (bit-exact), independent of indices.
fn frontier_points(pts: &[(f64, f64)]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = pareto_indices(pts)
        .into_iter()
        .map(|i| (pts[i].0.to_bits(), pts[i].1.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The O(n log n) extractor agrees with the O(n²) reference.
    #[test]
    fn pareto_matches_naive_reference(raw in prop::collection::vec((0u64..32, 0u64..32), 0..80)) {
        let pts = to_points(&raw);
        prop_assert_eq!(pareto_indices(&pts), pareto_indices_naive(&pts));
    }

    /// The frontier (as a multiset of points) is invariant under any
    /// permutation of the input.
    #[test]
    fn pareto_is_permutation_invariant(
        raw in prop::collection::vec((0u64..32, 0u64..32), 1..60),
        seed in 0u64..10_000,
    ) {
        let pts = to_points(&raw);
        let perm = shuffled(&pts, seed);
        prop_assert_eq!(frontier_points(&pts), frontier_points(&perm));
    }

    /// Digests are injective across a generated (alg, n, p, c, mem, kind)
    /// grid: every distinct key gets a distinct digest.
    #[test]
    fn digests_are_injective_across_a_grid(
        nn in 1usize..4, np in 1usize..5, nm in 1usize..4, base in 1u64..64,
    ) {
        let machine = jaketown();
        let mut keys = Vec::new();
        for alg in ["nbody", "matmul", "lu"] {
            for ni in 0..nn {
                for pi in 0..np {
                    for mi in 0..nm {
                        for kind in [RunKind::Model, RunKind::Simulate] {
                            let mut k = RunKey::model(
                                alg,
                                base + 100 * ni as u64,
                                1 + pi as u64,
                                machine.clone(),
                            );
                            k.kind = kind;
                            k.mem = mi as f64 * 128.0;
                            keys.push(k);
                        }
                    }
                }
            }
        }
        let digests: std::collections::HashSet<String> =
            keys.iter().map(|k| k.digest()).collect();
        prop_assert_eq!(digests.len(), keys.len(), "digest collision in grid");
    }

    /// Digest stability: the digest is a pure function of the key, so
    /// re-digesting (even after a round trip through clone) never drifts
    /// within or across processes. (The cross-process pin lives in the
    /// crate's unit tests with a hardcoded value.)
    #[test]
    fn digest_is_reproducible(n in 2u64..10_000, p in 1u64..512, mem in 0u64..100_000) {
        let mut k = RunKey::model("cholesky", n, p, jaketown());
        k.mem = mem as f64;
        let d1 = k.digest();
        let d2 = k.clone().digest();
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(d1.len(), 32);
        prop_assert!(d1.chars().all(|c| c.is_ascii_hexdigit()));
    }

    /// The self-profile survives JSON emit → parse exactly, for any
    /// shape of run list, worker table, cache counters and attached
    /// metric series.
    #[test]
    fn sweep_profile_round_trips_through_json(
        jobs in 1u64..17,
        wall in any::<u64>(),
        runs_raw in prop::collection::vec((any::<u64>(), any::<bool>(), any::<bool>()), 0..12),
        workers_raw in prop::collection::vec((any::<u64>(), 0u64..1000), 0..8),
        cache_raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        metric_vals in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("virt.time_ns").unwrap();
        for &v in &metric_vals {
            h.record(v);
        }
        reg.counter("virt.retries").unwrap().add(metric_vals.len() as u64);
        let profile = SweepProfile {
            jobs: jobs as usize,
            wall_ns: wall,
            runs: runs_raw
                .iter()
                .enumerate()
                .map(|(i, &(wall_ns, cached, ok))| RunProfile {
                    label: format!("model nbody n={i} p=4"),
                    digest: format!("{i:032x}"),
                    wall_ns,
                    cached,
                    ok,
                })
                .collect(),
            workers: workers_raw
                .iter()
                .map(|&(busy_ns, items)| WorkerSpan { busy_ns, items })
                .collect(),
            cache: CacheStats {
                hits: cache_raw.0,
                misses: cache_raw.1,
                evictions: cache_raw.2,
                corrupt: cache_raw.3,
                quarantined: cache_raw.4,
            },
            metrics: reg.snapshot().to_json(),
        };
        let text = profile.to_json().to_string();
        let back = SweepProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &profile);
        // Emission is canonical: re-serializing reproduces the bytes.
        prop_assert_eq!(back.to_json().to_string(), text);
    }

    /// Kill-resume identity: truncate the journal at *any* byte offset
    /// — mid-header, mid-line, between lines — then resume, and the
    /// final results and CSV bytes must match an uninterrupted sweep,
    /// for any worker count.
    #[test]
    fn journal_resume_is_identical_for_any_cut(cut in 0.0f64..1.0, jobs in 1usize..5) {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:8\nmem = 2000\nf = 10\n",
        )
        .unwrap();
        let keys = spec.expand();
        let sd = spec_digest(&keys);
        let path = std::env::temp_dir().join(format!(
            "psse-lab-cutpt-{}-{}-{:016x}",
            std::process::id(),
            jobs,
            cut.to_bits(),
        ));
        let _ = std::fs::remove_file(&path);

        let cfg = || LabConfig { jobs, ..LabConfig::default() };
        let reference = Lab::new(cfg()).run_spec(&spec);
        let ref_csv = sweep_csv(&reference.keys, &reference.results);

        // Journal a full sweep, then "kill" it at an arbitrary byte.
        let mut lab = Lab::new(cfg());
        lab.set_journal(Journal::create(&path, &sd).unwrap());
        let first = lab.run_spec(&spec);
        prop_assert_eq!(&first.results, &reference.results);
        drop(lab);
        let bytes = std::fs::read(&path).unwrap();
        let cut_at = ((bytes.len() as f64) * cut) as usize;
        std::fs::write(&path, &bytes[..cut_at.min(bytes.len())]).unwrap();

        // Resume: torn tails are truncated, torn headers start fresh.
        let (journal, replayed) = Journal::open_resume(&path, &sd).unwrap();
        let mut lab2 = Lab::new(cfg());
        lab2.seed(&replayed);
        lab2.set_journal(journal);
        let resumed = lab2.run_spec(&spec);
        prop_assert_eq!(&resumed.results, &reference.results);
        let resumed_csv = sweep_csv(&resumed.keys, &resumed.results);
        prop_assert_eq!(resumed_csv, ref_csv);

        // The journal is whole again: a second resume replays every
        // distinct key without re-running anything.
        let distinct: std::collections::HashSet<String> =
            keys.iter().map(|k| k.digest()).collect();
        let (_, replayed2) = Journal::open_resume(&path, &sd).unwrap();
        prop_assert_eq!(replayed2.len(), distinct.len());
        let _ = std::fs::remove_file(&path);
    }
}
