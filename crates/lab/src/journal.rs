//! Crash-safe sweep journal: one self-checksummed line per completed
//! run, so an interrupted sweep resumes instead of restarting.
//!
//! # Format
//!
//! A journal is a line-oriented text file:
//!
//! ```text
//! journal  = header run*
//! header   = "psse-lab-journal v1 " spec-digest " " checksum "\n"
//! run      = "run " key-digest " " v1-result-line " " checksum "\n"
//! checksum = 16 lowercase hex chars (splitmix64 of everything before it)
//! ```
//!
//! `spec-digest` hashes the sweep's ordered run-key digests, so a
//! journal can only resume the sweep it was recorded for. Every line
//! carries a trailing [`line_checksum`] over its own body: a crash mid
//! `write(2)` leaves a torn tail that fails either the newline or the
//! checksum test, and [`Journal::open_resume`] truncates the file back
//! to the last intact line before replaying it. Only *successful* runs
//! are journaled — failures re-execute on resume, which is exactly what
//! a crashed or timed-out key needs.
//!
//! Replayed results seed the lab's in-memory cache, so the resumed
//! sweep recomputes only what is missing and the final CSV is
//! byte-identical to an uninterrupted run (results round-trip through
//! the same exact-bits `v1` encoding the disk cache uses).

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::key::RunKey;
use crate::result::{line_checksum, RunResult};

const HEADER_PREFIX: &str = "psse-lab-journal v1";

/// Digest of a sweep's identity: splitmix64 chains over the ordered
/// run-key digests. Two sweeps share a journal iff they expand to the
/// same keys in the same order.
pub fn spec_digest(keys: &[RunKey]) -> String {
    let joined = keys
        .iter()
        .map(|k| k.digest())
        .collect::<Vec<_>>()
        .join(" ");
    // Two salted chains for 128 bits, like the run-key digest itself.
    let hi = line_checksum(&format!("spec-hi {joined}"));
    let lo = line_checksum(&format!("spec-lo {joined}"));
    format!("{hi:016x}{lo:016x}")
}

fn header_line(spec: &str) -> String {
    let body = format!("{HEADER_PREFIX} {spec}");
    format!("{body} {:016x}\n", line_checksum(&body))
}

/// Parse a (newline-stripped) header line; returns the spec digest it
/// claims, `None` on any malformation.
fn parse_header(line: &str) -> Option<String> {
    let (body, sum_hex) = line.rsplit_once(' ')?;
    if sum_hex.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum != line_checksum(body) {
        return None;
    }
    let spec = body.strip_prefix(HEADER_PREFIX)?.strip_prefix(' ')?;
    Some(spec.to_string())
}

fn run_line(digest: &str, result: &RunResult) -> String {
    let body = format!("run {digest} {}", result.to_line());
    format!("{body} {:016x}\n", line_checksum(&body))
}

/// Parse a (newline-stripped) run line into `(key digest, result)`;
/// `None` on any malformation — including a torn tail, whose checksum
/// cannot match.
fn parse_run_line(line: &str) -> Option<(String, RunResult)> {
    let (body, sum_hex) = line.rsplit_once(' ')?;
    if sum_hex.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum != line_checksum(body) {
        return None;
    }
    let rest = body.strip_prefix("run ")?;
    let (digest, result_line) = rest.split_once(' ')?;
    let result = RunResult::from_line(result_line)?;
    Some((digest.to_string(), result))
}

/// An append-only sweep journal (see the module docs for the format).
/// Thread-safe: workers record completions concurrently; each line is
/// written with a single `write_all` under a lock.
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    write_failed: AtomicBool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Start a fresh journal at `path` for the sweep identified by
    /// `spec` (see [`spec_digest`]): truncates whatever was there and
    /// writes the header.
    pub fn create(path: &Path, spec: &str) -> Result<Journal, String> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        file.write_all(header_line(spec).as_bytes())
            .map_err(|e| format!("cannot write journal header {}: {e}", path.display()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            write_failed: AtomicBool::new(false),
        })
    }

    /// Resume from an existing journal: validate the header against
    /// `spec`, replay every intact run line, truncate any torn tail,
    /// and reopen for appending. Returns the journal and the replayed
    /// `digest → result` map.
    ///
    /// A missing file starts a fresh journal (so `--resume` works on
    /// the very first attempt too). A journal whose header names a
    /// *different* spec is a hard error — silently mixing sweeps would
    /// corrupt both. A journal whose header itself is torn is treated
    /// as empty and rewritten.
    pub fn open_resume(
        path: &Path,
        spec: &str,
    ) -> Result<(Journal, HashMap<String, RunResult>), String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Journal::create(path, spec)?, HashMap::new()));
            }
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        let mut lines = text.split_inclusive('\n');
        let header_ok = match lines.next() {
            Some(h) if h.ends_with('\n') => match parse_header(h.trim_end()) {
                Some(found) if found == spec => true,
                Some(found) => {
                    return Err(format!(
                        "journal {} belongs to a different sweep \
                         (spec digest {found}, this sweep is {spec}); \
                         refusing to resume",
                        path.display()
                    ));
                }
                None => false,
            },
            _ => false,
        };
        if !header_ok {
            // Torn or empty header: nothing trustworthy to replay.
            return Ok((Journal::create(path, spec)?, HashMap::new()));
        }
        let mut valid_bytes = header_line(spec).len() as u64;
        let mut replayed = HashMap::new();
        for line in lines {
            if !line.ends_with('\n') {
                break;
            }
            match parse_run_line(line.trim_end()) {
                Some((digest, result)) => {
                    replayed.insert(digest, result);
                    valid_bytes += line.len() as u64;
                }
                None => break,
            }
        }
        // Drop the torn tail (if any), then append after the intact
        // prefix.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
        file.set_len(valid_bytes)
            .map_err(|e| format!("cannot truncate journal {}: {e}", path.display()))?;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
        file.flush().ok();
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
                write_failed: AtomicBool::new(false),
            },
            replayed,
        ))
    }

    /// Append one completed run. Best-effort: a write failure warns
    /// once on stderr and the sweep continues (the journal is a
    /// recovery aid, not a correctness dependency).
    pub fn record(&self, digest: &str, result: &RunResult) {
        let line = run_line(digest, result);
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let wrote = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        if let Err(e) = wrote {
            if !self.write_failed.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: journal {} stopped accepting writes ({e}); \
                     a crash from here on will not be resumable",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::machines::jaketown;

    fn keys() -> Vec<RunKey> {
        (1..=4)
            .map(|p| RunKey::model("nbody", 1000, p * 10, jaketown()))
            .collect()
    }

    fn r(t: f64) -> RunResult {
        RunResult::model(true, t, 2.0 * t, 100.0)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psse-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn spec_digest_tracks_key_list_and_order() {
        let ks = keys();
        assert_eq!(spec_digest(&ks), spec_digest(&ks));
        assert_eq!(spec_digest(&ks).len(), 32);
        let mut rev = ks.clone();
        rev.reverse();
        assert_ne!(spec_digest(&ks), spec_digest(&rev), "order matters");
        assert_ne!(spec_digest(&ks), spec_digest(&ks[1..]), "set matters");
    }

    #[test]
    fn create_record_resume_round_trips() {
        let path = tmp("roundtrip");
        let spec = spec_digest(&keys());
        {
            let j = Journal::create(&path, &spec).unwrap();
            j.record("aaaa", &r(1.0));
            j.record("bbbb", &r(2.0));
        }
        let (_j, replayed) = Journal::open_resume(&path, &spec).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed.get("aaaa"), Some(&r(1.0)));
        assert_eq!(replayed.get("bbbb"), Some(&r(2.0)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replayed() {
        let path = tmp("torn");
        let spec = spec_digest(&keys());
        {
            let j = Journal::create(&path, &spec).unwrap();
            j.record("aaaa", &r(1.0));
            j.record("bbbb", &r(2.0));
        }
        // Simulate a crash mid-write: chop the file mid last line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (j, replayed) = Journal::open_resume(&path, &spec).unwrap();
        assert_eq!(replayed.len(), 1, "torn line dropped");
        assert_eq!(replayed.get("aaaa"), Some(&r(1.0)));
        // Appending after the truncation yields an intact journal again.
        j.record("cccc", &r(3.0));
        drop(j);
        let (_j, again) = Journal::open_resume(&path, &spec).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.get("cccc"), Some(&r(3.0)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_spec_is_refused_and_torn_header_restarts() {
        let path = tmp("spec");
        let spec = spec_digest(&keys());
        {
            let j = Journal::create(&path, &spec).unwrap();
            j.record("aaaa", &r(1.0));
        }
        let other = spec_digest(&keys()[..2]);
        let err = Journal::open_resume(&path, &other).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        // A torn header (no newline) is treated as an empty journal.
        std::fs::write(&path, "psse-lab-journal v1 garbage").unwrap();
        let (_j, replayed) = Journal::open_resume(&path, &spec).unwrap();
        assert!(replayed.is_empty());
        // Missing file: fresh journal, empty replay.
        let missing = tmp("missing");
        let _ = std::fs::remove_file(&missing);
        let (_j, replayed) = Journal::open_resume(&missing, &spec).unwrap();
        assert!(replayed.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&missing);
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        let path = tmp("bits");
        let spec = spec_digest(&keys());
        let exotic = RunResult {
            feasible: true,
            verified: false,
            time: 1.0 / 3.0,
            energy: f64::MIN_POSITIVE,
            flops: 6.02e23,
            words: -0.0,
            msgs: 7.0,
            mem_used: 1e9 + 0.5,
            retries: 3,
            checkpoint_words: 99,
            resilience_words: 1,
            resilience_msgs: 2,
            output_digest: 0xfeed_f00d_dead_beef,
        };
        {
            let j = Journal::create(&path, &spec).unwrap();
            j.record("dddd", &exotic);
        }
        let (_j, replayed) = Journal::open_resume(&path, &spec).unwrap();
        let back = replayed.get("dddd").unwrap();
        assert_eq!(back.words.to_bits(), exotic.words.to_bits());
        assert_eq!(back, &exotic);
        let _ = std::fs::remove_file(&path);
    }
}
