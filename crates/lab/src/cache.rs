//! Content-addressed result cache: in-memory memoization with optional
//! one-line-per-record persistence.
//!
//! Keys are [`RunKey`](crate::key::RunKey) digests (32 hex chars);
//! values are [`RunResult`]s. The in-memory layer is a bounded map with
//! FIFO eviction; the optional disk layer stores each record as a file
//! named after its digest so concurrent writers never interleave, and
//! treats unreadable records as misses.
//!
//! Counters (hits / misses / evictions) are for the human-readable run
//! summary only. Under a parallel pool two workers may race on the same
//! duplicated key and both miss, so counter values can vary by ±ε with
//! thread count — result *bytes* never do.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::result::RunResult;

/// Snapshot of cache activity for the run summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that had to execute the run.
    pub misses: u64,
    /// In-memory records dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in percent (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

struct MemCache {
    map: HashMap<String, RunResult>,
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

/// Thread-safe content-addressed cache.
pub struct ResultCache {
    mem: Mutex<MemCache>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding up to `capacity` in-memory records, persisting to
    /// `dir` when given. The directory is created lazily on first store.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemCache {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
            }),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn record_path(dir: &Path, digest: &str) -> PathBuf {
        dir.join(format!("{digest}.rec"))
    }

    /// Look up a digest; counts a hit or a miss.
    pub fn get(&self, digest: &str) -> Option<RunResult> {
        {
            let mem = self.mem.lock().unwrap();
            if let Some(r) = mem.map.get(digest) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(*r);
            }
        }
        if let Some(dir) = &self.dir {
            if let Ok(text) = std::fs::read_to_string(Self::record_path(dir, digest)) {
                if let Some(r) = RunResult::from_line(text.trim_end()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_mem(digest, r);
                    return Some(r);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert_mem(&self, digest: &str, result: RunResult) {
        let mut mem = self.mem.lock().unwrap();
        if mem.map.contains_key(digest) {
            return;
        }
        if mem.map.len() >= mem.capacity {
            if let Some(old) = mem.order.pop_front() {
                mem.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        mem.map.insert(digest.to_string(), result);
        mem.order.push_back(digest.to_string());
    }

    /// Store a result under its digest (memory + disk when configured).
    /// Disk write failures are reported but non-fatal: the run already
    /// succeeded, so the caller's results are intact either way.
    pub fn put(&self, digest: &str, result: RunResult) -> Result<(), String> {
        self.insert_mem(digest, result);
        if let Some(dir) = &self.dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
            let path = Self::record_path(dir, digest);
            // Write-then-rename so a concurrent reader never sees a
            // truncated record; names include the digest so two writers
            // of the same key write identical bytes anyway.
            let tmp = dir.join(format!("{digest}.tmp{}", std::process::id()));
            std::fs::write(&tmp, format!("{}\n", result.to_line()))
                .map_err(|e| format!("write {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t: f64) -> RunResult {
        RunResult::model(true, t, 2.0 * t, 100.0)
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = ResultCache::new(16, None);
        assert!(cache.get("aa").is_none());
        cache.put("aa", r(1.0)).unwrap();
        assert_eq!(cache.get("aa"), Some(r(1.0)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_fifo_at_capacity() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        cache.put("c", r(3.0)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("a").is_none()); // oldest evicted
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn duplicate_put_does_not_grow() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("a").is_some());
    }

    #[test]
    fn persists_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join(format!("psse-lab-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::new(16, Some(dir.clone()));
            cache.put("deadbeef", r(4.0)).unwrap();
        }
        // Fresh cache instance: memory empty, record comes from disk.
        let cache = ResultCache::new(16, Some(dir.clone()));
        assert_eq!(cache.get("deadbeef"), Some(r(4.0)));
        assert_eq!(cache.stats().hits, 1);
        // Corrupt record reads as a miss, not an error.
        std::fs::write(dir.join("ffff.rec"), "garbage\n").unwrap();
        assert!(cache.get("ffff").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
