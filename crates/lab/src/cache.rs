//! Content-addressed result cache: in-memory memoization with optional
//! one-line-per-record persistence.
//!
//! Keys are [`RunKey`](crate::key::RunKey) digests (32 hex chars);
//! values are [`RunResult`]s. The in-memory layer is a bounded map with
//! FIFO eviction; the optional disk layer stores each record as a file
//! named after its digest so concurrent writers never interleave, and
//! treats unreadable records as misses.
//!
//! Counters (hits / misses / evictions) are for the human-readable run
//! summary only. Under a parallel pool two workers may race on the same
//! duplicated key and both miss, so counter values can vary by ±ε with
//! thread count — result *bytes* never do.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::result::RunResult;

/// Snapshot of cache activity for the run summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that had to execute the run.
    pub misses: u64,
    /// In-memory records dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in percent (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

struct MemCache {
    map: HashMap<String, RunResult>,
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

/// Thread-safe content-addressed cache.
pub struct ResultCache {
    mem: Mutex<MemCache>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding up to `capacity` in-memory records, persisting to
    /// `dir` when given. The directory is created lazily on first store.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemCache {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
            }),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn record_path(dir: &Path, digest: &str) -> PathBuf {
        dir.join(format!("{digest}.rec"))
    }

    /// Look up a digest; counts a hit or a miss.
    pub fn get(&self, digest: &str) -> Option<RunResult> {
        {
            let mem = self.mem.lock().unwrap();
            if let Some(r) = mem.map.get(digest) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(*r);
            }
        }
        if let Some(dir) = &self.dir {
            if let Ok(text) = std::fs::read_to_string(Self::record_path(dir, digest)) {
                if let Some(r) = RunResult::from_line(text.trim_end()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.insert_mem(digest, r);
                    return Some(r);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert_mem(&self, digest: &str, result: RunResult) {
        let mut mem = self.mem.lock().unwrap();
        if mem.map.contains_key(digest) {
            return;
        }
        if mem.map.len() >= mem.capacity {
            if let Some(old) = mem.order.pop_front() {
                mem.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        mem.map.insert(digest.to_string(), result);
        mem.order.push_back(digest.to_string());
    }

    /// Store a result under its digest (memory + disk when configured).
    /// Disk write failures are reported but non-fatal: the run already
    /// succeeded, so the caller's results are intact either way.
    pub fn put(&self, digest: &str, result: RunResult) -> Result<(), String> {
        self.insert_mem(digest, result);
        if let Some(dir) = &self.dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
            let path = Self::record_path(dir, digest);
            // Write-then-rename so a concurrent reader never sees a
            // truncated record; names include the digest so two writers
            // of the same key write identical bytes anyway.
            let tmp = dir.join(format!("{digest}.tmp{}", std::process::id()));
            std::fs::write(&tmp, format!("{}\n", result.to_line()))
                .map_err(|e| format!("write {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Bounds for [`gc_dir`]. `None` fields don't constrain; with both
/// `None` the sweep only reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Keep at most this many bytes of `.rec` records (oldest evicted
    /// first until under the bound).
    pub max_bytes: Option<u64>,
    /// Evict records whose modification time is older than this many
    /// seconds.
    pub max_age_secs: Option<u64>,
    /// Report what would be evicted without deleting anything.
    pub dry_run: bool,
}

/// What a [`gc_dir`] sweep did (or, under `dry_run`, would do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Records found.
    pub scanned: u64,
    /// Records evicted (or marked for eviction under `dry_run`).
    pub evicted: u64,
    /// Total record bytes before the sweep.
    pub bytes_before: u64,
    /// Total record bytes after the sweep.
    pub bytes_after: u64,
}

/// Size/age-bounded eviction over a persistent cache directory.
///
/// Scans `dir` for `*.rec` records, evicts everything older than
/// `max_age_secs`, then — if the survivors still exceed `max_bytes` —
/// keeps evicting oldest-first until under the bound. "Oldest" is by
/// modification time with the file name as a deterministic tie-break.
/// Concurrent writers are safe: a record that disappears mid-sweep is
/// skipped, and an evicted record is merely a future cache miss.
pub fn gc_dir(dir: &Path, cfg: &GcConfig) -> Result<GcReport, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // A missing directory holds zero records; nothing to do.
        Err(_) => return Ok(GcReport::default()),
    };
    let mut records: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map(|e| e != "rec").unwrap_or(true) {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            records.push((path, meta.len(), mtime));
        }
    }
    // Oldest first; equal mtimes fall back to name order so the sweep
    // is deterministic.
    records.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));

    let bytes_before: u64 = records.iter().map(|r| r.1).sum();
    let now = std::time::SystemTime::now();
    let mut evict = vec![false; records.len()];
    if let Some(age) = cfg.max_age_secs {
        for (i, (_, _, mtime)) in records.iter().enumerate() {
            let old = now
                .duration_since(*mtime)
                .map(|d| d.as_secs() > age)
                .unwrap_or(false);
            if old {
                evict[i] = true;
            }
        }
    }
    if let Some(max) = cfg.max_bytes {
        let mut kept: u64 = records
            .iter()
            .zip(&evict)
            .filter(|(_, &e)| !e)
            .map(|(r, _)| r.1)
            .sum();
        for (i, (_, len, _)) in records.iter().enumerate() {
            if kept <= max {
                break;
            }
            if !evict[i] {
                evict[i] = true;
                kept -= len;
            }
        }
    }
    let mut report = GcReport {
        scanned: records.len() as u64,
        bytes_before,
        bytes_after: bytes_before,
        ..GcReport::default()
    };
    for ((path, len, _), &doomed) in records.iter().zip(&evict) {
        if !doomed {
            continue;
        }
        if cfg.dry_run || std::fs::remove_file(path).is_ok() {
            report.evicted += 1;
            report.bytes_after -= len;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t: f64) -> RunResult {
        RunResult::model(true, t, 2.0 * t, 100.0)
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = ResultCache::new(16, None);
        assert!(cache.get("aa").is_none());
        cache.put("aa", r(1.0)).unwrap();
        assert_eq!(cache.get("aa"), Some(r(1.0)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_fifo_at_capacity() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        cache.put("c", r(3.0)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("a").is_none()); // oldest evicted
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn duplicate_put_does_not_grow() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("a").is_some());
    }

    /// Write a record and pin its mtime to `age_secs` seconds ago, so
    /// eviction order is under test control rather than timing luck.
    fn write_aged(dir: &Path, name: &str, bytes: usize, age_secs: u64) {
        let path = dir.join(format!("{name}.rec"));
        std::fs::write(&path, vec![b'x'; bytes]).unwrap();
        let mtime = std::time::SystemTime::now() - std::time::Duration::from_secs(age_secs);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(mtime))
            .unwrap();
    }

    #[test]
    fn gc_evicts_oldest_first_under_size_bound() {
        let dir = std::env::temp_dir().join(format!("psse-lab-gc-size-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Lexicographically *latest* name is the *oldest* record, so a
        // name-ordered sweep would get this wrong.
        write_aged(&dir, "zzzz", 100, 300);
        write_aged(&dir, "mmmm", 100, 200);
        write_aged(&dir, "aaaa", 100, 100);
        let report = gc_dir(
            &dir,
            &GcConfig {
                max_bytes: Some(150),
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_before, 300);
        assert_eq!(report.bytes_after, 100);
        assert!(!dir.join("zzzz.rec").exists(), "oldest must go first");
        assert!(!dir.join("mmmm.rec").exists());
        assert!(dir.join("aaaa.rec").exists(), "newest survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_age_bound_and_dry_run() {
        let dir = std::env::temp_dir().join(format!("psse-lab-gc-age-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_aged(&dir, "old", 50, 3600);
        write_aged(&dir, "new", 50, 10);
        // Non-record files are never touched.
        std::fs::write(dir.join("notes.txt"), "keep me").unwrap();

        let dry = gc_dir(
            &dir,
            &GcConfig {
                max_age_secs: Some(600),
                dry_run: true,
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!((dry.scanned, dry.evicted), (2, 1));
        assert!(dir.join("old.rec").exists(), "dry run deletes nothing");

        let real = gc_dir(
            &dir,
            &GcConfig {
                max_age_secs: Some(600),
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(real.evicted, 1);
        assert!(!dir.join("old.rec").exists());
        assert!(dir.join("new.rec").exists());
        assert!(dir.join("notes.txt").exists());
        // A missing directory is an empty sweep, not an error.
        let gone = gc_dir(&dir.join("nope"), &GcConfig::default()).unwrap();
        assert_eq!(gone, GcReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persists_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join(format!("psse-lab-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::new(16, Some(dir.clone()));
            cache.put("deadbeef", r(4.0)).unwrap();
        }
        // Fresh cache instance: memory empty, record comes from disk.
        let cache = ResultCache::new(16, Some(dir.clone()));
        assert_eq!(cache.get("deadbeef"), Some(r(4.0)));
        assert_eq!(cache.stats().hits, 1);
        // Corrupt record reads as a miss, not an error.
        std::fs::write(dir.join("ffff.rec"), "garbage\n").unwrap();
        assert!(cache.get("ffff").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
