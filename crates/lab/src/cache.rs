//! Content-addressed result cache: in-memory memoization with optional
//! one-line-per-record persistence and self-healing integrity checks.
//!
//! Keys are [`RunKey`](crate::key::RunKey) digests (32 hex chars);
//! values are [`RunResult`]s. The in-memory layer is a bounded map with
//! FIFO eviction; the optional disk layer stores each record as a file
//! named after its digest so concurrent writers never interleave.
//!
//! Every disk record carries a trailing splitmix64 checksum computed
//! over `"{digest} {v1-line}"` — binding the record to its *filename*
//! as well as its bytes, so a record copied under the wrong digest, a
//! torn write, or bit rot all fail verification. A record that fails is
//! **quarantined** (moved into a `quarantine/` subdirectory, never
//! deleted), counted in [`CacheStats::corrupt`], and the run is simply
//! recomputed; forensics survive, output bytes never change.
//!
//! Counters (hits / misses / evictions / corrupt) are for the
//! human-readable run summary only. Under a parallel pool two workers
//! may race on the same duplicated key and both miss, so counter values
//! can vary by ±ε with thread count — result *bytes* never do.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::result::{line_checksum, RunResult};

/// Name of the subdirectory corrupt records are moved into (next to the
/// `.rec` files). Never garbage-collected, never deleted by the lab.
pub const QUARANTINE_SUBDIR: &str = "quarantine";

/// Snapshot of cache activity for the run summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that had to execute the run.
    pub misses: u64,
    /// In-memory records dropped to respect the capacity bound.
    pub evictions: u64,
    /// Disk records that failed checksum/parse verification on read.
    pub corrupt: u64,
    /// Corrupt records successfully moved into `quarantine/` (≤
    /// `corrupt`: the move can fail on a read-only directory).
    pub quarantined: u64,
}

impl CacheStats {
    /// Hit rate in percent (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

struct MemCache {
    map: HashMap<String, RunResult>,
    order: std::collections::VecDeque<String>,
    capacity: usize,
}

/// Thread-safe content-addressed cache.
pub struct ResultCache {
    mem: Mutex<MemCache>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
    /// Digests whose disk record was found corrupt (and possibly left
    /// in place because quarantining failed, e.g. read-only dir): never
    /// re-read, so a bad record is paid for exactly once.
    bad: Mutex<std::collections::HashSet<String>>,
    /// Set after the first failed disk write: the cache degrades to
    /// memory-only memoization instead of failing every run.
    disk_dead: AtomicBool,
}

/// Encode a disk record: the `v1` result line plus a trailing checksum
/// over `"{digest} {line}"`, binding content to filename.
fn encode_record(digest: &str, result: &RunResult) -> String {
    let line = result.to_line();
    let sum = line_checksum(&format!("{digest} {line}"));
    format!("{line} {sum:016x}\n")
}

/// Decode and verify a disk record read from `{digest}.rec`. `None` on
/// any malformation: missing/short checksum, checksum mismatch (torn
/// write, bit rot, record under the wrong filename), or an unparseable
/// result line.
fn decode_record(digest: &str, text: &str) -> Option<RunResult> {
    let text = text.trim_end();
    let (line, sum_hex) = text.rsplit_once(' ')?;
    if sum_hex.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if sum != line_checksum(&format!("{digest} {line}")) {
        return None;
    }
    RunResult::from_line(line)
}

/// Move `{digest}.rec` into `dir/quarantine/`, creating the
/// subdirectory on demand. Returns whether the move succeeded (it can
/// fail on a read-only directory; the record is then left in place).
fn quarantine_record(dir: &Path, digest: &str) -> bool {
    let qdir = dir.join(QUARANTINE_SUBDIR);
    std::fs::create_dir_all(&qdir).is_ok()
        && std::fs::rename(
            dir.join(format!("{digest}.rec")),
            qdir.join(format!("{digest}.rec")),
        )
        .is_ok()
}

impl ResultCache {
    /// A cache holding up to `capacity` in-memory records, persisting to
    /// `dir` when given. The directory is created lazily on first store.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemCache {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
            }),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            bad: Mutex::new(std::collections::HashSet::new()),
            disk_dead: AtomicBool::new(false),
        }
    }

    fn record_path(dir: &Path, digest: &str) -> PathBuf {
        dir.join(format!("{digest}.rec"))
    }

    /// Look up a digest; counts a hit or a miss. A disk record that
    /// fails verification is quarantined on first sight (see the module
    /// docs) and the lookup is a miss — so the caller recomputes and
    /// output bytes are unaffected.
    pub fn get(&self, digest: &str) -> Option<RunResult> {
        {
            // A worker panic while holding the lock must not poison the
            // whole sweep's memoization.
            let mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(r) = mem.map.get(digest) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(*r);
            }
        }
        if let Some(dir) = &self.dir {
            let known_bad = self
                .bad
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .contains(digest);
            if !known_bad {
                if let Ok(text) = std::fs::read_to_string(Self::record_path(dir, digest)) {
                    match decode_record(digest, &text) {
                        Some(r) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            self.insert_mem(digest, r);
                            return Some(r);
                        }
                        None => {
                            // Corrupt: quarantine once, remember the
                            // digest so it is never re-read (the move
                            // can fail on a read-only dir).
                            self.corrupt.fetch_add(1, Ordering::Relaxed);
                            if quarantine_record(dir, digest) {
                                self.quarantined.fetch_add(1, Ordering::Relaxed);
                            }
                            self.bad
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(digest.to_string());
                        }
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert_mem(&self, digest: &str, result: RunResult) {
        let mut mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
        if mem.map.contains_key(digest) {
            return;
        }
        if mem.map.len() >= mem.capacity {
            if let Some(old) = mem.order.pop_front() {
                mem.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        mem.map.insert(digest.to_string(), result);
        mem.order.push_back(digest.to_string());
    }

    /// Store a result under its digest (memory + disk when configured).
    ///
    /// Disk write failures are non-fatal: the first one prints a single
    /// warning to stderr and the cache degrades to memory-only
    /// memoization — the sweep's results are intact either way. The
    /// returned error reports that first failure so callers that *want*
    /// to surface it can.
    pub fn put(&self, digest: &str, result: RunResult) -> Result<(), String> {
        self.insert_mem(digest, result);
        if let Some(dir) = &self.dir {
            if self.disk_dead.load(Ordering::Relaxed) {
                return Ok(());
            }
            if let Err(e) = Self::disk_put(dir, digest, &result) {
                if !self.disk_dead.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: cache dir {} is unwritable ({e}); \
                         continuing with memory-only memoization",
                        dir.display()
                    );
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn disk_put(dir: &Path, digest: &str, result: &RunResult) -> Result<(), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
        let path = Self::record_path(dir, digest);
        // Write-then-rename so a concurrent reader never sees a
        // truncated record; names include the digest so two writers
        // of the same key write identical bytes anyway.
        let tmp = dir.join(format!("{digest}.tmp{}", std::process::id()));
        std::fs::write(&tmp, encode_record(digest, result))
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        Ok(())
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Bounds for [`gc_dir`]. `None` fields don't constrain; with both
/// `None` the sweep only reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Keep at most this many bytes of `.rec` records (oldest evicted
    /// first until under the bound).
    pub max_bytes: Option<u64>,
    /// Evict records whose modification time is older than this many
    /// seconds.
    pub max_age_secs: Option<u64>,
    /// Report what would be evicted without deleting anything.
    pub dry_run: bool,
}

/// What a [`gc_dir`] sweep did (or, under `dry_run`, would do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Records found.
    pub scanned: u64,
    /// Records evicted (or marked for eviction under `dry_run`).
    pub evicted: u64,
    /// Total record bytes before the sweep.
    pub bytes_before: u64,
    /// Total record bytes after the sweep.
    pub bytes_after: u64,
    /// Records sitting in `quarantine/` — reported, never evicted.
    pub quarantined: u64,
    /// Total bytes held by quarantined records.
    pub quarantined_bytes: u64,
}

/// Size/age-bounded eviction over a persistent cache directory.
///
/// Scans `dir` for `*.rec` records, evicts everything older than
/// `max_age_secs`, then — if the survivors still exceed `max_bytes` —
/// keeps evicting oldest-first until under the bound. "Oldest" is by
/// modification time with the file name as a deterministic tie-break.
/// Concurrent writers are safe: a record that disappears mid-sweep is
/// skipped, and an evicted record is merely a future cache miss.
///
/// The `quarantine/` subdirectory is never swept — corrupt records are
/// evidence, not garbage — but its contents are counted in the report
/// so an operator sees them pile up.
pub fn gc_dir(dir: &Path, cfg: &GcConfig) -> Result<GcReport, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // A missing directory holds zero records; nothing to do.
        Err(_) => return Ok(GcReport::default()),
    };
    let mut records: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map(|e| e != "rec").unwrap_or(true) {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            records.push((path, meta.len(), mtime));
        }
    }
    // Oldest first; equal mtimes fall back to name order so the sweep
    // is deterministic.
    records.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));

    let bytes_before: u64 = records.iter().map(|r| r.1).sum();
    let now = std::time::SystemTime::now();
    let mut evict = vec![false; records.len()];
    if let Some(age) = cfg.max_age_secs {
        for (i, (_, _, mtime)) in records.iter().enumerate() {
            let old = now
                .duration_since(*mtime)
                .map(|d| d.as_secs() > age)
                .unwrap_or(false);
            if old {
                evict[i] = true;
            }
        }
    }
    if let Some(max) = cfg.max_bytes {
        let mut kept: u64 = records
            .iter()
            .zip(&evict)
            .filter(|(_, &e)| !e)
            .map(|(r, _)| r.1)
            .sum();
        for (i, (_, len, _)) in records.iter().enumerate() {
            if kept <= max {
                break;
            }
            if !evict[i] {
                evict[i] = true;
                kept -= len;
            }
        }
    }
    let mut report = GcReport {
        scanned: records.len() as u64,
        bytes_before,
        bytes_after: bytes_before,
        ..GcReport::default()
    };
    for ((path, len, _), &doomed) in records.iter().zip(&evict) {
        if !doomed {
            continue;
        }
        if cfg.dry_run || std::fs::remove_file(path).is_ok() {
            report.evicted += 1;
            report.bytes_after -= len;
        }
    }
    // Count (never touch) the quarantine.
    if let Ok(qentries) = std::fs::read_dir(dir.join(QUARANTINE_SUBDIR)) {
        for entry in qentries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    report.quarantined += 1;
                    report.quarantined_bytes += meta.len();
                }
            }
        }
    }
    Ok(report)
}

/// What an offline [`fsck_dir`] verification pass found (and, unless
/// `dry_run`, repaired by quarantining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// `.rec` records examined.
    pub scanned: u64,
    /// Records whose checksum and result line verified.
    pub ok: u64,
    /// Records that failed verification.
    pub corrupt: u64,
    /// Corrupt records moved into `quarantine/` this pass (0 under
    /// `dry_run`; can trail `corrupt` if a move fails).
    pub quarantined: u64,
    /// Records already sitting in `quarantine/` before this pass.
    pub previously_quarantined: u64,
}

/// Offline cache verification: read every `*.rec` record in `dir`,
/// verify its trailing checksum against its filename digest and parse
/// the result line, and quarantine (never delete) everything that
/// fails. With `dry_run` the pass only reports. A missing directory is
/// an empty, successful pass.
///
/// The scan order is sorted by file name so reports are deterministic.
pub fn fsck_dir(dir: &Path, dry_run: bool) -> Result<FsckReport, String> {
    let mut report = FsckReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(report),
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "rec").unwrap_or(false))
        .collect();
    paths.sort();
    for path in paths {
        let digest = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        report.scanned += 1;
        let good = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| decode_record(&digest, &text))
            .is_some();
        if good {
            report.ok += 1;
        } else {
            report.corrupt += 1;
            if !dry_run && quarantine_record(dir, &digest) {
                report.quarantined += 1;
            }
        }
    }
    if let Ok(qentries) = std::fs::read_dir(dir.join(QUARANTINE_SUBDIR)) {
        report.previously_quarantined = qentries
            .flatten()
            .filter(|e| e.metadata().map(|m| m.is_file()).unwrap_or(false))
            .count() as u64
            - report.quarantined;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t: f64) -> RunResult {
        RunResult::model(true, t, 2.0 * t, 100.0)
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = ResultCache::new(16, None);
        assert!(cache.get("aa").is_none());
        cache.put("aa", r(1.0)).unwrap();
        assert_eq!(cache.get("aa"), Some(r(1.0)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_fifo_at_capacity() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        cache.put("c", r(3.0)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("a").is_none()); // oldest evicted
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn duplicate_put_does_not_grow() {
        let cache = ResultCache::new(2, None);
        cache.put("a", r(1.0)).unwrap();
        cache.put("a", r(1.0)).unwrap();
        cache.put("b", r(2.0)).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("a").is_some());
    }

    /// Write a record and pin its mtime to `age_secs` seconds ago, so
    /// eviction order is under test control rather than timing luck.
    fn write_aged(dir: &Path, name: &str, bytes: usize, age_secs: u64) {
        let path = dir.join(format!("{name}.rec"));
        std::fs::write(&path, vec![b'x'; bytes]).unwrap();
        let mtime = std::time::SystemTime::now() - std::time::Duration::from_secs(age_secs);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(mtime))
            .unwrap();
    }

    #[test]
    fn gc_evicts_oldest_first_under_size_bound() {
        let dir = std::env::temp_dir().join(format!("psse-lab-gc-size-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Lexicographically *latest* name is the *oldest* record, so a
        // name-ordered sweep would get this wrong.
        write_aged(&dir, "zzzz", 100, 300);
        write_aged(&dir, "mmmm", 100, 200);
        write_aged(&dir, "aaaa", 100, 100);
        let report = gc_dir(
            &dir,
            &GcConfig {
                max_bytes: Some(150),
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_before, 300);
        assert_eq!(report.bytes_after, 100);
        assert!(!dir.join("zzzz.rec").exists(), "oldest must go first");
        assert!(!dir.join("mmmm.rec").exists());
        assert!(dir.join("aaaa.rec").exists(), "newest survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_age_bound_and_dry_run() {
        let dir = std::env::temp_dir().join(format!("psse-lab-gc-age-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_aged(&dir, "old", 50, 3600);
        write_aged(&dir, "new", 50, 10);
        // Non-record files are never touched.
        std::fs::write(dir.join("notes.txt"), "keep me").unwrap();

        let dry = gc_dir(
            &dir,
            &GcConfig {
                max_age_secs: Some(600),
                dry_run: true,
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!((dry.scanned, dry.evicted), (2, 1));
        assert!(dir.join("old.rec").exists(), "dry run deletes nothing");

        let real = gc_dir(
            &dir,
            &GcConfig {
                max_age_secs: Some(600),
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(real.evicted, 1);
        assert!(!dir.join("old.rec").exists());
        assert!(dir.join("new.rec").exists());
        assert!(dir.join("notes.txt").exists());
        // A missing directory is an empty sweep, not an error.
        let gone = gc_dir(&dir.join("nope"), &GcConfig::default()).unwrap();
        assert_eq!(gone, GcReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persists_and_reloads_from_disk() {
        let dir = std::env::temp_dir().join(format!("psse-lab-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::new(16, Some(dir.clone()));
            cache.put("deadbeef", r(4.0)).unwrap();
        }
        // Fresh cache instance: memory empty, record comes from disk.
        let cache = ResultCache::new(16, Some(dir.clone()));
        assert_eq!(cache.get("deadbeef"), Some(r(4.0)));
        assert_eq!(cache.stats().hits, 1);
        // Corrupt record reads as a miss and is quarantined, not deleted.
        std::fs::write(dir.join("ffff.rec"), "garbage\n").unwrap();
        assert!(cache.get("ffff").is_none());
        let s = cache.stats();
        assert_eq!((s.corrupt, s.quarantined), (1, 1));
        assert!(!dir.join("ffff.rec").exists(), "moved out of the cache");
        assert!(
            dir.join(QUARANTINE_SUBDIR).join("ffff.rec").exists(),
            "preserved for forensics"
        );
        // Second lookup: still a miss, but the record is not re-read
        // and the corrupt counter does not climb.
        assert!(cache.get("ffff").is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_bound_to_wrong_filename_is_quarantined() {
        // A bit-perfect record copied under a different digest must not
        // verify: the checksum covers the filename digest too.
        let dir = std::env::temp_dir().join(format!("psse-lab-cache-xname-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(16, Some(dir.clone()));
        cache.put("aaaa", r(1.0)).unwrap();
        std::fs::copy(dir.join("aaaa.rec"), dir.join("bbbb.rec")).unwrap();
        let fresh = ResultCache::new(16, Some(dir.clone()));
        assert!(fresh.get("bbbb").is_none());
        assert_eq!(fresh.stats().corrupt, 1);
        assert!(dir.join(QUARANTINE_SUBDIR).join("bbbb.rec").exists());
        // The genuine record still verifies.
        assert_eq!(fresh.get("aaaa"), Some(r(1.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_reports_quarantine_without_touching_it() {
        let dir = std::env::temp_dir().join(format!("psse-lab-gc-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join(QUARANTINE_SUBDIR)).unwrap();
        write_aged(&dir, "live", 40, 7200);
        std::fs::write(dir.join(QUARANTINE_SUBDIR).join("bad.rec"), "garbage\n").unwrap();
        // Evict everything evictable: the quarantined record must
        // survive and be reported separately.
        let report = gc_dir(
            &dir,
            &GcConfig {
                max_bytes: Some(0),
                ..GcConfig::default()
            },
        )
        .unwrap();
        assert_eq!((report.scanned, report.evicted), (1, 1));
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.quarantined_bytes, 8);
        assert!(!dir.join("live.rec").exists());
        assert!(dir.join(QUARANTINE_SUBDIR).join("bad.rec").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_verifies_quarantines_and_reports() {
        let dir = std::env::temp_dir().join(format!("psse-lab-fsck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(16, Some(dir.clone()));
        cache.put("good", r(1.0)).unwrap();
        cache.put("torn", r(2.0)).unwrap();
        // Truncate one record mid-line, plant one unparseable one.
        let torn = std::fs::read_to_string(dir.join("torn.rec")).unwrap();
        std::fs::write(dir.join("torn.rec"), &torn[..torn.len() / 2]).unwrap();
        std::fs::write(dir.join("junk.rec"), "not a record\n").unwrap();

        let dry = fsck_dir(&dir, true).unwrap();
        assert_eq!((dry.scanned, dry.ok, dry.corrupt), (3, 1, 2));
        assert_eq!(dry.quarantined, 0, "dry run moves nothing");
        assert!(dir.join("junk.rec").exists());

        let real = fsck_dir(&dir, false).unwrap();
        assert_eq!((real.scanned, real.ok, real.corrupt), (3, 1, 2));
        assert_eq!(real.quarantined, 2);
        assert!(dir.join("good.rec").exists());
        assert!(dir.join(QUARANTINE_SUBDIR).join("torn.rec").exists());
        assert!(dir.join(QUARANTINE_SUBDIR).join("junk.rec").exists());

        // A second pass sees a clean cache and the old quarantine.
        let again = fsck_dir(&dir, false).unwrap();
        assert_eq!((again.scanned, again.ok, again.corrupt), (1, 1, 0));
        assert_eq!(again.previously_quarantined, 2);
        // Missing directory: empty pass.
        assert_eq!(
            fsck_dir(&dir.join("nope"), false).unwrap(),
            FsckReport::default()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_degrades_to_memory_only() {
        // Point the disk layer at a path that cannot be a directory (a
        // regular file), so every write fails: the cache must keep
        // memoizing in memory and keep returning Ok after warning once.
        let base = std::env::temp_dir().join(format!("psse-lab-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let not_a_dir = base.join("file");
        std::fs::write(&not_a_dir, "occupied").unwrap();
        let cache = ResultCache::new(16, Some(not_a_dir.clone()));
        let first = cache.put("aa", r(1.0));
        assert!(first.is_err(), "first failure is reported");
        assert!(cache.put("bb", r(2.0)).is_ok(), "then degraded quietly");
        assert_eq!(cache.get("aa"), Some(r(1.0)), "memory layer still works");
        assert_eq!(cache.get("bb"), Some(r(2.0)));
        let _ = std::fs::remove_dir_all(&base);
    }
}
