//! Execute one [`RunKey`]: model evaluation or simulator run.
//!
//! Model runs reproduce the *exact* float paths used by the existing
//! figure benches — [`NBodyOptimizer::evaluate`] for n-body and the
//! `t_matmul_25d`/`e_matmul_25d` closed forms for 2.5D matmul — so a
//! sweep routed through the lab regenerates checked-in CSVs
//! byte-identically. Everything else goes through the generic
//! [`Algorithm`] cost model (Eqs. 1–2). Simulator runs execute the real
//! distributed algorithm on the virtual machine and price the recorded
//! [`Profile`](psse_sim::prelude::Profile).

use psse_algos::prelude::{
    cannon_matmul, halo_stencil, matmul_25d, matmul_25d_abft, measure, measure_into,
    nbody_replicated, random_grid, random_keys, sample_sort, serial_stencil, sim_config_from,
    summa_matmul, summa_matmul_abft, Decomp,
};
use psse_core::costs::{
    Algorithm, Cholesky25d, ClassicalMatMul, DirectNBody, FftAllToAll, FftTree, HaloStencilModel,
    Lu25d, MatVec, SampleSortModel, StrassenMatMul,
};
use psse_core::optimize::matmul::MatMulOptimizer;
use psse_core::optimize::nbody::NBodyOptimizer;
use psse_hbl::prelude::{derive, Kernel};
use psse_kernels::matrix::Matrix;
use psse_kernels::nbody::random_particles;

use crate::key::{RunKey, RunKind};
use crate::result::{digest_f64s, RunResult};

/// Resolve a model-run algorithm id to its cost model. `f` is the
/// n-body flops-per-interaction knob, `halo`/`iters` the stencil shape
/// (each ignored by the other algorithms).
pub fn model_algorithm(
    alg: &str,
    f: f64,
    halo: u64,
    iters: u64,
) -> Result<Box<dyn Algorithm>, String> {
    Ok(match alg {
        "matmul" | "mm25d" => Box::new(ClassicalMatMul),
        "strassen" => Box::new(StrassenMatMul::default()),
        "lu" => Box::new(Lu25d),
        "cholesky" => Box::new(Cholesky25d),
        "nbody" => Box::new(DirectNBody {
            flops_per_interaction: f,
        }),
        "matvec" => Box::new(MatVec),
        "fft" | "fft-tree" => Box::new(FftTree),
        "fft-a2a" => Box::new(FftAllToAll),
        "samplesort" => Box::new(SampleSortModel),
        "stencil" => Box::new(HaloStencilModel { halo, iters }),
        other => {
            return Err(format!(
                "unknown model algorithm `{other}` \
                 (matmul|strassen|lu|cholesky|nbody|matvec|fft|fft-a2a|samplesort|stencil)"
            ));
        }
    })
}

/// Execute one run. Deterministic: equal keys produce equal results,
/// bit-for-bit, which is what makes the content-addressed cache sound.
pub fn execute(key: &RunKey) -> Result<RunResult, String> {
    execute_into(key, None)
}

/// [`execute`], optionally exporting virtual-cost attribution into a
/// metrics registry. For simulator runs the per-rank Eq. 1/2 term
/// breakdown and raw counters land under `sim.*`
/// (`psse_algos::bridge::measure_into`) and an active fault plan
/// describes itself under `faults.*`; model runs have no per-rank
/// profile and export nothing. The returned [`RunResult`] is
/// bit-identical with and without a registry — exports are a pure
/// side-channel, so cached and fresh executions stay interchangeable.
pub fn execute_into(
    key: &RunKey,
    registry: Option<&psse_metrics::Registry>,
) -> Result<RunResult, String> {
    match key.kind {
        RunKind::Model => execute_model(key),
        RunKind::Simulate => execute_simulate(key, registry, None),
    }
}

/// [`execute_into`] guarded by a wall-clock watchdog. When `timeout` is
/// set and the key is a simulator run, a [`psse_sim::CancelFlag`] is
/// threaded into the simulator config and tripped once the budget is
/// exhausted: the hung run unwinds cooperatively (blocked receivers are
/// woken through the poison machinery) and this function returns a
/// deterministic `timeout: ...` error instead of hanging the sweep.
/// Model runs are closed-form evaluations and never watched.
pub fn execute_watched(
    key: &RunKey,
    registry: Option<&psse_metrics::Registry>,
    timeout: Option<std::time::Duration>,
) -> Result<RunResult, String> {
    let Some(limit) = timeout else {
        return execute_into(key, registry);
    };
    match key.kind {
        RunKind::Model => execute_model(key),
        RunKind::Simulate => {
            use std::sync::{Arc, Condvar, Mutex, PoisonError};
            let flag = psse_sim::CancelFlag::new();
            // A zero budget is already exhausted; trip the flag before
            // launch so the outcome does not race thread scheduling.
            if limit.is_zero() {
                flag.cancel();
            }
            // Condvar-armed watchdog: fires after `limit` unless the run
            // finishes first (then it is woken and exits immediately, so
            // a sweep of fast runs never accumulates sleeping threads).
            let done = Arc::new((Mutex::new(false), Condvar::new()));
            let watchdog = std::thread::spawn({
                let flag = flag.clone();
                let done = Arc::clone(&done);
                move || {
                    let (lock, cv) = &*done;
                    let mut finished = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    let deadline = std::time::Instant::now() + limit;
                    while !*finished {
                        let left = deadline.saturating_duration_since(std::time::Instant::now());
                        if left.is_zero() {
                            flag.cancel();
                            return;
                        }
                        let (guard, _) = cv
                            .wait_timeout(finished, left)
                            .unwrap_or_else(PoisonError::into_inner);
                        finished = guard;
                    }
                }
            });
            let r = execute_simulate(key, registry, Some(flag.clone()));
            {
                let (lock, cv) = &*done;
                *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
                cv.notify_all();
            }
            let _ = watchdog.join();
            match r {
                // Any failure after the flag fired is the watchdog's
                // doing; normalize to one deterministic message.
                Err(_) if flag.is_cancelled() => Err(format!(
                    "timeout: run exceeded the {:.3}s wall-clock budget and was cancelled",
                    limit.as_secs_f64()
                )),
                other => other,
            }
        }
    }
}

fn execute_model(key: &RunKey) -> Result<RunResult, String> {
    if let Some(text) = &key.kernel {
        return execute_kernel_model(key, text);
    }
    let alg = model_algorithm(&key.alg, key.f, key.halo, key.iters)?;
    let (lo, hi) = alg.memory_range(key.n, key.p).map_err(|e| e.to_string())?;
    // mem = 0 means "minimal memory at (n, p)"; clamp_mem folds
    // out-of-band requests back into [lo, hi] instead of flagging them.
    let mem = if key.mem == 0.0 { lo } else { key.mem };
    let mem_eff = if key.clamp_mem {
        mem.clamp(lo, hi)
    } else {
        mem
    };
    // Same predicate as the Fig. 4 bench's `feasible()`.
    let feasible = (lo..=hi).contains(&mem_eff);

    let (time, energy) = match key.alg.as_str() {
        // Closed forms, bit-identical to the figure benches.
        "nbody" => {
            let opt = NBodyOptimizer::new(&key.machine, key.f).map_err(|e| e.to_string())?;
            let cfg = opt.evaluate(key.n, key.p, mem_eff);
            (cfg.time, cfg.energy)
        }
        "matmul" | "mm25d" => {
            let opt = MatMulOptimizer::new(&key.machine).map_err(|e| e.to_string())?;
            let cfg = opt.evaluate(key.n, key.p, mem_eff);
            (cfg.time, cfg.energy)
        }
        // Everything else prices the generic (F, W, S) model.
        _ => {
            let costs = alg
                .costs_clamped(key.n, key.p, mem_eff, &key.machine)
                .map_err(|e| e.to_string())?;
            let t = key.machine.time(&costs);
            let e = key.machine.energy(key.p, &costs, mem_eff, t);
            (t, e)
        }
    };
    let mut r = RunResult::model(feasible, time, energy, mem_eff);
    r.flops = alg.total_flops(key.n);
    Ok(r)
}

/// Model a run whose cost model is derived from an HBL kernel file
/// instead of the hand-written table. The family dispatch inside
/// [`psse_hbl::bridge::KernelCost::evaluate_point`] mirrors the `alg`
/// match above, so a kernel whose derived exponents match a table
/// algorithm prices bit-for-bit identically to it.
fn execute_kernel_model(key: &RunKey, text: &str) -> Result<RunResult, String> {
    let kernel = Kernel::parse(text).map_err(|e| e.to_string())?;
    let (cost, _) = derive(&kernel).map_err(|e| e.to_string())?;
    let (lo, hi) = cost.memory_range(key.n, key.p).map_err(|e| e.to_string())?;
    let mem = if key.mem == 0.0 { lo } else { key.mem };
    let mem_eff = if key.clamp_mem {
        mem.clamp(lo, hi)
    } else {
        mem
    };
    let feasible = (lo..=hi).contains(&mem_eff);
    let cfg = cost
        .evaluate_point(&key.machine, key.n, key.p, mem_eff)
        .map_err(|e| e.to_string())?;
    let mut r = RunResult::model(feasible, cfg.time, cfg.energy, mem_eff);
    r.flops = cost.total_flops(key.n);
    Ok(r)
}

fn execute_simulate(
    key: &RunKey,
    registry: Option<&psse_metrics::Registry>,
    cancel: Option<psse_sim::CancelFlag>,
) -> Result<RunResult, String> {
    let n = key.n as usize;
    let p = key.p as usize;
    let c = key.c as usize;
    let mut cfg = sim_config_from(&key.machine);
    cfg.faults = key.faults.clone();
    cfg.backend = key.backend;
    // Watchdog hook: the flag never changes virtual costs (it is only
    // consulted, never priced), so a watched run that completes is
    // bit-identical to an unwatched one.
    cfg.cancel = cancel;

    let (output_digest, verified, profile) = match key.alg.as_str() {
        "mm25d" | "mm25d-abft" | "summa" | "summa-abft" | "cannon" => {
            let a = Matrix::random(n, n, key.seed);
            let b = Matrix::random(n, n, key.seed + 1);
            let ((c_mat, profile), verified) = match key.alg.as_str() {
                "mm25d" => (
                    matmul_25d(&a, &b, p, c, cfg).map_err(|e| e.to_string())?,
                    false,
                ),
                "mm25d-abft" => (
                    matmul_25d_abft(&a, &b, p, c, cfg).map_err(|e| e.to_string())?,
                    true,
                ),
                "summa" => (
                    summa_matmul(&a, &b, p, c.max(1), cfg).map_err(|e| e.to_string())?,
                    false,
                ),
                "summa-abft" => (
                    summa_matmul_abft(&a, &b, p, c.max(1), cfg).map_err(|e| e.to_string())?,
                    true,
                ),
                "cannon" => (
                    cannon_matmul(&a, &b, p, cfg).map_err(|e| e.to_string())?,
                    false,
                ),
                _ => unreachable!(),
            };
            (digest_f64s(c_mat.as_slice()), verified, profile)
        }
        "nbody" => {
            // `p = pr·c`: the key's p is total ranks, c the replication
            // factor, so the ring size is p/c.
            let particles = random_particles(n, key.seed);
            let c = c.max(1);
            let (forces, profile) =
                nbody_replicated(&particles, p / c, c, cfg).map_err(|e| e.to_string())?;
            let flat: Vec<f64> = forces.iter().flatten().copied().collect();
            (digest_f64s(&flat), false, profile)
        }
        "samplesort" => {
            let keys = random_keys(n, key.seed);
            let (sorted, profile) = sample_sort(&keys, p, cfg).map_err(|e| e.to_string())?;
            // Verified in-run: the concatenated buckets must be the
            // permutation `sort` would produce.
            let mut reference = keys;
            reference.sort_by(|a, b| a.total_cmp(b));
            if sorted != reference {
                return Err("samplesort: output does not match the serial sort".into());
            }
            (digest_f64s(&sorted), true, profile)
        }
        "stencil" => {
            // Deterministic decomposition rule: 2-D blocks when p is a
            // perfect square dividing the grid, 1-D row slabs otherwise
            // — a pure function of (n, p), so the cache key needs no
            // extra word.
            let q = (p as f64).sqrt().round() as usize;
            let decomp = if q * q == p && q > 0 && n.is_multiple_of(q) {
                Decomp::TwoD
            } else {
                Decomp::OneD
            };
            let grid = random_grid(n, key.seed);
            let (out, profile) = halo_stencil(
                &grid,
                n,
                key.halo as usize,
                key.iters as usize,
                decomp,
                p,
                cfg,
            )
            .map_err(|e| e.to_string())?;
            // Verified in-run, bit-for-bit: identical (di, dj) update
            // order makes the distributed sweep reproduce the serial
            // one exactly, not approximately.
            let reference = serial_stencil(&grid, n, key.halo as usize, key.iters as usize);
            if out != reference {
                return Err("stencil: output does not match the serial sweep".into());
            }
            (digest_f64s(&out), true, profile)
        }
        other => {
            return Err(format!(
                "unknown simulator algorithm `{other}` \
                 (mm25d|mm25d-abft|summa|summa-abft|cannon|nbody|samplesort|stencil)"
            ));
        }
    };

    let m = match registry {
        Some(reg) => {
            if let Some(plan) = &key.faults {
                plan.export_metrics(reg, "faults")?;
            }
            measure_into(&profile, &key.machine, reg, "sim")?
        }
        None => measure(&profile, &key.machine),
    };
    Ok(RunResult {
        feasible: true,
        verified,
        time: m.time,
        energy: m.energy,
        flops: profile.total_flops() as f64,
        words: profile.total_words_sent() as f64,
        msgs: profile.total_msgs_sent() as f64,
        mem_used: profile.max_mem_peak() as f64,
        retries: profile.total_retries(),
        checkpoint_words: profile.per_rank.iter().map(|r| r.checkpoint_words).sum(),
        resilience_words: profile.resilience_words(),
        resilience_msgs: profile.resilience_msgs(),
        output_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::machines::jaketown;
    use psse_core::params::MachineParams;

    fn contrived() -> MachineParams {
        MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(2e-8)
            .alpha_t(1e-6)
            .gamma_e(1e-9)
            .beta_e(4e-6)
            .alpha_e(1e-4)
            .delta_e(5e-4)
            .epsilon_e(0.0)
            .max_message_words(100.0)
            .mem_words(1e12)
            .build()
            .unwrap()
    }

    #[test]
    fn nbody_model_matches_optimizer_bitwise() {
        let mp = contrived();
        let opt = NBodyOptimizer::new(&mp, 10.0).unwrap();
        let mut key = RunKey::model("nbody", 10_000, 50, mp.clone());
        key.f = 10.0;
        key.mem = 1000.0;
        let r = execute(&key).unwrap();
        let cfg = opt.evaluate(10_000, 50, 1000.0);
        assert_eq!(r.time.to_bits(), cfg.time.to_bits());
        assert_eq!(r.energy.to_bits(), cfg.energy.to_bits());
        assert!(r.feasible);
    }

    #[test]
    fn infeasible_memory_is_flagged_not_rejected() {
        let mp = contrived();
        let mut key = RunKey::model("nbody", 10_000, 50, mp);
        key.f = 10.0;
        key.mem = 1e11; // far above max_useful_memory
        let r = execute(&key).unwrap();
        assert!(!r.feasible);
        // Clamped variant folds back into range and is feasible.
        key.clamp_mem = true;
        let r2 = execute(&key).unwrap();
        assert!(r2.feasible);
        assert!(r2.mem_used < 1e11);
    }

    #[test]
    fn default_memory_is_minimal() {
        let key = RunKey::model("matmul", 4096, 64, jaketown());
        let r = execute(&key).unwrap();
        let lo = ClassicalMatMul.min_memory(4096, 64);
        assert_eq!(r.mem_used, lo);
        assert!(r.feasible);
    }

    #[test]
    fn unknown_algorithms_error() {
        let key = RunKey::model("nope", 64, 4, jaketown());
        assert!(execute(&key).unwrap_err().contains("unknown model"));
        let key = RunKey::simulate("nope", 64, 4, jaketown());
        assert!(execute(&key).unwrap_err().contains("unknown simulator"));
    }

    #[test]
    fn watched_run_with_headroom_is_bit_identical() {
        let mut key = RunKey::simulate("mm25d", 32, 4, jaketown());
        key.c = 1;
        let plain = execute(&key).unwrap();
        let watched =
            execute_watched(&key, None, Some(std::time::Duration::from_secs(600))).unwrap();
        assert_eq!(plain, watched);
        // Model runs are never watched; same equivalence for free.
        let mkey = RunKey::model("nbody", 1000, 10, jaketown());
        assert_eq!(
            execute(&mkey).unwrap(),
            execute_watched(&mkey, None, Some(std::time::Duration::from_millis(1))).unwrap()
        );
    }

    #[test]
    fn exhausted_watchdog_budget_fails_with_timeout() {
        let mut key = RunKey::simulate("mm25d", 32, 4, jaketown());
        key.c = 1;
        // A zero budget fires the watchdog before the first send.
        let err = execute_watched(&key, None, Some(std::time::Duration::ZERO)).unwrap_err();
        assert!(err.starts_with("timeout:"), "{err}");
        assert!(err.contains("cancelled"), "{err}");
    }

    #[test]
    fn simulate_samplesort_verifies_against_serial_sort() {
        let mut key = RunKey::simulate("samplesort", 256, 4, jaketown());
        key.seed = 11;
        let r = execute(&key).unwrap();
        assert!(r.verified, "samplesort runs are checked in-run");
        assert!(r.words > 0.0 && r.msgs > 0.0);
        // Deterministic: equal keys, equal digests.
        assert_eq!(r, execute(&key).unwrap());
        key.seed = 12;
        assert_ne!(r.output_digest, execute(&key).unwrap().output_digest);
    }

    #[test]
    fn simulate_stencil_picks_the_decomposition_from_p() {
        // p = 4 is a perfect square dividing n = 32: 2-D blocks, W per
        // sweep = 4·(2hb + 2h(b+2h)) summed over ranks.
        let mut key = RunKey::simulate("stencil", 32, 4, jaketown());
        key.halo = 1;
        key.iters = 2;
        let r4 = execute(&key).unwrap();
        let b = 32 / 2;
        assert_eq!(r4.words as u64, 4 * 2 * (2 * b + 2 * (b + 2)));
        // p = 2 is not a square: 1-D slabs, W per sweep = p·2hn.
        key.p = 2;
        let r2 = execute(&key).unwrap();
        assert_eq!(r2.words as u64, 2 * 2 * (2 * 32));
        // Same grid, same sweeps: identical output digests across
        // decompositions (the stencil math is decomposition-blind).
        assert_eq!(r4.output_digest, r2.output_digest);
    }

    #[test]
    fn simulate_mm25d_is_deterministic_and_digested() {
        let mut key = RunKey::simulate("mm25d", 32, 4, jaketown());
        key.c = 1;
        let r1 = execute(&key).unwrap();
        let r2 = execute(&key).unwrap();
        assert_eq!(r1, r2);
        assert_ne!(r1.output_digest, 0);
        assert!(r1.time > 0.0 && r1.energy > 0.0);
        // Different input seed, different product.
        key.seed = 7;
        let r3 = execute(&key).unwrap();
        assert_ne!(r1.output_digest, r3.output_digest);
    }
}
