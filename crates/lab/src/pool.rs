//! Fixed-size worker pool with order-preserving reassembly.
//!
//! Workers pull indices from a shared atomic counter — the classic
//! self-scheduling loop — and write each result into its slot of a
//! pre-sized output vector. The output is therefore in *input* order
//! regardless of which worker finished when, which is what makes lab
//! CSVs byte-identical for any `--jobs` value.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve the worker count: an explicit `jobs >= 1` wins; `0` defers to
/// the `PSSE_LAB_JOBS` environment variable, then to the machine's
/// available parallelism, then to 1.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs >= 1 {
        return jobs;
    }
    if let Ok(v) = std::env::var("PSSE_LAB_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using `jobs` worker threads, returning results
/// in input order. `f` receives `(index, &item)`. With `jobs <= 1` the
/// loop runs inline on the caller's thread (no pool overhead, and
/// panics propagate directly — handy under test).
pub fn run_ordered<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker pool filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = run_ordered(jobs, &items, |_, &x| {
                // Stagger completion so out-of-order finishes actually happen.
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                x * x
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let got = run_ordered(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u8> = run_ordered(8, &[] as &[u8], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn resolve_jobs_explicit_wins() {
        assert_eq!(resolve_jobs(3), 3);
        assert!(resolve_jobs(0) >= 1);
    }
}
