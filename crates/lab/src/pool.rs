//! Fixed-size worker pool with order-preserving reassembly.
//!
//! Workers pull indices from a shared atomic counter — the classic
//! self-scheduling loop — and write each result into its slot of a
//! pre-sized output vector. The output is therefore in *input* order
//! regardless of which worker finished when, which is what makes lab
//! CSVs byte-identical for any `--jobs` value.
//!
//! Panic containment: a panic inside `f` is caught per item, the worker
//! moves on, and every remaining item still runs. The first panic (by
//! *input* index, so deterministically — not by wall-clock) is re-raised
//! after reassembly. Callers that want a panic to become per-item data
//! instead (the lab does) wrap their own `catch_unwind` inside `f`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use psse_metrics::saturating_nanos;

/// Resolve the worker count: an explicit `jobs >= 1` wins; `0` defers to
/// the `PSSE_LAB_JOBS` environment variable, then to the machine's
/// available parallelism, then to 1.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs >= 1 {
        return jobs;
    }
    if let Ok(v) = std::env::var("PSSE_LAB_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using `jobs` worker threads, returning results
/// in input order. `f` receives `(index, &item)`. With `jobs <= 1` the
/// loop runs inline on the caller's thread (no pool overhead).
///
/// A panicking item does not poison the pool: every other item still
/// runs, and the lowest-index panic is re-raised once reassembly is
/// complete (see the module docs).
pub fn run_ordered<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_ordered_timed(jobs, items, f).0
}

/// One worker's accounting over a [`run_ordered_timed`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSpan {
    /// Nanoseconds spent inside `f` (busy; the rest of the pool's wall
    /// clock was idle or contended).
    pub busy_ns: u64,
    /// Items this worker completed.
    pub items: u64,
}

/// Host-side timing of one pool invocation: per-item wall-clock (input
/// order) and per-worker busy spans. The *structure* — lengths, item
/// order, worker count — is deterministic; only the nanosecond values
/// vary between runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolProfile {
    /// Worker threads actually used (after clamping to the item count).
    pub jobs: usize,
    /// Wall-clock of the whole map call, nanoseconds.
    pub wall_ns: u64,
    /// Wall-clock per item in input order, nanoseconds.
    pub item_ns: Vec<u64>,
    /// Per-worker busy time and item counts, indexed by worker id.
    pub workers: Vec<WorkerSpan>,
}

impl PoolProfile {
    /// Fraction of `jobs · wall_ns` spent busy, in `[0, 1]`. This is
    /// the number the self-profile report prints per worker: low
    /// utilization on a sweep means the tail of slow keys serialized.
    pub fn utilization(&self, worker: usize) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.workers
            .get(worker)
            .map_or(0.0, |w| w.busy_ns as f64 / self.wall_ns as f64)
    }
}

/// [`run_ordered`] plus host-side timing: returns the results in input
/// order and a [`PoolProfile`] of where the wall-clock went.
pub fn run_ordered_timed<I, T, F>(jobs: usize, items: &[I], f: F) -> (Vec<T>, PoolProfile)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    let started = Instant::now();
    if jobs <= 1 {
        // Inline path: same containment contract as the pool — finish
        // every item, then re-raise the first panic.
        let mut item_ns = Vec::with_capacity(items.len());
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut out: Vec<T> = Vec::with_capacity(items.len());
        for (i, it) in items.iter().enumerate() {
            let t0 = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| f(i, it))) {
                Ok(r) => {
                    item_ns.push(saturating_nanos(t0.elapsed().as_secs_f64()));
                    out.push(r);
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        let busy: u64 = item_ns.iter().fold(0u64, |a, &b| a.saturating_add(b));
        let profile = PoolProfile {
            jobs: 1,
            wall_ns: saturating_nanos(started.elapsed().as_secs_f64()),
            item_ns,
            workers: vec![WorkerSpan {
                busy_ns: busy,
                items: items.len() as u64,
            }],
        };
        return (out, profile);
    }
    let next = AtomicUsize::new(0);
    // A slot holds the item's result or the panic payload `f` raised
    // for it — so one bad item cannot leave any slot unfilled.
    type SlotValue<T> = Result<(T, u64), Box<dyn std::any::Any + Send>>;
    let slots: Vec<Mutex<Option<SlotValue<T>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    let spans: Vec<Mutex<WorkerSpan>> = (0..jobs)
        .map(|_| Mutex::new(WorkerSpan::default()))
        .collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let next = &next;
            let slots = &slots;
            let spans = &spans;
            let f = &f;
            scope.spawn(move || {
                let mut span = WorkerSpan::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let t0 = Instant::now();
                    let out = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                    let ns = saturating_nanos(t0.elapsed().as_secs_f64());
                    span.busy_ns = span.busy_ns.saturating_add(ns);
                    span.items += 1;
                    // A peer's panic while holding this lock cannot
                    // happen (each slot has exactly one writer), but
                    // poison tolerance costs nothing and keeps the
                    // reassembly below total.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(out.map(|r| (r, ns)));
                }
                *spans[w].lock().unwrap_or_else(PoisonError::into_inner) = span;
            });
        }
    });
    let mut item_ns = Vec::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in slots {
        let filled = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("worker pool filled every slot");
        match filled {
            Ok((r, ns)) => {
                item_ns.push(ns);
                out.push(r);
            }
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    let profile = PoolProfile {
        jobs,
        wall_ns: saturating_nanos(started.elapsed().as_secs_f64()),
        item_ns,
        workers: spans
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect(),
    };
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = run_ordered(jobs, &items, |_, &x| {
                // Stagger completion so out-of-order finishes actually happen.
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                x * x
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let got = run_ordered(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u8> = run_ordered(8, &[] as &[u8], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn resolve_jobs_explicit_wins() {
        assert_eq!(resolve_jobs(3), 3);
        assert!(resolve_jobs(0) >= 1);
    }

    #[test]
    fn panicking_item_does_not_stop_the_others() {
        // One poisoned item out of 32: every other item must still run,
        // and the panic must re-surface deterministically (it is the
        // only one here) after the pool drains.
        use std::sync::atomic::AtomicU64;
        for jobs in [1, 4] {
            let items: Vec<u64> = (0..32).collect();
            let ran = AtomicU64::new(0);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_ordered(jobs, &items, |_, &x| {
                    if x == 5 {
                        panic!("item 5 is cursed");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                })
            }));
            let payload = caught.expect_err("the panic must re-surface");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(msg.contains("cursed"), "{msg}");
            assert_eq!(ran.load(Ordering::Relaxed), 31, "jobs={jobs}");
        }
    }

    #[test]
    fn first_panic_by_input_index_wins() {
        // Several items panic; the re-raised payload must be the
        // lowest-index one regardless of which worker hit which first.
        let items: Vec<u64> = (0..64).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_ordered(8, &items, |i, _| {
                if i % 10 == 3 {
                    panic!("panic at index {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "panic at index 3");
    }

    #[test]
    fn timed_variant_accounts_every_item_and_worker() {
        let items: Vec<u64> = (0..40).collect();
        for jobs in [1, 4] {
            let (got, prof) = run_ordered_timed(jobs, &items, |_, &x| {
                // A little spin so busy times are nonzero.
                let mut acc = x;
                for i in 0..10_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x * 2
            });
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(prof.jobs, jobs);
            assert_eq!(prof.item_ns.len(), items.len());
            assert_eq!(prof.workers.len(), jobs);
            // Every item was claimed by exactly one worker.
            let claimed: u64 = prof.workers.iter().map(|w| w.items).sum();
            assert_eq!(claimed, items.len() as u64);
            // Busy time is at most jobs × wall time (and > 0 here).
            let busy: u64 = prof.workers.iter().map(|w| w.busy_ns).sum();
            assert!(busy > 0);
            for w in 0..jobs {
                let u = prof.utilization(w);
                assert!((0.0..=1.5).contains(&u), "utilization {u}");
            }
        }
    }
}
