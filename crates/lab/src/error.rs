//! Error type for the lab engine.

use std::fmt;

/// Errors raised while parsing specs, executing runs or touching the
/// persistent cache.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LabError {
    /// A sweep-spec text could not be parsed; carries `(line, message)`.
    Spec {
        /// 1-based line number of the offending spec line (0 when the
        /// error is not attributable to a single line).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A run failed to execute (bad grid, invalid configuration, failed
    /// numerical verification, ...).
    Run {
        /// Index of the run in spec order.
        index: usize,
        /// What went wrong.
        message: String,
    },
    /// The persistent cache directory could not be read or written.
    Cache(String),
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Spec { line: 0, message } => write!(f, "spec error: {message}"),
            LabError::Spec { line, message } => write!(f, "spec error (line {line}): {message}"),
            LabError::Run { index, message } => write!(f, "run #{index} failed: {message}"),
            LabError::Cache(m) => write!(f, "cache error: {m}"),
        }
    }
}

impl std::error::Error for LabError {}

impl LabError {
    /// Convenience constructor for spec errors with a line number.
    pub fn spec(line: usize, message: impl Into<String>) -> Self {
        LabError::Spec {
            line,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_and_index() {
        let e = LabError::spec(3, "bad key");
        assert!(e.to_string().contains("line 3"));
        let e = LabError::spec(0, "no kind");
        assert!(!e.to_string().contains("line"));
        let e = LabError::Run {
            index: 7,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("#7"));
        assert!(LabError::Cache("io".into()).to_string().contains("cache"));
    }
}
