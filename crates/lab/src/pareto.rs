//! Analysis layer: (time, energy) Pareto frontiers and detection of the
//! perfect-strong-scaling range from swept runs.
//!
//! The frontier is the set of runs not dominated in the `(T, E)` plane —
//! run `a` dominates `b` when `a` is no worse in both coordinates and
//! strictly better in at least one. Exact duplicates of a frontier point
//! do not dominate each other and are all kept, so the result is
//! invariant under permutation of the input (as a multiset of points).
//!
//! The perfect-strong-scaling detector operationalizes the paper's
//! headline claim: at fixed `n` and fixed memory per processor, there is
//! a `p`-range in which `T ∝ 1/p` while `E` stays flat. We scan a swept
//! `p`-ladder for the longest contiguous chain where `p·T` and `E` are
//! constant within a relative tolerance; callers cross-check the result
//! against the closed-form [`ScalingRange`](psse_core::bounds::ScalingRange).

/// Indices of Pareto-optimal points (minimizing both coordinates),
/// ascending. Non-finite points never make the frontier.
///
/// `O(n log n)`: sort by `(t, e)`, then sweep keeping the running
/// minimum energy. Verified against [`pareto_indices_naive`] by
/// proptest.
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .expect("finite points compare")
            .then(a.cmp(&b))
    });
    let mut out = Vec::new();
    let mut best_e = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        let t = points[order[i]].0;
        // Entries sharing this t, sorted by e: only the lowest-e group
        // can survive, and only if it beats every earlier (smaller) t.
        let e = points[order[i]].1;
        let mut j = i;
        while j < order.len() && points[order[j]].0 == t {
            j += 1;
        }
        if e < best_e {
            for &k in &order[i..j] {
                if points[k].1 == e {
                    out.push(k);
                }
            }
            best_e = e;
        }
        i = j;
    }
    out.sort_unstable();
    out
}

/// Reference `O(n²)` dominance check, used by proptests to validate
/// [`pareto_indices`].
pub fn pareto_indices_naive(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (t, e) = points[i];
            if !(t.is_finite() && e.is_finite()) {
                return false;
            }
            !points.iter().any(|&(t2, e2)| {
                t2.is_finite() && e2.is_finite() && t2 <= t && e2 <= e && (t2 < t || e2 < e)
            })
        })
        .collect()
}

/// A detected perfect-strong-scaling range `[p_min, p_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedRange {
    /// Smallest processor count in the detected chain.
    pub p_min: u64,
    /// Largest processor count in the detected chain.
    pub p_max: u64,
}

/// Detect the longest contiguous `p`-chain where `p·T` is constant
/// (`T ∝ 1/p`) and `E` is flat, both within relative tolerance
/// `rel_tol`. Input: `(p, time, energy)` samples at fixed `(n, M)`,
/// in ascending `p` order (infeasible points must already be filtered
/// out). `None` when fewer than two samples chain up.
pub fn detect_scaling_range(samples: &[(u64, f64, f64)], rel_tol: f64) -> Option<DetectedRange> {
    if samples.len() < 2 {
        return None;
    }
    let close = |a: f64, b: f64| (a / b - 1.0).abs() <= rel_tol;
    let mut best: Option<(usize, usize)> = None; // [start, end] inclusive
    let mut start = 0;
    for i in 1..=samples.len() {
        let chained = i < samples.len() && {
            let (p0, t0, e0) = samples[i - 1];
            let (p1, t1, e1) = samples[i];
            close(p1 as f64 * t1, p0 as f64 * t0) && close(e1, e0)
        };
        if !chained {
            if i - 1 > start && best.is_none_or(|(s, e)| i - 1 - start > e - s) {
                best = Some((start, i - 1));
            }
            start = i;
        }
    }
    best.map(|(s, e)| DetectedRange {
        p_min: samples[s].0,
        p_max: samples[e].0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_basics() {
        //  (1, 5) and (3, 2) are optimal; (3, 5) dominated by both;
        //  (2, 7) dominated by (1, 5).
        let pts = [(1.0, 5.0), (3.0, 2.0), (3.0, 5.0), (2.0, 7.0)];
        assert_eq!(pareto_indices(&pts), vec![0, 1]);
        assert_eq!(pareto_indices_naive(&pts), vec![0, 1]);
    }

    #[test]
    fn exact_duplicates_all_survive() {
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 2]);
        assert_eq!(pareto_indices_naive(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn equal_energy_larger_time_is_dominated() {
        let pts = [(1.0, 1.0), (2.0, 1.0)];
        assert_eq!(pareto_indices(&pts), vec![0]);
        assert_eq!(pareto_indices_naive(&pts), vec![0]);
    }

    #[test]
    fn non_finite_points_never_make_the_frontier() {
        let pts = [(f64::NAN, 0.0), (1.0, f64::INFINITY), (2.0, 2.0)];
        assert_eq!(pareto_indices(&pts), vec![2]);
        assert_eq!(pareto_indices_naive(&pts), vec![2]);
    }

    #[test]
    fn empty_and_single() {
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn detects_ideal_scaling_chain() {
        // T = 100/p, E = 7 for p in 4..=32; then the latency floor kicks
        // in and T stops improving.
        let mut samples: Vec<(u64, f64, f64)> = (2..=5)
            .map(|k| {
                let p = 1u64 << k;
                (p, 100.0 / p as f64, 7.0)
            })
            .collect();
        samples.push((64, 100.0 / 32.0, 7.0)); // p doubled, T flat: breaks
        let r = detect_scaling_range(&samples, 1e-9).unwrap();
        assert_eq!(
            r,
            DetectedRange {
                p_min: 4,
                p_max: 32
            }
        );
    }

    #[test]
    fn no_chain_means_none() {
        assert!(detect_scaling_range(&[], 1e-9).is_none());
        assert!(detect_scaling_range(&[(4, 1.0, 1.0)], 1e-9).is_none());
        // Energy rises every step: nothing chains.
        let samples = [(2u64, 8.0, 1.0), (4, 4.0, 2.0), (8, 2.0, 4.0)];
        assert!(detect_scaling_range(&samples, 1e-3).is_none());
    }

    #[test]
    fn longest_chain_wins() {
        let samples = [
            (2u64, 8.0, 1.0),
            (4, 4.0, 1.0),  // chains with p=2
            (8, 3.0, 1.0),  // breaks (T not halved)
            (16, 1.5, 1.0), // chains
            (32, 0.75, 1.0),
            (64, 0.375, 1.0),
        ];
        let r = detect_scaling_range(&samples, 1e-9).unwrap();
        assert_eq!(
            r,
            DetectedRange {
                p_min: 8,
                p_max: 64
            }
        );
    }
}
