//! The sweep self-profile: where the harness's own wall-clock went.
//!
//! A [`SweepProfile`] pairs the *host-side* timing of a sweep (per-key
//! wall-clock, per-worker busy/idle spans, cache temperature) with the
//! *virtual-cost* metrics exported during execution (Eq. 1/2 term
//! breakdowns, resilience counters) — one report answering both "which
//! keys were slow to evaluate" and "where did the modeled time/energy
//! go".
//!
//! Structure is deterministic: runs appear in spec order under their
//! [`RunKey`](crate::key::RunKey) labels and digests, workers in index
//! order, and the JSON rendering is canonical — reruns of the same
//! sweep differ only in the nanosecond values. One caveat, by design:
//! the `sim.*`/`faults.*` metric series are exported when a run
//! *executes*, so a warm cache yields fewer samples there than a cold
//! one. The `virt.*` series and everything else in the profile are
//! recorded per key occurrence, hit or miss, and are identical across
//! cache temperature and `--jobs` values.

use psse_metrics::{Json, Snapshot};

use crate::cache::CacheStats;
use crate::pool::{PoolProfile, WorkerSpan};

/// One run's entry in the self-profile, in spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunProfile {
    /// Human-readable key label (`RunKey::label`).
    pub label: String,
    /// Content digest (`RunKey::digest`), linking the entry to its
    /// cache record.
    pub digest: String,
    /// Host wall-clock spent producing the result, nanoseconds
    /// (lookup time when cached, execution time when not).
    pub wall_ns: u64,
    /// True when the result came from the cache.
    pub cached: bool,
    /// True when the run succeeded.
    pub ok: bool,
}

/// The complete self-profile of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProfile {
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the whole sweep, nanoseconds.
    pub wall_ns: u64,
    /// Per-run host timing, spec order.
    pub runs: Vec<RunProfile>,
    /// Per-worker busy spans, worker-index order.
    pub workers: Vec<WorkerSpan>,
    /// Cache counters over the engine's lifetime at sweep end.
    pub cache: CacheStats,
    /// The metrics registry snapshot (canonical JSON): `virt.*` series
    /// recorded per key occurrence, `sim.*`/`faults.*` series exported
    /// by the runs that actually executed.
    pub metrics: Json,
}

impl SweepProfile {
    /// Assemble a profile from the pool timing and per-run outcomes.
    pub(crate) fn assemble(
        pool: &PoolProfile,
        labels: Vec<(String, String)>,
        cached: &[bool],
        ok: &[bool],
        cache: CacheStats,
        metrics: &Snapshot,
    ) -> SweepProfile {
        let runs = labels
            .into_iter()
            .zip(pool.item_ns.iter())
            .zip(cached.iter().zip(ok))
            .map(|(((label, digest), &wall_ns), (&cached, &ok))| RunProfile {
                label,
                digest,
                wall_ns,
                cached,
                ok,
            })
            .collect();
        SweepProfile {
            jobs: pool.jobs,
            wall_ns: pool.wall_ns,
            runs,
            workers: pool.workers.clone(),
            cache,
            metrics: metrics.to_json(),
        }
    }

    /// Indices of the `k` slowest runs, slowest first; ties break
    /// toward spec order so the ranking is deterministic.
    pub fn top_slowest(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.runs.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(self.runs[i].wall_ns), i));
        idx.truncate(k);
        idx
    }

    /// Worker utilization in `[0, 1]`: busy nanoseconds over sweep
    /// wall-clock.
    pub fn utilization(&self, worker: usize) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.workers
            .get(worker)
            .map_or(0.0, |w| w.busy_ns as f64 / self.wall_ns as f64)
    }

    /// Serialize to the canonical profile JSON (`version` 1). Field
    /// order is fixed, runs stay in spec order, so structure is
    /// byte-stable across reruns.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Int(1)),
            ("jobs", Json::Int(self.jobs as i128)),
            ("wall_ns", Json::Int(self.wall_ns as i128)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(self.cache.hits as i128)),
                    ("misses", Json::Int(self.cache.misses as i128)),
                    ("evictions", Json::Int(self.cache.evictions as i128)),
                    ("corrupt", Json::Int(self.cache.corrupt as i128)),
                    ("quarantined", Json::Int(self.cache.quarantined as i128)),
                ]),
            ),
            (
                "runs",
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("label", Json::Str(r.label.clone())),
                                ("digest", Json::Str(r.digest.clone())),
                                ("wall_ns", Json::Int(r.wall_ns as i128)),
                                ("cached", Json::Bool(r.cached)),
                                ("ok", Json::Bool(r.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("busy_ns", Json::Int(w.busy_ns as i128)),
                                ("items", Json::Int(w.items as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", self.metrics.clone()),
        ])
    }

    /// Parse a profile back from [`SweepProfile::to_json`] output.
    pub fn from_json(v: &Json) -> Result<SweepProfile, String> {
        let int = |obj: &Json, k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("profile JSON missing integer `{k}`"))
        };
        match v.get("version").and_then(Json::as_int) {
            Some(1) => {}
            other => return Err(format!("unsupported profile version {other:?}")),
        }
        let cache_v = v.get("cache").ok_or("profile JSON missing `cache`")?;
        let runs = v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("profile JSON missing `runs`")?
            .iter()
            .map(|r| {
                Ok(RunProfile {
                    label: r
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or("run missing `label`")?
                        .to_string(),
                    digest: r
                        .get("digest")
                        .and_then(Json::as_str)
                        .ok_or("run missing `digest`")?
                        .to_string(),
                    wall_ns: int(r, "wall_ns")?,
                    cached: r
                        .get("cached")
                        .and_then(Json::as_bool)
                        .ok_or("run missing `cached`")?,
                    ok: r
                        .get("ok")
                        .and_then(Json::as_bool)
                        .ok_or("run missing `ok`")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let workers = v
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or("profile JSON missing `workers`")?
            .iter()
            .map(|w| {
                Ok(WorkerSpan {
                    busy_ns: int(w, "busy_ns")?,
                    items: int(w, "items")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SweepProfile {
            jobs: int(v, "jobs")? as usize,
            wall_ns: int(v, "wall_ns")?,
            runs,
            workers,
            cache: CacheStats {
                hits: int(cache_v, "hits")?,
                misses: int(cache_v, "misses")?,
                evictions: int(cache_v, "evictions")?,
                corrupt: int(cache_v, "corrupt")?,
                quarantined: int(cache_v, "quarantined")?,
            },
            metrics: v
                .get("metrics")
                .cloned()
                .ok_or("profile JSON missing `metrics`")?,
        })
    }

    /// Human-readable report: sweep summary, the `top_k` slowest keys,
    /// and per-worker utilization bars. Row *ordering* is
    /// deterministic; the timing columns are what vary between runs.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "self-profile: {} runs, jobs={}, wall {}, cache {} hits / {} misses\n",
            self.runs.len(),
            self.jobs,
            fmt_ns(self.wall_ns),
            self.cache.hits,
            self.cache.misses,
        ));
        let top = self.top_slowest(top_k);
        if !top.is_empty() {
            out.push_str(&format!("top {} slowest keys:\n", top.len()));
            for i in top {
                let r = &self.runs[i];
                out.push_str(&format!(
                    "  {:>10}  {}{}\n",
                    fmt_ns(r.wall_ns),
                    r.label,
                    if r.cached { "  [cached]" } else { "" },
                ));
            }
        }
        if !self.workers.is_empty() {
            out.push_str("worker utilization:\n");
            for (w, span) in self.workers.iter().enumerate() {
                let u = self.utilization(w);
                let bars = (u * 20.0).round().clamp(0.0, 20.0) as usize;
                out.push_str(&format!(
                    "  w{w}: [{:<20}] {:>5.1}%  {} runs, {} busy\n",
                    "#".repeat(bars),
                    100.0 * u,
                    span.items,
                    fmt_ns(span.busy_ns),
                ));
            }
        }
        out
    }
}

/// Render nanoseconds at a human scale (`1.234s`, `56.7ms`, `890us`).
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{}us", ns / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepProfile {
        SweepProfile {
            jobs: 2,
            wall_ns: 10_000_000,
            runs: vec![
                RunProfile {
                    label: "model:nbody n=1000 p=4 c=1".into(),
                    digest: "aa".into(),
                    wall_ns: 7_000_000,
                    cached: false,
                    ok: true,
                },
                RunProfile {
                    label: "model:nbody n=1000 p=8 c=1".into(),
                    digest: "bb".into(),
                    wall_ns: 9_000_000,
                    cached: true,
                    ok: true,
                },
            ],
            workers: vec![
                WorkerSpan {
                    busy_ns: 7_000_000,
                    items: 1,
                },
                WorkerSpan {
                    busy_ns: 9_000_000,
                    items: 1,
                },
            ],
            cache: CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                corrupt: 0,
                quarantined: 0,
            },
            metrics: Json::obj(vec![(
                "virt.time_ns",
                Json::obj(vec![("kind", Json::Str("histogram".into()))]),
            )]),
        }
    }

    #[test]
    fn json_round_trips() {
        let p = sample();
        let text = p.to_json().to_string();
        let back = SweepProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn top_slowest_is_deterministic() {
        let p = sample();
        assert_eq!(p.top_slowest(1), vec![1]);
        assert_eq!(p.top_slowest(10), vec![1, 0]);
        // Equal times fall back to spec order.
        let mut q = p.clone();
        q.runs[0].wall_ns = q.runs[1].wall_ns;
        assert_eq!(q.top_slowest(2), vec![0, 1]);
    }

    #[test]
    fn render_names_every_section() {
        let text = sample().render(5);
        assert!(text.contains("self-profile: 2 runs, jobs=2"), "{text}");
        assert!(text.contains("top 2 slowest keys:"), "{text}");
        assert!(
            text.contains("model:nbody n=1000 p=8 c=1  [cached]"),
            "{text}"
        );
        assert!(text.contains("worker utilization:"), "{text}");
        assert!(text.contains("w0:"), "{text}");
        // 9ms / 10ms = 90% for worker 1.
        assert!(text.contains("90.0%"), "{text}");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(SweepProfile::from_json(&Json::parse("{}").unwrap()).is_err());
        let bad = "{\"version\":2,\"jobs\":1}";
        assert!(SweepProfile::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn utilization_is_bounded() {
        let p = sample();
        assert!((p.utilization(0) - 0.7).abs() < 1e-9);
        assert_eq!(p.utilization(99), 0.0);
        let empty = SweepProfile {
            wall_ns: 0,
            ..sample()
        };
        assert_eq!(empty.utilization(0), 0.0);
    }
}
