//! Declarative sweep specs: a `key = value` text format expanded into a
//! deterministic ordered list of [`RunKey`]s.
//!
//! ```text
//! # Fig. 4-style n-body grid
//! kind    = model
//! alg     = nbody
//! machine = jaketown
//! n       = 10000
//! p       = geom:6:100:30        # 30 log-spaced points, rounded
//! mem     = geomf:1e3:1e6:30     # 30 log-spaced memories
//! f       = 10
//! ```
//!
//! List values accept comma-separated atoms; each atom is a plain
//! number, an arithmetic range `lo..hi..step`, a power-of-two range
//! `pow2:lo:hi`, or a geometric ladder `geom:lo:hi:count` (integer,
//! rounded exactly like the Fig. 4 grid: `lo·(hi/lo)^(i/(count-1))`)
//! / `geomf:lo:hi:count` (float, no rounding). Expansion order is fixed
//! and documented: `n` (outer) → `p` → `c` → `mem` (inner) — the same
//! p-outer/M-inner nesting as the existing figure benches — so the run
//! list, and therefore any CSV derived from it, is reproducible from
//! the spec text alone. Duplicate grid points are kept (they become
//! intra-sweep cache hits), again matching the benches.
//!
//! Unknown keys are rejected with the offending line number.

use std::str::FromStr;

use psse_core::machines::{cloud_instance, cluster_node, embedded_soc, jaketown};
use psse_core::params::MachineParams;
use psse_sim::prelude::{CheckpointPolicy, FaultPlan, FaultSpec, RecoveryPolicy};
use psse_sim::Backend;

use crate::error::LabError;
use crate::key::{RunKey, RunKind};

/// A parsed sweep specification. See the module docs for the text
/// format; [`SweepSpec::expand`] produces the deterministic run list.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Model evaluation or simulator execution.
    pub kind: RunKind,
    /// Algorithm id (validated at execution time by the runner).
    pub alg: String,
    /// Machine preset name (for summaries).
    pub machine_name: String,
    /// The machine after preset + overrides.
    pub machine: MachineParams,
    /// Problem sizes (outermost loop).
    pub n: Vec<u64>,
    /// Processor counts.
    pub p: Vec<u64>,
    /// Replication factors.
    pub c: Vec<u64>,
    /// Memories per processor, words (innermost loop). Empty ⇒ one run
    /// at the algorithm's minimal memory (`mem = 0` sentinel).
    pub mem: Vec<f64>,
    /// n-body flops per interaction.
    pub f: f64,
    /// Stencil halo width (`alg = stencil`; ignored elsewhere).
    pub halo: u64,
    /// Stencil sweep count (`alg = stencil`).
    pub iters: u64,
    /// Input seed for simulator runs.
    pub seed: u64,
    /// Clamp out-of-band memories instead of flagging them infeasible.
    pub clamp_mem: bool,
    /// Fault plan applied to every run (simulator sweeps).
    pub faults: Option<FaultPlan>,
    /// Simulator backend (`backend = threads|events`, default threads).
    pub backend: Backend,
    /// Per-run wall-clock watchdog budget in seconds (`timeout = 30`).
    /// `None` never cancels. Deliberately *not* part of [`RunKey`]
    /// identity: it routes into [`crate::LabConfig::timeout`], so cache
    /// digests and CSV bytes are unaffected by the budget chosen.
    pub timeout: Option<f64>,
    /// Full text of an HBL kernel file (`kernel = path/to/foo.kernel`,
    /// model sweeps only, mutually exclusive with `alg`). The file is
    /// read and validated at parse time; the *content* enters every
    /// [`RunKey`], so cache slots track edits to the file.
    pub kernel: Option<String>,
}

const MACHINE_KEYS: [&str; 10] = [
    "gamma-t",
    "beta-t",
    "alpha-t",
    "gamma-e",
    "beta-e",
    "alpha-e",
    "delta-e",
    "epsilon-e",
    "max-message",
    "mem-words",
];

const FAULT_KEYS: [&str; 10] = [
    "fault-seed",
    "drop-rate",
    "corrupt-rate",
    "duplicate-rate",
    "delay-rate",
    "delay-seconds",
    "retries",
    "backoff",
    "checkpoint-interval",
    "checkpoint-words",
];

fn machine_preset(name: &str) -> Option<MachineParams> {
    match name {
        "jaketown" => Some(jaketown()),
        "embedded-soc" => Some(embedded_soc()),
        "cluster-node" => Some(cluster_node()),
        "cloud-instance" => Some(cloud_instance()),
        _ => None,
    }
}

/// Parse one list atom into f64 values (integer users round afterwards).
fn parse_atom(atom: &str, line: usize) -> Result<Vec<f64>, LabError> {
    let atom = atom.trim();
    let bad = |what: &str| LabError::spec(line, format!("bad {what} `{atom}`"));
    if let Some(rest) = atom.strip_prefix("pow2:") {
        let (lo, hi) = rest.split_once(':').ok_or_else(|| bad("pow2 range"))?;
        let lo: f64 = lo.parse().map_err(|_| bad("pow2 range"))?;
        let hi: f64 = hi.parse().map_err(|_| bad("pow2 range"))?;
        if !(lo > 0.0 && hi >= lo) {
            return Err(bad("pow2 range"));
        }
        let mut out = Vec::new();
        let mut v = lo;
        while v <= hi {
            out.push(v);
            v *= 2.0;
        }
        return Ok(out);
    }
    if let Some(rest) = atom.strip_prefix("geom:").or(atom.strip_prefix("geomf:")) {
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(bad("geometric ladder"));
        }
        let lo: f64 = parts[0].parse().map_err(|_| bad("geometric ladder"))?;
        let hi: f64 = parts[1].parse().map_err(|_| bad("geometric ladder"))?;
        let count: usize = parts[2].parse().map_err(|_| bad("geometric ladder"))?;
        if !(lo > 0.0 && hi >= lo && count >= 1) {
            return Err(bad("geometric ladder"));
        }
        if count == 1 {
            return Ok(vec![lo]);
        }
        // Same formula as the Fig. 4 grid: lo·(hi/lo)^(i/(count-1)).
        return Ok((0..count)
            .map(|i| lo * (hi / lo).powf(i as f64 / (count - 1) as f64))
            .collect());
    }
    if let Some((lo, rest)) = atom.split_once("..") {
        let (hi, step) = rest.split_once("..").unwrap_or((rest, "1"));
        let lo: f64 = lo.parse().map_err(|_| bad("range"))?;
        let hi: f64 = hi.parse().map_err(|_| bad("range"))?;
        let step: f64 = step.parse().map_err(|_| bad("range"))?;
        if !(step > 0.0 && hi >= lo) {
            return Err(bad("range"));
        }
        let mut out = Vec::new();
        let mut v = lo;
        while v <= hi {
            out.push(v);
            v += step;
        }
        return Ok(out);
    }
    atom.parse::<f64>()
        .map(|v| vec![v])
        .map_err(|_| bad("number"))
}

fn parse_f64_list(value: &str, line: usize) -> Result<Vec<f64>, LabError> {
    let mut out = Vec::new();
    for atom in value.split(',') {
        out.extend(parse_atom(atom, line)?);
    }
    if out.is_empty() {
        return Err(LabError::spec(line, "empty list"));
    }
    Ok(out)
}

fn parse_u64_list(value: &str, line: usize) -> Result<Vec<u64>, LabError> {
    parse_f64_list(value, line)?
        .into_iter()
        .map(|v| {
            // Round like the benches round their log-spaced p grids.
            let r = v.round();
            if r < 0.0 || r > u64::MAX as f64 {
                Err(LabError::spec(line, format!("value {v} out of u64 range")))
            } else {
                Ok(r as u64)
            }
        })
        .collect()
}

impl SweepSpec {
    /// Parse the `key = value` spec text. Unknown keys are an error.
    pub fn parse(text: &str) -> Result<SweepSpec, LabError> {
        let mut kind: Option<RunKind> = None;
        let mut alg: Option<String> = None;
        let mut machine_name = String::from("jaketown");
        let mut overrides: Vec<(usize, f64)> = Vec::new(); // (MACHINE_KEYS index, value)
        let mut n = vec![];
        let mut p = vec![];
        let mut c = vec![1u64];
        let mut mem: Vec<f64> = vec![];
        let mut f = 20.0;
        let (mut halo, mut iters) = crate::key::STENCIL_DEFAULTS;
        let mut seed = 42u64;
        let mut clamp_mem = false;
        let mut backend = Backend::Threads;
        let mut timeout: Option<f64> = None;
        let mut fault_vals: Vec<(usize, f64)> = Vec::new(); // (FAULT_KEYS index, value)
        let mut kernel: Option<(usize, String, String)> = None; // (line, name, text)

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            // Strip comments and blanks.
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                LabError::spec(lineno, format!("expected `key = value`, got `{line}`"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(LabError::spec(lineno, format!("`{key}` has no value")));
            }
            let scalar = |v: &str| -> Result<f64, LabError> {
                v.parse()
                    .map_err(|_| LabError::spec(lineno, format!("bad number `{v}` for `{key}`")))
            };
            match key {
                "kind" => {
                    kind = Some(RunKind::from_str(value).map_err(|e| LabError::spec(lineno, e))?)
                }
                "alg" => alg = Some(value.to_string()),
                "kernel" => {
                    // Read and fully validate the kernel file now, so a
                    // bad path or a malformed loop nest surfaces with
                    // this spec line (plus the kernel's own line number)
                    // instead of failing every expanded run later.
                    let text = std::fs::read_to_string(value).map_err(|e| {
                        LabError::spec(lineno, format!("cannot read kernel file `{value}`: {e}"))
                    })?;
                    let parsed = psse_hbl::prelude::Kernel::parse(&text)
                        .map_err(|e| LabError::spec(lineno, format!("{value}: {e}")))?;
                    psse_hbl::prelude::derive(&parsed)
                        .map_err(|e| LabError::spec(lineno, format!("{value}: {e}")))?;
                    kernel = Some((lineno, parsed.name.clone(), text));
                }
                "machine" => {
                    if machine_preset(value).is_none() {
                        return Err(LabError::spec(
                            lineno,
                            format!(
                                "unknown machine `{value}` \
                                 (jaketown|embedded-soc|cluster-node|cloud-instance)"
                            ),
                        ));
                    }
                    machine_name = value.to_string();
                }
                "backend" => {
                    backend = value
                        .parse::<Backend>()
                        .map_err(|e| LabError::spec(lineno, e))?;
                }
                "n" => n = parse_u64_list(value, lineno)?,
                "p" => p = parse_u64_list(value, lineno)?,
                "c" => c = parse_u64_list(value, lineno)?,
                "mem" => mem = parse_f64_list(value, lineno)?,
                "f" => f = scalar(value)?,
                "halo" | "iters" => {
                    let v = scalar(value)?;
                    if v < 1.0 || v.fract() != 0.0 {
                        return Err(LabError::spec(
                            lineno,
                            format!("`{key}` must be a positive integer, got `{value}`"),
                        ));
                    }
                    if key == "halo" {
                        halo = v as u64;
                    } else {
                        iters = v as u64;
                    }
                }
                "seed" => seed = scalar(value)? as u64,
                "timeout" => {
                    let v = scalar(value)?;
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(LabError::spec(
                            lineno,
                            format!(
                                "`timeout` must be a positive number of seconds, got `{value}`"
                            ),
                        ));
                    }
                    timeout = Some(v);
                }
                "clamp" => {
                    clamp_mem = match value {
                        "true" | "1" | "yes" => true,
                        "false" | "0" | "no" => false,
                        _ => {
                            return Err(LabError::spec(
                                lineno,
                                format!("bad boolean `{value}` for `clamp`"),
                            ));
                        }
                    }
                }
                _ => {
                    if let Some(idx) = MACHINE_KEYS.iter().position(|k| *k == key) {
                        overrides.push((idx, scalar(value)?));
                    } else if let Some(idx) = FAULT_KEYS.iter().position(|k| *k == key) {
                        fault_vals.push((idx, scalar(value)?));
                    } else {
                        return Err(LabError::spec(lineno, format!("unknown key `{key}`")));
                    }
                }
            }
        }

        let kind = kind.ok_or_else(|| LabError::spec(0, "missing `kind = model|simulate`"))?;
        let (alg, kernel) = match kernel {
            Some((lineno, name, text)) => {
                if alg.is_some() {
                    return Err(LabError::spec(
                        lineno,
                        "`kernel` and `alg` are mutually exclusive",
                    ));
                }
                if kind != RunKind::Model {
                    return Err(LabError::spec(
                        lineno,
                        "`kernel` sweeps are model-only (kind = model)",
                    ));
                }
                (format!("kernel:{name}"), Some(text))
            }
            None => (
                alg.ok_or_else(|| LabError::spec(0, "missing `alg = <algorithm>`"))?,
                None,
            ),
        };
        if n.is_empty() {
            return Err(LabError::spec(0, "missing `n = <sizes>`"));
        }
        if p.is_empty() {
            return Err(LabError::spec(0, "missing `p = <processor counts>`"));
        }

        let mut machine = machine_preset(&machine_name).expect("validated above");
        for (idx, v) in overrides {
            match idx {
                0 => machine.gamma_t = v,
                1 => machine.beta_t = v,
                2 => machine.alpha_t = v,
                3 => machine.gamma_e = v,
                4 => machine.beta_e = v,
                5 => machine.alpha_e = v,
                6 => machine.delta_e = v,
                7 => machine.epsilon_e = v,
                8 => machine.max_message_words = v,
                _ => machine.mem_words = v,
            }
        }
        machine
            .validate()
            .map_err(|e| LabError::spec(0, format!("invalid machine after overrides: {e}")))?;

        let faults = if fault_vals.is_empty() {
            None
        } else {
            let get = |name: &str, default: f64| -> f64 {
                let idx = FAULT_KEYS.iter().position(|k| *k == name).unwrap();
                fault_vals
                    .iter()
                    .rev()
                    .find(|(i, _)| *i == idx)
                    .map(|(_, v)| *v)
                    .unwrap_or(default)
            };
            let interval = get("checkpoint-interval", 0.0);
            let plan = FaultPlan {
                spec: FaultSpec {
                    seed: get("fault-seed", seed as f64) as u64,
                    drop_rate: get("drop-rate", 0.0),
                    corrupt_rate: get("corrupt-rate", 0.0),
                    duplicate_rate: get("duplicate-rate", 0.0),
                    delay_rate: get("delay-rate", 0.0),
                    delay_seconds: get("delay-seconds", 0.0),
                    crashes: Vec::new(),
                },
                recovery: RecoveryPolicy {
                    max_retries: get("retries", 16.0) as u32,
                    retry_backoff: get("backoff", 0.0),
                    checkpoint: if interval > 0.0 {
                        Some(CheckpointPolicy {
                            interval,
                            words: get("checkpoint-words", 0.0) as u64,
                            restart_seconds: 0.0,
                        })
                    } else {
                        None
                    },
                },
            };
            plan.validate()
                .map_err(|e| LabError::spec(0, format!("bad fault plan: {e}")))?;
            Some(plan)
        };

        Ok(SweepSpec {
            kind,
            alg,
            machine_name,
            machine,
            n,
            p,
            c,
            mem,
            f,
            halo,
            iters,
            seed,
            clamp_mem,
            faults,
            backend,
            timeout,
            kernel,
        })
    }

    /// Number of runs [`SweepSpec::expand`] will produce.
    pub fn len(&self) -> usize {
        self.n.len() * self.p.len() * self.c.len() * self.mem.len().max(1)
    }

    /// Whether the spec expands to zero runs (it cannot, post-parse).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand into the deterministic ordered run list:
    /// `n` (outer) → `p` → `c` → `mem` (inner).
    pub fn expand(&self) -> Vec<RunKey> {
        let mems: &[f64] = if self.mem.is_empty() {
            &[0.0]
        } else {
            &self.mem
        };
        let mut keys = Vec::with_capacity(self.len());
        for &n in &self.n {
            for &p in &self.p {
                for &c in &self.c {
                    for &mem in mems {
                        keys.push(RunKey {
                            kind: self.kind,
                            alg: self.alg.clone(),
                            n,
                            p,
                            c,
                            mem,
                            f: self.f,
                            seed: self.seed,
                            clamp_mem: self.clamp_mem,
                            machine: self.machine.clone(),
                            faults: self.faults.clone(),
                            backend: self.backend,
                            kernel: self.kernel.clone(),
                            halo: self.halo,
                            iters: self.iters,
                        });
                    }
                }
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
        # n-body model grid\n\
        kind = model\n\
        alg  = nbody\n\
        n    = 10000\n\
        p    = geom:6:100:4\n\
        mem  = geomf:1e3:1e6:3\n\
        f    = 10\n";

    #[test]
    fn parses_and_expands_in_document_order() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.alg, "nbody");
        assert_eq!(spec.f, 10.0);
        assert_eq!(spec.len(), 12);
        let keys = spec.expand();
        assert_eq!(keys.len(), 12);
        // p outer, mem inner.
        assert_eq!(keys[0].p, keys[1].p);
        assert_ne!(keys[0].mem, keys[1].mem);
        assert_ne!(keys[2].p, keys[3].p);
        // Geometric p grid rounds like the benches.
        assert_eq!(keys[0].p, 6);
        assert_eq!(keys[11].p, 100);
    }

    #[test]
    fn geom_matches_bench_formula() {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:30\nmem = 1000\n",
        )
        .unwrap();
        for (pi, key) in spec.expand().iter().enumerate() {
            let expect = (6.0 * (100.0f64 / 6.0).powf(pi as f64 / 29.0)).round() as u64;
            assert_eq!(key.p, expect);
        }
    }

    #[test]
    fn pow2_and_ranges_expand() {
        let spec =
            SweepSpec::parse("kind = model\nalg = matmul\nn = 256\np = pow2:4:64\nc = 1..3\n")
                .unwrap();
        assert_eq!(spec.p, [4, 8, 16, 32, 64]);
        assert_eq!(spec.c, [1, 2, 3]);
        assert!(spec.mem.is_empty());
        assert_eq!(spec.expand()[0].mem, 0.0); // minimal-memory sentinel
    }

    #[test]
    fn unknown_keys_and_machines_are_rejected_with_line() {
        let err =
            SweepSpec::parse("kind = model\nalg = nbody\nn = 4\np = 2\nbogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
        assert!(err.to_string().contains("bogus"));
        let err = SweepSpec::parse("kind = model\nalg = nbody\nn = 4\np = 2\nmachine = pdp11\n")
            .unwrap_err();
        assert!(err.to_string().contains("pdp11"));
    }

    #[test]
    fn missing_required_keys_are_reported() {
        assert!(SweepSpec::parse("alg = nbody\nn = 4\np = 2\n")
            .unwrap_err()
            .to_string()
            .contains("kind"));
        assert!(SweepSpec::parse("kind = model\nn = 4\np = 2\n")
            .unwrap_err()
            .to_string()
            .contains("alg"));
        assert!(SweepSpec::parse("kind = model\nalg = nbody\np = 2\n")
            .unwrap_err()
            .to_string()
            .contains("`n"));
    }

    #[test]
    fn machine_overrides_apply() {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 4\np = 2\nbeta-e = 9e-9\nmem-words = 1e10\n",
        )
        .unwrap();
        assert_eq!(spec.machine.beta_e, 9e-9);
        assert_eq!(spec.machine.mem_words, 1e10);
    }

    #[test]
    fn fault_keys_build_a_plan() {
        let spec = SweepSpec::parse(
            "kind = simulate\nalg = mm25d-abft\nn = 32\np = 4\ndrop-rate = 0.02\nretries = 8\n",
        )
        .unwrap();
        let plan = spec.faults.unwrap();
        assert_eq!(plan.spec.drop_rate, 0.02);
        assert_eq!(plan.recovery.max_retries, 8);
        assert!(plan.recovery.checkpoint.is_none());
    }

    #[test]
    fn backend_key_selects_the_event_backend() {
        let spec =
            SweepSpec::parse("kind = simulate\nalg = mm25d\nn = 16\np = 8\nbackend = events\n")
                .unwrap();
        assert_eq!(spec.backend, Backend::Events);
        assert!(spec.expand().iter().all(|k| k.backend == Backend::Events));
        // Default is the thread backend; bad values are line-reported.
        let spec = SweepSpec::parse("kind = model\nalg = nbody\nn = 4\np = 2\n").unwrap();
        assert_eq!(spec.backend, Backend::Threads);
        let err = SweepSpec::parse("kind = model\nalg = nbody\nn = 4\np = 2\nbackend = fibers\n")
            .unwrap_err();
        assert!(err.to_string().contains("fibers"), "{err}");
    }

    #[test]
    fn timeout_key_parses_and_rejects_nonpositive() {
        let spec = SweepSpec::parse("kind = simulate\nalg = mm25d\nn = 16\np = 8\ntimeout = 30\n")
            .unwrap();
        assert_eq!(spec.timeout, Some(30.0));
        // Default: no watchdog.
        let spec = SweepSpec::parse("kind = model\nalg = nbody\nn = 4\np = 2\n").unwrap();
        assert_eq!(spec.timeout, None);
        for bad in ["0", "-1", "nan", "inf"] {
            let err = SweepSpec::parse(&format!(
                "kind = model\nalg = nbody\nn = 4\np = 2\ntimeout = {bad}\n"
            ))
            .unwrap_err();
            assert!(err.to_string().contains("timeout"), "{bad}: {err}");
        }
        // The budget never perturbs run identity.
        let with = SweepSpec::parse("kind = simulate\nalg = mm25d\nn = 16\np = 8\ntimeout = 30\n")
            .unwrap();
        let without = SweepSpec::parse("kind = simulate\nalg = mm25d\nn = 16\np = 8\n").unwrap();
        let (kw, ko) = (with.expand(), without.expand());
        assert_eq!(
            kw.iter().map(|k| k.digest()).collect::<Vec<_>>(),
            ko.iter().map(|k| k.digest()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn kernel_key_reads_the_file_and_names_the_alg() {
        let dir = std::env::temp_dir().join(format!("psse-spec-kernel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mm.kernel");
        std::fs::write(
            &path,
            "kernel = mm\nfor i in 0..n\nfor j in 0..n\nfor k in 0..n\nC[i,j] += A[i,k] * B[k,j]\n",
        )
        .unwrap();
        let spec = SweepSpec::parse(&format!(
            "kind = model\nkernel = {}\nn = 256\np = 4\n",
            path.display()
        ))
        .unwrap();
        assert_eq!(spec.alg, "kernel:mm");
        let keys = spec.expand();
        assert!(keys[0].kernel.as_deref().unwrap().contains("C[i,j]"));

        // `kernel` and `alg` are mutually exclusive, and model-only.
        let err = SweepSpec::parse(&format!(
            "kind = model\nalg = matmul\nkernel = {}\nn = 4\np = 2\n",
            path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        let err = SweepSpec::parse(&format!(
            "kind = simulate\nkernel = {}\nn = 4\np = 2\n",
            path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("model-only"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernel_key_failures_carry_the_spec_line() {
        // Missing file: the spec line is named.
        let err = SweepSpec::parse("kind = model\nkernel = /nonexistent/x.kernel\nn = 4\np = 2\n")
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("/nonexistent/x.kernel"), "{err}");
        // Malformed kernel: both the spec line and the kernel's own
        // line number survive into the message.
        let dir = std::env::temp_dir().join(format!("psse-spec-badkernel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.kernel");
        std::fs::write(&path, "kernel = bad\nfor i in 0..n\nC[q] += A[i]\n").unwrap();
        let err = SweepSpec::parse(&format!(
            "kind = model\nkernel = {}\nn = 4\np = 2\n",
            path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("line 3"), "kernel line: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stencil_keys_parse_and_reach_the_run_keys() {
        let spec = SweepSpec::parse(
            "kind = simulate\nalg = stencil\nn = 64\np = 4\nhalo = 2\niters = 8\n",
        )
        .unwrap();
        assert_eq!((spec.halo, spec.iters), (2, 8));
        let keys = spec.expand();
        assert!(keys.iter().all(|k| k.halo == 2 && k.iters == 8));
        // Defaults leave old digests alone.
        let plain = SweepSpec::parse("kind = simulate\nalg = mm25d\nn = 16\np = 8\n").unwrap();
        assert_eq!((plain.halo, plain.iters), crate::key::STENCIL_DEFAULTS);
        // Zero or fractional values are line-reported errors.
        for bad in ["halo = 0", "iters = 2.5"] {
            let err = SweepSpec::parse(&format!(
                "kind = simulate\nalg = stencil\nn = 64\np = 4\n{bad}\n"
            ))
            .unwrap_err();
            assert!(err.to_string().contains("line 5"), "{bad}: {err}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec =
            SweepSpec::parse("\n# header\nkind = model # trailing\nalg = nbody\nn = 4\np = 2\n\n")
                .unwrap();
        assert_eq!(spec.kind, RunKind::Model);
    }
}
