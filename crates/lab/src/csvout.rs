//! CSV emission for sweep results, compatible with the `bench_results/`
//! conventions (header row, comma-separated, one row per run).
//!
//! Floats are written with `{:?}` — Rust's shortest round-trip
//! representation — so the emitted bytes are a pure function of the
//! result bits. That is the property the CI determinism smoke leans on:
//! `--jobs 1` and `--jobs 8` must produce byte-identical files, and so
//! must a warm-cache rerun.

use crate::key::RunKey;
use crate::pareto::pareto_indices;
use crate::result::RunResult;

/// Render the full sweep as CSV, one row per run in spec order.
/// Failed runs are skipped (they have no numbers to report); callers
/// surface failures separately.
pub fn sweep_csv(keys: &[RunKey], results: &[Result<RunResult, String>]) -> String {
    let mut out = String::from("alg,kind,n,p,c,mem_words,feasible,time_s,energy_j,power_w\n");
    for (key, res) in keys.iter().zip(results) {
        if let Ok(r) = res {
            out.push_str(&format!(
                "{},{},{},{},{},{:?},{},{:?},{:?},{:?}\n",
                key.alg,
                key.kind.as_str(),
                key.n,
                key.p,
                key.c,
                r.mem_used,
                r.feasible as u8,
                r.time,
                r.energy,
                r.power(),
            ));
        }
    }
    out
}

/// Render the per-`n` (time, energy) Pareto frontiers as CSV. Only
/// feasible, successful runs compete; rows keep spec order within each
/// frontier.
pub fn pareto_csv(keys: &[RunKey], results: &[Result<RunResult, String>]) -> String {
    let mut out = String::from("n,p,c,mem_words,time_s,energy_j\n");
    // Group by n, preserving first-appearance order.
    let mut ns: Vec<u64> = Vec::new();
    for key in keys {
        if !ns.contains(&key.n) {
            ns.push(key.n);
        }
    }
    for n in ns {
        let idx: Vec<usize> = (0..keys.len())
            .filter(|&i| keys[i].n == n && matches!(&results[i], Ok(r) if r.feasible))
            .collect();
        let pts: Vec<(f64, f64)> = idx
            .iter()
            .map(|&i| {
                let r = results[i].as_ref().unwrap();
                (r.time, r.energy)
            })
            .collect();
        for fi in pareto_indices(&pts) {
            let i = idx[fi];
            let r = results[i].as_ref().unwrap();
            out.push_str(&format!(
                "{},{},{},{:?},{:?},{:?}\n",
                n, keys[i].p, keys[i].c, r.mem_used, r.time, r.energy,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::machines::jaketown;

    fn fixture() -> (Vec<RunKey>, Vec<Result<RunResult, String>>) {
        let keys = vec![
            RunKey::model("nbody", 1000, 10, jaketown()),
            RunKey::model("nbody", 1000, 20, jaketown()),
            RunKey::model("nbody", 2000, 10, jaketown()),
        ];
        let results = vec![
            Ok(RunResult::model(true, 2.0, 5.0, 100.0)),
            Ok(RunResult::model(true, 1.0, 5.0, 100.0)),
            Err("boom".into()),
        ];
        (keys, results)
    }

    #[test]
    fn sweep_csv_has_header_and_skips_failures() {
        let (keys, results) = fixture();
        let csv = sweep_csv(&keys, &results);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 ok rows
        assert!(lines[0].starts_with("alg,kind,n,p,c,"));
        assert!(lines[1].starts_with("nbody,model,1000,10,1,"));
    }

    #[test]
    fn pareto_csv_groups_by_n_and_drops_dominated() {
        let (keys, results) = fixture();
        let csv = pareto_csv(&keys, &results);
        let lines: Vec<&str> = csv.lines().collect();
        // (1.0, 5.0) dominates (2.0, 5.0); n=2000 failed → no rows.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("1000,20,1,"));
    }
}
