//! # psse-lab — parallel batch experiment engine
//!
//! Every figure and table in the paper is a *sweep*: hundreds of
//! independent `(algorithm, n, p, M, machine)` evaluations. This crate
//! is the shared engine behind them, in four layers:
//!
//! 1. **Declarative sweep specs** ([`spec`]): a `key = value` text
//!    format parsed into a [`spec::SweepSpec`] and expanded into a
//!    deterministic ordered list of [`RunKey`]s.
//! 2. **Parallel executor** ([`pool`]): a fixed-size `std::thread`
//!    worker pool that runs independent evaluations concurrently and
//!    reassembles results in spec order — output is byte-identical for
//!    any `--jobs` value (`PSSE_LAB_JOBS` sets the default).
//! 3. **Content-addressed cache** ([`cache`]): each [`RunKey`] hashes
//!    (via the workspace's splitmix64 machinery) to a stable 128-bit
//!    digest; results are memoized in memory and optionally persisted
//!    as one-line records under `bench_results/.labcache/`, with
//!    hit/miss/evict counters surfaced in the run summary.
//! 4. **Analysis** ([`pareto`], [`csvout`]): (time, energy)
//!    Pareto-frontier extraction per problem size,
//!    perfect-strong-scaling-range detection cross-checked against the
//!    `psse-core` closed forms, and CSV emission compatible with
//!    `bench_results/`.
//!
//! ```
//! use psse_lab::prelude::*;
//!
//! let spec = SweepSpec::parse(
//!     "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:10\nmem = 2000\nf = 10\n",
//! )
//! .unwrap();
//! let lab = Lab::new(LabConfig { jobs: 2, ..LabConfig::default() });
//! let sweep = lab.run_spec(&spec);
//! assert_eq!(sweep.results.len(), 10);
//! let csv = sweep_csv(&sweep.keys, &sweep.results);
//! assert!(csv.starts_with("alg,kind,n,p,c,"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod csvout;
pub mod error;
pub mod key;
pub mod pareto;
pub mod pool;
pub mod result;
pub mod runner;
pub mod selfprof;
pub mod spec;

use std::path::PathBuf;

use crate::cache::{CacheStats, ResultCache};
use crate::key::RunKey;
use crate::result::RunResult;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabConfig {
    /// Worker threads. `0` defers to `PSSE_LAB_JOBS`, then to the
    /// machine's available parallelism.
    pub jobs: usize,
    /// Directory for the persistent cache (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// In-memory cache capacity (records; FIFO eviction beyond it).
    pub cache_capacity: usize,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            jobs: 0,
            cache_dir: None,
            cache_capacity: 65_536,
        }
    }
}

/// A sweep's keys, per-run outcomes (spec order) and cache activity.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The expanded run list, in spec order.
    pub keys: Vec<RunKey>,
    /// One outcome per key, same order.
    pub results: Vec<Result<RunResult, String>>,
    /// Cache counters accumulated over this engine's lifetime.
    pub stats: CacheStats,
}

impl SweepResults {
    /// Number of runs that failed.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// `(feasible, infeasible)` counts among successful runs.
    pub fn feasibility(&self) -> (usize, usize) {
        let feasible = self
            .results
            .iter()
            .filter(|r| matches!(r, Ok(x) if x.feasible))
            .count();
        let ok = self.results.iter().filter(|r| r.is_ok()).count();
        (feasible, ok - feasible)
    }
}

/// The batch engine: executes [`RunKey`]s through the worker pool with
/// content-addressed memoization.
pub struct Lab {
    config: LabConfig,
    cache: ResultCache,
}

impl Lab {
    /// Build an engine with the given configuration.
    pub fn new(config: LabConfig) -> Lab {
        let cache = ResultCache::new(config.cache_capacity, config.cache_dir.clone());
        Lab { config, cache }
    }

    /// The resolved worker count this engine will use.
    pub fn jobs(&self) -> usize {
        pool::resolve_jobs(self.config.jobs)
    }

    /// Execute an explicit key list; results come back in input order
    /// regardless of worker count. Cache lookups happen per key, so
    /// duplicated keys within the list hit after their first execution
    /// (modulo benign races between workers — counters may vary, bytes
    /// never do).
    pub fn run_keys(&self, keys: &[RunKey]) -> Vec<Result<RunResult, String>> {
        pool::run_ordered(self.jobs(), keys, |_, key| {
            let digest = key.digest();
            if let Some(hit) = self.cache.get(&digest) {
                return Ok(hit);
            }
            let result = runner::execute(key)?;
            // Persistence problems are non-fatal: the run succeeded.
            let _ = self.cache.put(&digest, result);
            Ok(result)
        })
    }

    /// [`Lab::run_keys`] plus a self-profile: host wall-clock per key,
    /// per-worker busy spans, and the metrics registry the runs
    /// exported into ([`runner::execute_into`]). Result bytes are
    /// identical to the unprofiled path; the profile is a pure
    /// side-channel.
    pub fn run_keys_profiled(
        &self,
        keys: &[RunKey],
    ) -> (Vec<Result<RunResult, String>>, selfprof::SweepProfile) {
        let registry = psse_metrics::Registry::new();
        let (outcomes, pool_profile) = pool::run_ordered_timed(self.jobs(), keys, |_, key| {
            let digest = key.digest();
            if let Some(hit) = self.cache.get(&digest) {
                return (Ok(hit), true);
            }
            match runner::execute_into(key, Some(&registry)) {
                Ok(result) => {
                    let _ = self.cache.put(&digest, result);
                    (Ok(result), false)
                }
                Err(e) => (Err(e), false),
            }
        });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut cached = Vec::with_capacity(outcomes.len());
        for (r, c) in outcomes {
            results.push(r);
            cached.push(c);
        }
        // Virtual-cost attribution per key *occurrence* — recorded from
        // the results in spec order, so these series are identical
        // whatever the worker count or cache temperature (unlike the
        // execution-time `sim.*` exports; see the `selfprof` docs).
        let h_time = registry.histogram("virt.time_ns").expect("fresh registry");
        let h_energy = registry
            .histogram("virt.energy_nj")
            .expect("fresh registry");
        let c_retries = registry.counter("virt.retries").expect("fresh registry");
        let c_res_words = registry
            .counter("virt.resilience.words")
            .expect("fresh registry");
        let c_res_msgs = registry
            .counter("virt.resilience.msgs")
            .expect("fresh registry");
        for r in results.iter().flatten() {
            h_time.record_secs(r.time);
            h_energy.record(psse_metrics::saturating_nanos(r.energy));
            c_retries.add(r.retries);
            c_res_words.add(r.resilience_words);
            c_res_msgs.add(r.resilience_msgs);
        }
        let ok: Vec<bool> = results.iter().map(|r| r.is_ok()).collect();
        let labels = keys.iter().map(|k| (k.label(), k.digest())).collect();
        let profile = selfprof::SweepProfile::assemble(
            &pool_profile,
            labels,
            &cached,
            &ok,
            self.cache.stats(),
            &registry.snapshot(),
        );
        (results, profile)
    }

    /// Expand a spec and execute it.
    pub fn run_spec(&self, spec: &spec::SweepSpec) -> SweepResults {
        let keys = spec.expand();
        let results = self.run_keys(&keys);
        SweepResults {
            keys,
            results,
            stats: self.cache.stats(),
        }
    }

    /// Expand a spec and execute it with a self-profile.
    pub fn run_spec_profiled(
        &self,
        spec: &spec::SweepSpec,
    ) -> (SweepResults, selfprof::SweepProfile) {
        let keys = spec.expand();
        let (results, profile) = self.run_keys_profiled(&keys);
        (
            SweepResults {
                keys,
                results,
                stats: self.cache.stats(),
            },
            profile,
        )
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The usual imports for lab users.
pub mod prelude {
    pub use crate::cache::{gc_dir, CacheStats, GcConfig, GcReport};
    pub use crate::csvout::{pareto_csv, sweep_csv};
    pub use crate::error::LabError;
    pub use crate::key::{RunKey, RunKind};
    pub use crate::pareto::{
        detect_scaling_range, pareto_indices, pareto_indices_naive, DetectedRange,
    };
    pub use crate::result::{digest_f64s, RunResult};
    pub use crate::runner::{execute, execute_into, model_algorithm};
    pub use crate::selfprof::{RunProfile, SweepProfile};
    pub use crate::spec::SweepSpec;
    pub use crate::{Lab, LabConfig, SweepResults};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn run_keys_memoizes_duplicates() {
        use psse_core::machines::jaketown;
        let lab = Lab::new(LabConfig {
            jobs: 1,
            ..LabConfig::default()
        });
        let key = RunKey::model("nbody", 1000, 10, jaketown());
        let keys = vec![key.clone(), key.clone(), key];
        let results = lab.run_keys(&keys);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = lab.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn profiled_run_matches_plain_run_bitwise() {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:8\nmem = 2000\nf = 10\n",
        )
        .unwrap();
        let plain = Lab::new(LabConfig {
            jobs: 1,
            ..LabConfig::default()
        })
        .run_spec(&spec);
        let lab = Lab::new(LabConfig {
            jobs: 4,
            ..LabConfig::default()
        });
        let (profiled, profile) = lab.run_spec_profiled(&spec);
        assert_eq!(plain.results, profiled.results);

        assert_eq!(profile.runs.len(), 8);
        assert_eq!(profile.workers.len(), 4);
        // Labels follow spec order and none of these fresh runs cached.
        for (run, key) in profile.runs.iter().zip(&profiled.keys) {
            assert_eq!(run.label, key.label());
            assert_eq!(run.digest, key.digest());
            assert!(!run.cached);
            assert!(run.ok);
        }
        // The virt.* series saw one sample per key occurrence.
        let virt = profile.metrics.get("virt.time_ns").expect("virt.time_ns");
        assert_eq!(virt.get("count").and_then(|v| v.as_u64()), Some(8));
        // Rerunning on the warm cache flips `cached` but keeps the key
        // set and the virt.* sample count identical.
        let (_, warm) = lab.run_spec_profiled(&spec);
        assert!(warm.runs.iter().all(|r| r.cached));
        let keys_cold: Vec<&str> = profile.runs.iter().map(|r| r.digest.as_str()).collect();
        let keys_warm: Vec<&str> = warm.runs.iter().map(|r| r.digest.as_str()).collect();
        assert_eq!(keys_cold, keys_warm);
        let virt_warm = warm.metrics.get("virt.time_ns").expect("virt.time_ns");
        assert_eq!(virt_warm.get("count").and_then(|v| v.as_u64()), Some(8));
    }

    #[test]
    fn run_spec_reports_feasibility_split() {
        let spec = SweepSpec::parse(
            // mem fixed: small p can't hold the problem → infeasible rows.
            "kind = model\nalg = nbody\nn = 10000\np = 2,4,1000\nmem = 100\nf = 10\n",
        )
        .unwrap();
        let lab = Lab::new(LabConfig::default());
        let sweep = lab.run_spec(&spec);
        assert_eq!(sweep.failures(), 0);
        let (feasible, infeasible) = sweep.feasibility();
        assert_eq!(feasible + infeasible, 3);
        assert!(infeasible >= 2); // p = 2 and p = 4 can't hold n/p words in 100
    }
}
