//! # psse-lab — parallel batch experiment engine
//!
//! Every figure and table in the paper is a *sweep*: hundreds of
//! independent `(algorithm, n, p, M, machine)` evaluations. This crate
//! is the shared engine behind them, in four layers:
//!
//! 1. **Declarative sweep specs** ([`spec`]): a `key = value` text
//!    format parsed into a [`spec::SweepSpec`] and expanded into a
//!    deterministic ordered list of [`RunKey`]s.
//! 2. **Parallel executor** ([`pool`]): a fixed-size `std::thread`
//!    worker pool that runs independent evaluations concurrently and
//!    reassembles results in spec order — output is byte-identical for
//!    any `--jobs` value (`PSSE_LAB_JOBS` sets the default).
//! 3. **Content-addressed cache** ([`cache`]): each [`RunKey`] hashes
//!    (via the workspace's splitmix64 machinery) to a stable 128-bit
//!    digest; results are memoized in memory and optionally persisted
//!    as one-line records under `bench_results/.labcache/`, with
//!    hit/miss/evict counters surfaced in the run summary.
//! 4. **Analysis** ([`pareto`], [`csvout`]): (time, energy)
//!    Pareto-frontier extraction per problem size,
//!    perfect-strong-scaling-range detection cross-checked against the
//!    `psse-core` closed forms, and CSV emission compatible with
//!    `bench_results/`.
//!
//! ```
//! use psse_lab::prelude::*;
//!
//! let spec = SweepSpec::parse(
//!     "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:10\nmem = 2000\nf = 10\n",
//! )
//! .unwrap();
//! let lab = Lab::new(LabConfig { jobs: 2, ..LabConfig::default() });
//! let sweep = lab.run_spec(&spec);
//! assert_eq!(sweep.results.len(), 10);
//! let csv = sweep_csv(&sweep.keys, &sweep.results);
//! assert!(csv.starts_with("alg,kind,n,p,c,"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod csvout;
pub mod error;
pub mod journal;
pub mod key;
pub mod pareto;
pub mod pool;
pub mod result;
pub mod runner;
pub mod selfprof;
pub mod spec;

use std::path::PathBuf;

use crate::cache::{CacheStats, ResultCache};
use crate::key::RunKey;
use crate::result::RunResult;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabConfig {
    /// Worker threads. `0` defers to `PSSE_LAB_JOBS`, then to the
    /// machine's available parallelism.
    pub jobs: usize,
    /// Directory for the persistent cache (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// In-memory cache capacity (records; FIFO eviction beyond it).
    pub cache_capacity: usize,
    /// Per-run wall-clock watchdog for simulator runs: a run that
    /// exceeds the budget is cancelled cooperatively and recorded as a
    /// deterministic `timeout: ...` failure while the rest of the sweep
    /// continues. `None` (the default) never cancels. Wall-clock only —
    /// the timeout is deliberately *not* part of the run identity, so
    /// it never perturbs cache digests.
    pub timeout: Option<std::time::Duration>,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            jobs: 0,
            cache_dir: None,
            cache_capacity: 65_536,
            timeout: None,
        }
    }
}

/// A sweep's keys, per-run outcomes (spec order) and cache activity.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The expanded run list, in spec order.
    pub keys: Vec<RunKey>,
    /// One outcome per key, same order.
    pub results: Vec<Result<RunResult, String>>,
    /// Cache counters accumulated over this engine's lifetime.
    pub stats: CacheStats,
}

impl SweepResults {
    /// Number of runs that failed.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// `(feasible, infeasible)` counts among successful runs.
    pub fn feasibility(&self) -> (usize, usize) {
        let feasible = self
            .results
            .iter()
            .filter(|r| matches!(r, Ok(x) if x.feasible))
            .count();
        let ok = self.results.iter().filter(|r| r.is_ok()).count();
        (feasible, ok - feasible)
    }
}

/// The batch engine: executes [`RunKey`]s through the worker pool with
/// content-addressed memoization.
pub struct Lab {
    config: LabConfig,
    cache: ResultCache,
    journal: Option<journal::Journal>,
}

impl Lab {
    /// Build an engine with the given configuration.
    pub fn new(config: LabConfig) -> Lab {
        let cache = ResultCache::new(config.cache_capacity, config.cache_dir.clone());
        Lab {
            config,
            cache,
            journal: None,
        }
    }

    /// Attach a sweep journal: every successful run (fresh or cached)
    /// is appended as a checksummed line, so a killed process resumes
    /// via [`Lab::seed`] + [`journal::Journal::open_resume`] instead of
    /// restarting.
    pub fn set_journal(&mut self, journal: journal::Journal) {
        self.journal = Some(journal);
    }

    /// Pre-load `digest → result` pairs (typically a journal replay)
    /// into the cache, so the next sweep treats them as hits. Results
    /// round-trip bit-exactly, which is what keeps a resumed CSV
    /// byte-identical to an uninterrupted one.
    pub fn seed(&self, replayed: &std::collections::HashMap<String, RunResult>) {
        for (digest, result) in replayed {
            let _ = self.cache.put(digest, *result);
        }
    }

    /// The resolved worker count this engine will use.
    pub fn jobs(&self) -> usize {
        pool::resolve_jobs(self.config.jobs)
    }

    /// One key, end to end: cache lookup, watched execution with panic
    /// containment, cache fill, journal append. Returns the outcome and
    /// whether it was served from cache.
    fn run_one(
        &self,
        key: &RunKey,
        registry: Option<&psse_metrics::Registry>,
    ) -> (Result<RunResult, String>, bool) {
        let digest = key.digest();
        if let Some(hit) = self.cache.get(&digest) {
            if let Some(j) = &self.journal {
                j.record(&digest, &hit);
            }
            return (Ok(hit), true);
        }
        // A panicking run fails alone: the payload becomes this key's
        // deterministic error string and the sweep carries on.
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Test-only failpoint so panic containment is testable
            // without depending on any real algorithm panicking.
            #[cfg(test)]
            if key.alg == "__panic" {
                panic!("injected failure for `__panic`");
            }
            runner::execute_watched(key, registry, self.config.timeout)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Err(format!("panic: {msg}"))
        });
        match executed {
            Ok(result) => {
                // Persistence problems are non-fatal: the run succeeded.
                let _ = self.cache.put(&digest, result);
                if let Some(j) = &self.journal {
                    j.record(&digest, &result);
                }
                (Ok(result), false)
            }
            Err(e) => (Err(e), false),
        }
    }

    /// Execute an explicit key list; results come back in input order
    /// regardless of worker count. Cache lookups happen per key, so
    /// duplicated keys within the list hit after their first execution
    /// (modulo benign races between workers — counters may vary, bytes
    /// never do).
    pub fn run_keys(&self, keys: &[RunKey]) -> Vec<Result<RunResult, String>> {
        pool::run_ordered(self.jobs(), keys, |_, key| self.run_one(key, None).0)
    }

    /// [`Lab::run_keys`] plus a self-profile: host wall-clock per key,
    /// per-worker busy spans, and the metrics registry the runs
    /// exported into ([`runner::execute_into`]). Result bytes are
    /// identical to the unprofiled path; the profile is a pure
    /// side-channel.
    pub fn run_keys_profiled(
        &self,
        keys: &[RunKey],
    ) -> (Vec<Result<RunResult, String>>, selfprof::SweepProfile) {
        let registry = psse_metrics::Registry::new();
        let (outcomes, pool_profile) = pool::run_ordered_timed(self.jobs(), keys, |_, key| {
            self.run_one(key, Some(&registry))
        });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut cached = Vec::with_capacity(outcomes.len());
        for (r, c) in outcomes {
            results.push(r);
            cached.push(c);
        }
        // Virtual-cost attribution per key *occurrence* — recorded from
        // the results in spec order, so these series are identical
        // whatever the worker count or cache temperature (unlike the
        // execution-time `sim.*` exports; see the `selfprof` docs).
        let h_time = registry.histogram("virt.time_ns").expect("fresh registry");
        let h_energy = registry
            .histogram("virt.energy_nj")
            .expect("fresh registry");
        let c_retries = registry.counter("virt.retries").expect("fresh registry");
        let c_res_words = registry
            .counter("virt.resilience.words")
            .expect("fresh registry");
        let c_res_msgs = registry
            .counter("virt.resilience.msgs")
            .expect("fresh registry");
        for r in results.iter().flatten() {
            h_time.record_secs(r.time);
            h_energy.record(psse_metrics::saturating_nanos(r.energy));
            c_retries.add(r.retries);
            c_res_words.add(r.resilience_words);
            c_res_msgs.add(r.resilience_msgs);
        }
        // Cache-integrity incidents surface in the metrics registry as
        // well as the summary line, so a service scraping profiles sees
        // quarantine events without parsing stderr.
        let cache_stats = self.cache.stats();
        registry
            .counter("cache.corrupt")
            .expect("fresh registry")
            .add(cache_stats.corrupt);
        registry
            .counter("cache.quarantined")
            .expect("fresh registry")
            .add(cache_stats.quarantined);
        // Event-engine health (scheduler overflow detours, mailbox slab
        // high-water/recycling) — process totals, exported once at
        // snapshot time so repeated sweeps never double-count. Zeros
        // when no event-backend run has executed in this process.
        psse_event::export_health(&registry).expect("fresh registry");
        let ok: Vec<bool> = results.iter().map(|r| r.is_ok()).collect();
        let labels = keys.iter().map(|k| (k.label(), k.digest())).collect();
        let profile = selfprof::SweepProfile::assemble(
            &pool_profile,
            labels,
            &cached,
            &ok,
            cache_stats,
            &registry.snapshot(),
        );
        (results, profile)
    }

    /// Expand a spec and execute it.
    pub fn run_spec(&self, spec: &spec::SweepSpec) -> SweepResults {
        let keys = spec.expand();
        let results = self.run_keys(&keys);
        SweepResults {
            keys,
            results,
            stats: self.cache.stats(),
        }
    }

    /// Expand a spec and execute it with a self-profile.
    pub fn run_spec_profiled(
        &self,
        spec: &spec::SweepSpec,
    ) -> (SweepResults, selfprof::SweepProfile) {
        let keys = spec.expand();
        let (results, profile) = self.run_keys_profiled(&keys);
        (
            SweepResults {
                keys,
                results,
                stats: self.cache.stats(),
            },
            profile,
        )
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// The usual imports for lab users.
pub mod prelude {
    pub use crate::cache::{
        fsck_dir, gc_dir, CacheStats, FsckReport, GcConfig, GcReport, QUARANTINE_SUBDIR,
    };
    pub use crate::csvout::{pareto_csv, sweep_csv};
    pub use crate::error::LabError;
    pub use crate::journal::{spec_digest, Journal};
    pub use crate::key::{RunKey, RunKind};
    pub use crate::pareto::{
        detect_scaling_range, pareto_indices, pareto_indices_naive, DetectedRange,
    };
    pub use crate::result::{digest_f64s, line_checksum, RunResult};
    pub use crate::runner::{execute, execute_into, execute_watched, model_algorithm};
    pub use crate::selfprof::{RunProfile, SweepProfile};
    pub use crate::spec::SweepSpec;
    pub use crate::{Lab, LabConfig, SweepResults};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn run_keys_memoizes_duplicates() {
        use psse_core::machines::jaketown;
        let lab = Lab::new(LabConfig {
            jobs: 1,
            ..LabConfig::default()
        });
        let key = RunKey::model("nbody", 1000, 10, jaketown());
        let keys = vec![key.clone(), key.clone(), key];
        let results = lab.run_keys(&keys);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = lab.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn profiled_run_matches_plain_run_bitwise() {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:8\nmem = 2000\nf = 10\n",
        )
        .unwrap();
        let plain = Lab::new(LabConfig {
            jobs: 1,
            ..LabConfig::default()
        })
        .run_spec(&spec);
        let lab = Lab::new(LabConfig {
            jobs: 4,
            ..LabConfig::default()
        });
        let (profiled, profile) = lab.run_spec_profiled(&spec);
        assert_eq!(plain.results, profiled.results);

        assert_eq!(profile.runs.len(), 8);
        assert_eq!(profile.workers.len(), 4);
        // Labels follow spec order and none of these fresh runs cached.
        for (run, key) in profile.runs.iter().zip(&profiled.keys) {
            assert_eq!(run.label, key.label());
            assert_eq!(run.digest, key.digest());
            assert!(!run.cached);
            assert!(run.ok);
        }
        // The virt.* series saw one sample per key occurrence.
        let virt = profile.metrics.get("virt.time_ns").expect("virt.time_ns");
        assert_eq!(virt.get("count").and_then(|v| v.as_u64()), Some(8));
        // Rerunning on the warm cache flips `cached` but keeps the key
        // set and the virt.* sample count identical.
        let (_, warm) = lab.run_spec_profiled(&spec);
        assert!(warm.runs.iter().all(|r| r.cached));
        let keys_cold: Vec<&str> = profile.runs.iter().map(|r| r.digest.as_str()).collect();
        let keys_warm: Vec<&str> = warm.runs.iter().map(|r| r.digest.as_str()).collect();
        assert_eq!(keys_cold, keys_warm);
        let virt_warm = warm.metrics.get("virt.time_ns").expect("virt.time_ns");
        assert_eq!(virt_warm.get("count").and_then(|v| v.as_u64()), Some(8));
    }

    #[test]
    fn journaled_sweep_resumes_to_identical_results() {
        let spec = SweepSpec::parse(
            "kind = model\nalg = nbody\nn = 10000\np = geom:6:100:6\nmem = 2000\nf = 10\n",
        )
        .unwrap();
        let keys = spec.expand();
        let sd = spec_digest(&keys);
        let path =
            std::env::temp_dir().join(format!("psse-lab-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference.
        let reference = Lab::new(LabConfig::default()).run_spec(&spec);

        // First attempt journals everything...
        let mut lab = Lab::new(LabConfig::default());
        lab.set_journal(Journal::create(&path, &sd).unwrap());
        let first = lab.run_spec(&spec);
        assert_eq!(first.results, reference.results);

        // ...then "crash" by truncating the journal mid-line and resume.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        let (journal, replayed) = Journal::open_resume(&path, &sd).unwrap();
        assert!(!replayed.is_empty() && replayed.len() < keys.len());
        let mut lab2 = Lab::new(LabConfig::default());
        lab2.seed(&replayed);
        lab2.set_journal(journal);
        let resumed = lab2.run_spec(&spec);
        assert_eq!(resumed.results, reference.results, "byte-identical resume");
        // Replayed keys were served from the seeded cache.
        assert!(lab2.cache_stats().hits >= replayed.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_key_fails_alone() {
        use psse_core::machines::jaketown;
        // `__panic` trips the test-only failpoint inside `run_one`: the
        // injected panic must become *that key's* error string while
        // every sibling key completes normally, for any worker count.
        for jobs in [1, 3] {
            let lab = Lab::new(LabConfig {
                jobs,
                ..LabConfig::default()
            });
            let good = RunKey::model("nbody", 1000, 10, jaketown());
            let bad = RunKey::model("__panic", 1000, 10, jaketown());
            let keys = vec![good.clone(), bad, good];
            let results = lab.run_keys(&keys);
            assert!(results[0].is_ok(), "jobs={jobs}: {:?}", results[0]);
            assert!(results[2].is_ok(), "jobs={jobs}: {:?}", results[2]);
            let err = results[1].as_ref().unwrap_err();
            assert!(err.starts_with("panic:"), "jobs={jobs}: {err}");
            assert!(err.contains("injected failure"), "jobs={jobs}: {err}");
        }
    }

    #[test]
    fn run_spec_reports_feasibility_split() {
        let spec = SweepSpec::parse(
            // mem fixed: small p can't hold the problem → infeasible rows.
            "kind = model\nalg = nbody\nn = 10000\np = 2,4,1000\nmem = 100\nf = 10\n",
        )
        .unwrap();
        let lab = Lab::new(LabConfig::default());
        let sweep = lab.run_spec(&spec);
        assert_eq!(sweep.failures(), 0);
        let (feasible, infeasible) = sweep.feasibility();
        assert_eq!(feasible + infeasible, 3);
        assert!(infeasible >= 2); // p = 2 and p = 4 can't hold n/p words in 100
    }
}
