//! Content-addressed run identities.
//!
//! A [`RunKey`] captures *everything* that determines the outcome of one
//! simulator or model evaluation: the run kind, the algorithm, the
//! problem/machine coordinates, the input seed and the (optional) fault
//! plan. Two keys with equal digests are the same experiment, so the
//! digest is the address under which results are memoized — in memory
//! and, optionally, on disk under `bench_results/.labcache/`.
//!
//! The digest is built from the workspace's existing splitmix64
//! machinery ([`psse_faults::rng::hash_key`]): every field is reduced to
//! `u64` words (floats via [`f64::to_bits`], strings via chunked byte
//! packing) and the word stream is hashed twice with independent salts,
//! yielding a 128-bit hex digest. The mapping contains **no**
//! process-dependent state (no `RandomState`, no pointers), so digests
//! are stable across runs, platforms and process invocations.

use psse_core::params::MachineParams;
use psse_faults::rng::hash_key;
use psse_sim::prelude::FaultPlan;
use psse_sim::Backend;

/// What kind of execution a [`RunKey`] requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Evaluate the paper's analytic cost model (Eqs. 1–2) at a point.
    Model,
    /// Run the real algorithm on the virtual machine and measure it.
    Simulate,
}

impl RunKind {
    /// Stable one-word tag folded into the digest.
    fn tag(self) -> u64 {
        match self {
            RunKind::Model => 1,
            RunKind::Simulate => 2,
        }
    }

    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RunKind::Model => "model",
            RunKind::Simulate => "simulate",
        }
    }
}

impl std::str::FromStr for RunKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "model" => Ok(RunKind::Model),
            "simulate" | "sim" => Ok(RunKind::Simulate),
            other => Err(format!("unknown run kind `{other}` (model|simulate)")),
        }
    }
}

/// The full identity of one experiment. Equality of digests ⇔ same
/// experiment; see the module docs for the hashing scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct RunKey {
    /// Model evaluation or simulator execution.
    pub kind: RunKind,
    /// Canonical algorithm id (`matmul`, `nbody`, `mm25d`, ...). The
    /// valid set depends on `kind`; see [`crate::runner`].
    pub alg: String,
    /// Problem size.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Replication factor (2.5D `c`, n-body team count). `1` when the
    /// algorithm has no such knob.
    pub c: u64,
    /// Memory per processor in words. `0.0` means "the algorithm's
    /// minimal memory at `(n, p)`" for model runs; ignored by simulator
    /// runs (the simulator allocates what the algorithm needs).
    pub mem: f64,
    /// n-body flops per interaction (`f`); ignored by other algorithms.
    pub f: f64,
    /// Input seed for simulator runs (matrix/particle generation).
    pub seed: u64,
    /// For model runs: clamp an out-of-range `mem` into
    /// `[min_memory, max_useful_memory]` instead of marking the point
    /// infeasible. Used to chart the bend past the strong-scaling limit.
    pub clamp_mem: bool,
    /// The machine the run is priced on.
    pub machine: MachineParams,
    /// Optional fault plan (simulator runs only).
    pub faults: Option<FaultPlan>,
    /// Which simulator backend executes the run (simulator runs only;
    /// model runs ignore it). Both backends are bit-identical by
    /// contract, but the backend is still part of the identity so a
    /// cross-backend comparison sweep gets distinct cache slots.
    pub backend: Backend,
    /// Full text of an HBL kernel file (model runs only). When set, the
    /// runner derives the cost model from the loop nest instead of
    /// looking `alg` up in the hand-written table; the *content* is the
    /// identity, so editing a kernel file invalidates its cache slots
    /// even when the path is unchanged.
    pub kernel: Option<String>,
    /// Stencil halo width (`alg = stencil` only; ignored elsewhere).
    /// Default 1 — the default pair `(halo, iters) = (1, 4)` adds
    /// nothing to the digest word stream, preserving every pre-stencil
    /// digest.
    pub halo: u64,
    /// Stencil sweep count (`alg = stencil` only). Default 4.
    pub iters: u64,
}

/// The `(halo, iters)` pair that leaves the digest word stream
/// untouched (pre-stencil layout compatibility).
pub const STENCIL_DEFAULTS: (u64, u64) = (1, 4);

impl RunKey {
    /// A model-run key with the common defaults (`c = 1`, minimal
    /// memory, `f = 20`, seed 42, no clamping, no faults).
    pub fn model(alg: &str, n: u64, p: u64, machine: MachineParams) -> RunKey {
        RunKey {
            kind: RunKind::Model,
            alg: alg.to_string(),
            n,
            p,
            c: 1,
            mem: 0.0,
            f: 20.0,
            seed: 42,
            clamp_mem: false,
            machine,
            faults: None,
            backend: Backend::Threads,
            kernel: None,
            halo: STENCIL_DEFAULTS.0,
            iters: STENCIL_DEFAULTS.1,
        }
    }

    /// A simulator-run key with the common defaults.
    pub fn simulate(alg: &str, n: u64, p: u64, machine: MachineParams) -> RunKey {
        RunKey {
            kind: RunKind::Simulate,
            ..RunKey::model(alg, n, p, machine)
        }
    }

    /// Reduce the key to its canonical `u64` word stream. Field order is
    /// part of the format; extending the key must append words (or bump
    /// the salts) to avoid digest collisions with older layouts.
    fn words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(40);
        w.push(self.kind.tag());
        // Strings: length then packed little-endian 8-byte chunks, so
        // `("ab", "c")` and `("a", "bc")` cannot collide.
        w.push(self.alg.len() as u64);
        for chunk in self.alg.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            w.push(u64::from_le_bytes(word));
        }
        w.extend([self.n, self.p, self.c]);
        w.push(self.mem.to_bits());
        w.push(self.f.to_bits());
        w.push(self.seed);
        w.push(self.clamp_mem as u64);
        let m = &self.machine;
        for v in [
            m.gamma_t,
            m.beta_t,
            m.alpha_t,
            m.gamma_e,
            m.beta_e,
            m.alpha_e,
            m.delta_e,
            m.epsilon_e,
            m.max_message_words,
            m.mem_words,
        ] {
            w.push(v.to_bits());
        }
        match &self.faults {
            None => w.push(0),
            Some(plan) => {
                w.push(1);
                let s = &plan.spec;
                w.push(s.seed);
                for v in [
                    s.drop_rate,
                    s.corrupt_rate,
                    s.duplicate_rate,
                    s.delay_rate,
                    s.delay_seconds,
                ] {
                    w.push(v.to_bits());
                }
                w.push(s.crashes.len() as u64);
                for crash in &s.crashes {
                    w.push(crash.rank as u64);
                    w.push(crash.at.to_bits());
                }
                let r = &plan.recovery;
                w.push(r.max_retries as u64);
                w.push(r.retry_backoff.to_bits());
                match &r.checkpoint {
                    None => w.push(0),
                    Some(cp) => {
                        w.push(1);
                        w.push(cp.interval.to_bits());
                        w.push(cp.words);
                        w.push(cp.restart_seconds.to_bits());
                    }
                }
            }
        }
        // Appended after the fault block so every pre-backend digest is
        // preserved: the default (`Threads`) adds nothing, and only a
        // non-default backend extends the word stream.
        if self.backend != Backend::Threads {
            w.push(u64::from_le_bytes(*b"backend\0"));
            w.push(match self.backend {
                Backend::Threads => unreachable!(),
                Backend::Events => 1,
            });
        }
        // Same append-only discipline for the kernel text: absent (the
        // pre-kernel layout) adds nothing, present appends a marker plus
        // the length-prefixed packed bytes.
        if let Some(text) = &self.kernel {
            w.push(u64::from_le_bytes(*b"kernel\0\0"));
            w.push(text.len() as u64);
            for chunk in text.as_bytes().chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                w.push(u64::from_le_bytes(word));
            }
        }
        // Stencil knobs, same append-only discipline: the default pair
        // adds nothing, so every pre-stencil digest is preserved.
        if (self.halo, self.iters) != STENCIL_DEFAULTS {
            w.push(u64::from_le_bytes(*b"stencil\0"));
            w.push(self.halo);
            w.push(self.iters);
        }
        w
    }

    /// The 128-bit content digest as 32 lowercase hex characters.
    ///
    /// Stable across processes (pure splitmix64 over the canonical word
    /// stream) and effectively injective: a grid would need ~2⁶⁴ keys
    /// before a birthday collision becomes likely.
    pub fn digest(&self) -> String {
        let words = self.words();
        // Two independent salted chains give 128 bits.
        let hi = hash_key(0x7073_7365_2d6c_6162, &words); // "psse-lab"
        let lo = hash_key(0x6c61_6263_6163_6865, &words); // "labcache"
        format!("{hi:016x}{lo:016x}")
    }

    /// A short human-readable label for summaries and error messages.
    pub fn label(&self) -> String {
        format!(
            "{}:{} n={} p={} c={}{}{}{}{}",
            self.kind.as_str(),
            self.alg,
            self.n,
            self.p,
            self.c,
            if self.mem > 0.0 {
                format!(" M={:.6e}", self.mem)
            } else {
                String::new()
            },
            if self.faults.is_some() {
                " +faults"
            } else {
                ""
            },
            if self.backend != Backend::Threads {
                format!(" backend={}", self.backend)
            } else {
                String::new()
            },
            if (self.halo, self.iters) != STENCIL_DEFAULTS {
                format!(" halo={} iters={}", self.halo, self.iters)
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psse_core::machines::jaketown;

    #[test]
    fn digest_is_stable_and_sensitive() {
        let k = RunKey::model("nbody", 10_000, 64, jaketown());
        let d = k.digest();
        assert_eq!(d.len(), 32);
        assert_eq!(d, k.clone().digest());
        // Any field flip changes the digest.
        let mut k2 = k.clone();
        k2.p = 65;
        assert_ne!(d, k2.digest());
        let mut k3 = k.clone();
        k3.mem = 1.0;
        assert_ne!(d, k3.digest());
        let mut k4 = k.clone();
        k4.machine.beta_e *= 2.0;
        assert_ne!(d, k4.digest());
        let mut k5 = k.clone();
        k5.kind = RunKind::Simulate;
        assert_ne!(d, k5.digest());
        let mut k6 = k.clone();
        k6.clamp_mem = true;
        assert_ne!(d, k6.digest());
    }

    #[test]
    fn digest_is_stable_across_processes() {
        // Pinned value: if this changes, the on-disk cache format changed
        // and `.labcache` directories must be invalidated.
        let mut machine = MachineParams::builder()
            .gamma_t(1e-9)
            .beta_t(2e-8)
            .alpha_t(1e-6)
            .build()
            .unwrap();
        machine.mem_words = 1e12;
        let k = RunKey {
            kind: RunKind::Model,
            alg: "nbody".into(),
            n: 10_000,
            p: 50,
            c: 1,
            mem: 1000.0,
            f: 10.0,
            seed: 42,
            clamp_mem: false,
            machine,
            faults: None,
            backend: Backend::Threads,
            kernel: None,
            halo: 1,
            iters: 4,
        };
        assert_eq!(k.digest(), "9a71881ab929cb833887064fb2109475");
    }

    #[test]
    fn stencil_knobs_extend_the_identity_without_disturbing_old_digests() {
        // The default pair (halo = 1, iters = 4) must hash exactly as
        // the pre-stencil layout — the word stream is untouched — while
        // any other pair gets its own cache slot and a label suffix.
        let base = RunKey::simulate("stencil", 64, 4, jaketown());
        assert_eq!((base.halo, base.iters), STENCIL_DEFAULTS);
        assert!(!base.label().contains("halo="), "{}", base.label());
        let mut k = base.clone();
        k.halo = 2;
        assert_ne!(base.digest(), k.digest());
        let mut k2 = base.clone();
        k2.iters = 8;
        assert_ne!(base.digest(), k2.digest());
        assert_ne!(k.digest(), k2.digest());
        assert!(k2.label().ends_with(" halo=1 iters=8"), "{}", k2.label());
    }

    #[test]
    fn kernel_extends_the_identity_without_disturbing_old_digests() {
        // `None` (every pre-kernel key) must hash exactly as before,
        // while each distinct kernel *text* gets its own cache slot.
        let base = RunKey::model("kernel:matmul", 1024, 8, jaketown());
        let mut k = base.clone();
        k.kernel = Some("for i in 0..n\nC[i] += A[i] * B[i]\n".into());
        assert_ne!(base.digest(), k.digest());
        let mut k2 = k.clone();
        k2.kernel = Some("for i in 0..n\nC[i] += A[i] * D[i]\n".into());
        assert_ne!(k.digest(), k2.digest());
    }

    #[test]
    fn backend_extends_the_identity_without_disturbing_old_digests() {
        // `Threads` (the default) must hash exactly as the pre-backend
        // layout did — the word stream is untouched — while `Events`
        // gets its own cache slot and a visible label suffix.
        let base = RunKey::simulate("mm25d", 16, 8, jaketown());
        let mut ev = base.clone();
        ev.backend = Backend::Events;
        assert_ne!(base.digest(), ev.digest());
        assert!(!base.label().contains("backend="), "{}", base.label());
        assert!(ev.label().ends_with(" backend=events"), "{}", ev.label());
    }

    #[test]
    fn string_packing_avoids_concatenation_collisions() {
        let a = RunKey::model("ab", 4, 2, jaketown());
        let b = RunKey::model("a", 4, 2, jaketown());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn fault_plan_is_part_of_the_identity() {
        use psse_sim::prelude::{FaultPlan, FaultSpec, RecoveryPolicy};
        let mut k = RunKey::simulate("mm25d", 16, 8, jaketown());
        let free = k.digest();
        k.faults = Some(FaultPlan {
            spec: FaultSpec {
                seed: 7,
                drop_rate: 0.1,
                ..FaultSpec::default()
            },
            recovery: RecoveryPolicy {
                max_retries: 8,
                retry_backoff: 0.0,
                checkpoint: None,
            },
        });
        let faulted = k.digest();
        assert_ne!(free, faulted);
        let mut k2 = k.clone();
        k2.faults.as_mut().unwrap().spec.drop_rate = 0.2;
        assert_ne!(faulted, k2.digest());
    }
}
