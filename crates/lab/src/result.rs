//! Result of one run, with an exact-bits one-line disk encoding.
//!
//! The persistent cache stores each result as a single `v1 ...` line
//! keyed by the run digest. Floats are encoded as their raw IEEE-754
//! bit patterns (`{:016x}` of [`f64::to_bits`]) so a round trip through
//! the cache reproduces *bit-identical* values — a cached sweep must
//! emit the same CSV bytes as a cold one.

/// Everything a sweep can want to know about one completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Whether the requested memory was inside the algorithm's
    /// `[min_memory, max_useful_memory]` band (model runs; simulator
    /// runs are always feasible if they complete).
    pub feasible: bool,
    /// Whether numerical verification passed (simulator runs that
    /// verify; `true` for model runs).
    pub verified: bool,
    /// Wall-clock (virtual) time in seconds.
    pub time: f64,
    /// Total energy in joules.
    pub energy: f64,
    /// Total flops across ranks.
    pub flops: f64,
    /// Total words sent across ranks.
    pub words: f64,
    /// Total messages sent across ranks.
    pub msgs: f64,
    /// Memory per processor actually used/charged, in words.
    pub mem_used: f64,
    /// Message retries due to injected faults (0 when fault-free).
    pub retries: u64,
    /// Words written to checkpoints.
    pub checkpoint_words: u64,
    /// Extra words moved by resilience machinery (retransmits + ABFT).
    pub resilience_words: u64,
    /// Extra messages sent by resilience machinery.
    pub resilience_msgs: u64,
    /// splitmix64 digest of the output payload bits (0 when the run has
    /// no payload, e.g. model runs). Equal digests ⇒ bit-identical
    /// outputs, which is how fault sweeps check ABFT correctness.
    pub output_digest: u64,
}

impl RunResult {
    /// A model-run result: analytic time/energy at a feasible point.
    pub fn model(feasible: bool, time: f64, energy: f64, mem_used: f64) -> RunResult {
        RunResult {
            feasible,
            verified: true,
            time,
            energy,
            flops: 0.0,
            words: 0.0,
            msgs: 0.0,
            mem_used,
            retries: 0,
            checkpoint_words: 0,
            resilience_words: 0,
            resilience_msgs: 0,
            output_digest: 0,
        }
    }

    /// Serialize to the one-line `v1` cache record.
    pub fn to_line(&self) -> String {
        format!(
            "v1 {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {} {} {} {} {:016x}",
            self.feasible as u8,
            self.verified as u8,
            self.time.to_bits(),
            self.energy.to_bits(),
            self.flops.to_bits(),
            self.words.to_bits(),
            self.msgs.to_bits(),
            self.mem_used.to_bits(),
            self.retries,
            self.checkpoint_words,
            self.resilience_words,
            self.resilience_msgs,
            self.output_digest,
        )
    }

    /// Parse a `v1` cache record; `None` on any malformation (the cache
    /// treats unreadable records as misses, never as errors).
    pub fn from_line(line: &str) -> Option<RunResult> {
        let mut it = line.split_ascii_whitespace();
        if it.next()? != "v1" {
            return None;
        }
        let flag = |s: &str| match s {
            "0" => Some(false),
            "1" => Some(true),
            _ => None,
        };
        let feasible = flag(it.next()?)?;
        let verified = flag(it.next()?)?;
        let mut f64_bits =
            || -> Option<f64> { Some(f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?)) };
        let time = f64_bits()?;
        let energy = f64_bits()?;
        let flops = f64_bits()?;
        let words = f64_bits()?;
        let msgs = f64_bits()?;
        let mem_used = f64_bits()?;
        let mut dec = || -> Option<u64> { it.next()?.parse().ok() };
        let retries = dec()?;
        let checkpoint_words = dec()?;
        let resilience_words = dec()?;
        let resilience_msgs = dec()?;
        let output_digest = u64::from_str_radix(it.next()?, 16).ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(RunResult {
            feasible,
            verified,
            time,
            energy,
            flops,
            words,
            msgs,
            mem_used,
            retries,
            checkpoint_words,
            resilience_words,
            resilience_msgs,
            output_digest,
        })
    }

    /// Average power in watts (`E / T`); 0 for zero-time runs.
    pub fn power(&self) -> f64 {
        if self.time > 0.0 {
            self.energy / self.time
        } else {
            0.0
        }
    }
}

/// Digest an output payload's f64 bit patterns with splitmix64, so two
/// runs can be compared for bit-identical outputs without retaining the
/// payloads.
pub fn digest_f64s(values: &[f64]) -> u64 {
    let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    psse_faults::rng::hash_key(0x6f75_7470_7574_6467, &words)
}

/// splitmix64 checksum of a line's raw bytes: length word, then the
/// bytes packed into little-endian 8-byte chunks (the same packing the
/// run-key digest uses for strings, so `"ab" + "c"` and `"a" + "bc"`
/// cannot collide). Shared by the self-checksummed cache records and
/// the sweep journal's torn-tail detection.
pub fn line_checksum(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    psse_faults::rng::hash_key(0x7265_6331_6373_756d, &words) // "rec1csum"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip_is_exact() {
        let r = RunResult {
            feasible: true,
            verified: false,
            time: 1.2345678901234567e-3,
            energy: 9.87e12,
            flops: 6.66e15,
            words: 1.0 / 3.0,
            msgs: f64::MIN_POSITIVE,
            mem_used: 1e9 + 0.5,
            retries: 7,
            checkpoint_words: 123_456,
            resilience_words: 42,
            resilience_msgs: 3,
            output_digest: 0xdead_beef_cafe_f00d,
        };
        let line = r.to_line();
        let back = RunResult::from_line(&line).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.time.to_bits(), back.time.to_bits());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(RunResult::from_line("").is_none());
        assert!(RunResult::from_line("v0 1 1").is_none());
        assert!(RunResult::from_line("v1 1 1 zzzz").is_none());
        let mut line = RunResult::model(true, 1.0, 2.0, 3.0).to_line();
        line.push_str(" extra");
        assert!(RunResult::from_line(&line).is_none());
    }

    #[test]
    fn line_checksum_is_length_prefixed_and_sensitive() {
        let a = line_checksum("v1 1 1");
        assert_eq!(a, line_checksum("v1 1 1"));
        assert_ne!(a, line_checksum("v1 1 0"));
        assert_ne!(a, line_checksum("v1 1 1 "));
        // Length-prefixed packing: moving a byte across a chunk
        // boundary changes the checksum.
        assert_ne!(line_checksum("abcdefgh i"), line_checksum("abcdefghi "));
    }

    #[test]
    fn digest_distinguishes_payloads() {
        let a = digest_f64s(&[1.0, 2.0, 3.0]);
        let b = digest_f64s(&[1.0, 2.0, 3.0 + 1e-15]);
        let c = digest_f64s(&[1.0, 2.0, 3.0]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        // -0.0 and +0.0 differ in bits, so they differ in digest.
        assert_ne!(digest_f64s(&[0.0]), digest_f64s(&[-0.0]));
    }
}
